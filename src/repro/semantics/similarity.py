"""Category-similarity measures (Definition 3.3 / Eq. 6 of the paper).

Definition 3.3 requires only that a similarity ``sim(c, c') ∈ [0, 1]``
satisfies:

* ``sim = 0`` iff the categories live in different trees (irrelevant);
* ``0 < sim ≤ 1`` within the same tree (semantic match);
* ``sim = 1`` for a perfect match.

Three measures are provided:

* :class:`HierarchyWuPalmer` — the paper's Eq. (6): a Wu–Palmer score
  maximized over the ancestor closure of the PoI category.  Closed form:
  ``2·d(L) / (d(c) + d(L))`` with ``L = lca(c, c')``, and exactly 1 when
  the PoI category lies in the query category's subtree (consistent with
  the paper's closure rule that a PoI is associated with all ancestors of
  its category, so membership in ``P_c`` ⇔ perfect match).  This is the
  library default.
* :class:`ClassicWuPalmer` — the textbook symmetric Wu–Palmer score
  ``2·d(lca) / (d(c) + d(c'))``; perfect only for identical categories.
* :class:`PathLengthSimilarity` — ``1 / (1 + path length)``.

All measures are stateless with small per-forest memoization; they are
safe to share between engines.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.semantics.category import CategoryForest


class SimilarityMeasure(ABC):
    """Pluggable similarity between a query category and a PoI category."""

    #: human-readable identifier used in results / CLI
    name: str = "abstract"

    @abstractmethod
    def similarity(
        self, forest: CategoryForest, query_cid: int, poi_cid: int
    ) -> float:
        """Similarity of PoI category ``poi_cid`` w.r.t. query ``query_cid``."""

    def is_perfect(
        self, forest: CategoryForest, query_cid: int, poi_cid: int
    ) -> bool:
        """Perfect match ⇔ similarity 1 (Definition 3.3)."""
        return self.similarity(forest, query_cid, poi_cid) >= 1.0

    def best_nonperfect(
        self, forest: CategoryForest, query_cid: int
    ) -> float | None:
        """Largest similarity strictly below 1 achievable for this query.

        Used for the minimum semantic increment ``δ`` of Lemma 5.8 (the
        paper's footnote 2: "the least increase ... is computed from the
        category that is most similar (but not equal) to the next
        category").  Returns ``None`` if every same-tree category is a
        perfect match (then the semantic score cannot increase at all).

        The generic implementation scans the query's tree; subclasses may
        override with a closed form.
        """
        best: float | None = None
        for cid in forest.categories_in_tree(forest.tree_id(query_cid)):
            sim = self.similarity(forest, query_cid, cid)
            if sim < 1.0 and (best is None or sim > best):
                best = sim
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class HierarchyWuPalmer(SimilarityMeasure):
    """The paper's Eq. (6) similarity (library default).

    ``sim(c, c') = max_{ci ∈ a(c')} 2·d(dca(c, ci)) / (d(c) + d(ci))``

    where ``a(c')`` is the ancestor closure of the PoI category and
    ``dca`` the deepest common ancestor.  The maximum is attained at
    ``ci = lca(c, c')`` which yields the closed form used below.  Under
    this measure a PoI whose category is a *descendant* of the query
    category is a perfect match (a Sushi Restaurant perfectly satisfies a
    "Japanese Restaurant" request) — exactly the paper's closure-set
    semantics of ``P_c``.
    """

    name = "hierarchy-wu-palmer"

    def similarity(
        self, forest: CategoryForest, query_cid: int, poi_cid: int
    ) -> float:
        if query_cid == poi_cid:
            return 1.0
        low = forest.lca(query_cid, poi_cid)
        if low is None:
            return 0.0
        if low == query_cid:
            # PoI category inside query's subtree → perfect (closure rule).
            return 1.0
        d_query = forest.depth(query_cid)
        d_low = forest.depth(low)
        return (2.0 * d_low) / (d_query + d_low)

    def best_nonperfect(
        self, forest: CategoryForest, query_cid: int
    ) -> float | None:
        parent = forest.parent_of(query_cid)
        if parent is None:
            # Root query: every same-tree category is in its subtree.
            return None
        d = forest.depth(query_cid)
        # Matching at the parent level is the best non-perfect outcome.
        return (2.0 * (d - 1)) / (d + (d - 1))


class ClassicWuPalmer(SimilarityMeasure):
    """Symmetric Wu–Palmer: ``2·d(lca) / (d(c) + d(c'))``."""

    name = "classic-wu-palmer"

    def similarity(
        self, forest: CategoryForest, query_cid: int, poi_cid: int
    ) -> float:
        if query_cid == poi_cid:
            return 1.0
        low = forest.lca(query_cid, poi_cid)
        if low is None:
            return 0.0
        d_low = forest.depth(low)
        sim = (2.0 * d_low) / (forest.depth(query_cid) + forest.depth(poi_cid))
        # Guard against float artifacts: distinct categories never reach 1.
        return min(sim, 1.0 - 1e-12)


class PathLengthSimilarity(SimilarityMeasure):
    """``1 / (1 + tree path length)`` — the "path length" measure of
    Definition 3.3 ([15, 19] in the paper)."""

    name = "path-length"

    def similarity(
        self, forest: CategoryForest, query_cid: int, poi_cid: int
    ) -> float:
        length = forest.path_length(query_cid, poi_cid)
        if length is None:
            return 0.0
        return 1.0 / (1.0 + length)

    def best_nonperfect(
        self, forest: CategoryForest, query_cid: int
    ) -> float | None:
        cat = forest.category(query_cid)
        if cat.parent is None and not cat.children:
            return None  # singleton tree: no distinct same-tree category
        return 0.5  # path length 1 (parent or child) is always the best


#: default measure used throughout the library (the paper's Eq. 6)
DEFAULT_SIMILARITY = HierarchyWuPalmer()

_MEASURES: dict[str, type[SimilarityMeasure]] = {
    HierarchyWuPalmer.name: HierarchyWuPalmer,
    ClassicWuPalmer.name: ClassicWuPalmer,
    PathLengthSimilarity.name: PathLengthSimilarity,
}


def similarity_by_name(name: str) -> SimilarityMeasure:
    """Instantiate a similarity measure from its registry name."""
    try:
        return _MEASURES[name]()
    except KeyError:
        known = ", ".join(sorted(_MEASURES))
        raise ValueError(f"unknown similarity {name!r} (known: {known})") from None
