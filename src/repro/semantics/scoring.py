"""Semantic-score aggregation (Definition 3.5 / Eq. 7 of the paper).

The semantic score of a route is ``s(R) = f(h_1, …, h_|R|)`` for an
aggregation function ``f`` over the per-position similarities.  The paper
uses the product form (Eq. 7): ``s(R) = 1 − Π h_i``.

Aggregators are incremental so BSSR can maintain a route's semantic state
as positions are appended.  Two properties are required for correctness
of the branch-and-bound machinery and hold for every aggregator here:

* **prefix lower bound** (Definition 3.5): the score of a prefix, with
  the remaining positions assumed perfect (``h = 1``), never exceeds the
  score of any completion — Lemma 5.2 relies on this;
* **monotonicity**: appending a smaller similarity never decreases the
  score.

:meth:`SemanticAggregator.min_increment` supplies the minimum semantic
increment ``δ`` of Lemma 5.8 given the best non-perfect similarity still
available in the remaining positions.  A ``None`` bound means the score
can no longer increase (``δ = ∞``); an aggregator may also return 0
(e.g. :class:`MinAggregator` when the route already carries a worse
similarity), in which case BSSR skips the perfect-match pruning rule —
keeping the rule sound for arbitrary aggregators.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod


class SemanticAggregator(ABC):
    """Incremental aggregation of per-position similarities into a score."""

    name: str = "abstract"

    @abstractmethod
    def initial(self, sequence_length: int):
        """State of an empty route (score must be 0)."""

    @abstractmethod
    def extend(self, state, sim: float):
        """State after appending one position with similarity ``sim``."""

    @abstractmethod
    def score(self, state) -> float:
        """Semantic score of the route in ``state`` (prefix lower bound)."""

    @abstractmethod
    def min_increment(self, state, best_nonperfect: float | None) -> float:
        """Minimum score increase if any remaining position is non-perfect.

        ``best_nonperfect`` is the largest similarity strictly below 1
        achievable over all remaining positions (``None`` if no remaining
        position admits a non-perfect match).  Returns ``math.inf`` when
        the score cannot increase and 0 when a non-perfect match may be
        absorbed without a score change.
        """

    def score_of(self, sims: list[float] | tuple[float, ...]) -> float:
        """Convenience: aggregate a full similarity vector."""
        state = self.initial(len(sims))
        for sim in sims:
            state = self.extend(state, sim)
        return self.score(state)


class ProductAggregator(SemanticAggregator):
    """The paper's Eq. (7): ``s(R) = 1 − Π h_i``.  Library default."""

    name = "product"

    def initial(self, sequence_length: int) -> float:
        return 1.0

    def extend(self, state: float, sim: float) -> float:
        return state * sim

    def score(self, state: float) -> float:
        return 1.0 - state

    def min_increment(self, state: float, best_nonperfect: float | None) -> float:
        if best_nonperfect is None:
            return math.inf
        # Deviating once at similarity σ turns Π into Π·σ: Δs = Π·(1 − σ).
        return state * (1.0 - best_nonperfect)


class MinAggregator(SemanticAggregator):
    """``s(R) = 1 − min h_i`` (worst position dominates)."""

    name = "min"

    def initial(self, sequence_length: int) -> float:
        return 1.0

    def extend(self, state: float, sim: float) -> float:
        return min(state, sim)

    def score(self, state: float) -> float:
        return 1.0 - state

    def min_increment(self, state: float, best_nonperfect: float | None) -> float:
        if best_nonperfect is None:
            return math.inf
        # A non-perfect σ ≥ current min leaves the score unchanged → δ = 0,
        # which disables Lemma 5.8 (correctly: the route could absorb the
        # deviation for free).
        return max(0.0, state - best_nonperfect)


class MeanAggregator(SemanticAggregator):
    """``s(R) = 1 − mean(h_i)`` over the full sequence length.

    Missing positions are assumed perfect, which preserves the prefix
    lower-bound property.
    """

    name = "mean"

    def initial(self, sequence_length: int) -> tuple[float, int]:
        if sequence_length <= 0:
            raise ValueError("sequence_length must be positive")
        return (0.0, sequence_length)

    def extend(self, state: tuple[float, int], sim: float) -> tuple[float, int]:
        deficit, n = state
        return (deficit + (1.0 - sim), n)

    def score(self, state: tuple[float, int]) -> float:
        deficit, n = state
        return deficit / n

    def min_increment(
        self, state: tuple[float, int], best_nonperfect: float | None
    ) -> float:
        if best_nonperfect is None:
            return math.inf
        _, n = state
        return (1.0 - best_nonperfect) / n


#: default aggregator (the paper's Eq. 7)
DEFAULT_AGGREGATOR = ProductAggregator()

_AGGREGATORS: dict[str, type[SemanticAggregator]] = {
    ProductAggregator.name: ProductAggregator,
    MinAggregator.name: MinAggregator,
    MeanAggregator.name: MeanAggregator,
}


def aggregator_by_name(name: str) -> SemanticAggregator:
    """Instantiate an aggregator from its registry name."""
    try:
        return _AGGREGATORS[name]()
    except KeyError:
        known = ", ".join(sorted(_AGGREGATORS))
        raise ValueError(f"unknown aggregator {name!r} (known: {known})") from None
