"""An embedded Foursquare-style category taxonomy.

The paper's Tokyo and NYC datasets attach Foursquare's 10 category trees
to each PoI (Section 7.1, footnote 1).  The real taxonomy is served by a
proprietary API; this module embeds a faithful scaled subset with the
same 10 roots and 3-level structure, *including every category the paper
mentions by name* (Asian/Italian Restaurant, Bakery, Gift/Hobby shop,
Clothing Store → Men's Store, Cupcake/Dessert Shop, Art Museum → Museum,
Jazz Club → Music Venue, Beer Garden / Sake Bar → Bar, Sushi Restaurant →
Japanese Restaurant — Figures 1–2, Tables 1 and 9).
"""

from __future__ import annotations

from repro.semantics.category import CategoryForest

#: root → {child → [grandchildren]}
_TAXONOMY: dict[str, dict[str, list[str]]] = {
    "Food": {
        "Asian Restaurant": ["Chinese Restaurant", "Thai Restaurant", "Korean Restaurant"],
        "Japanese Restaurant": ["Sushi Restaurant", "Ramen Restaurant", "Udon Restaurant"],
        "Italian Restaurant": ["Pizza Place", "Trattoria"],
        "American Restaurant": ["Burger Joint", "Diner"],
        "Mexican Restaurant": ["Taco Place", "Burrito Place"],
        "Dessert Shop": ["Cupcake Shop", "Ice Cream Shop", "Pie Shop"],
        "Bakery": ["Bagel Shop", "Donut Shop"],
        "Cafe": ["Coffee Shop", "Tea Room"],
        "Seafood Restaurant": [],
        "Vegetarian Restaurant": [],
    },
    "Shop & Service": {
        "Gift Shop": ["Souvenir Shop", "Card Shop"],
        "Hobby Shop": ["Game Store", "Model Shop"],
        "Clothing Store": ["Men's Store", "Women's Store", "Shoe Store"],
        "Bookstore": ["Used Bookstore", "Comic Shop"],
        "Electronics Store": ["Camera Store", "Mobile Phone Shop"],
        "Grocery Store": ["Supermarket", "Organic Grocery"],
        "Convenience Store": [],
        "Pharmacy": [],
        "Flower Shop": [],
        "Salon / Barbershop": [],
    },
    "Arts & Entertainment": {
        "Museum": ["Art Museum", "History Museum", "Science Museum"],
        "Music Venue": ["Jazz Club", "Rock Club", "Concert Hall"],
        "Theater": ["Indie Theater", "Opera House"],
        "Movie Theater": ["Multiplex", "Indie Movie Theater"],
        "Art Gallery": [],
        "Aquarium": [],
        "Zoo": [],
        "Arcade": [],
        "Comedy Club": [],
        "Stadium": [],
    },
    "Nightlife Spot": {
        "Bar": ["Beer Garden", "Sake Bar", "Wine Bar", "Cocktail Bar"],
        "Pub": ["Gastropub", "Sports Bar"],
        "Nightclub": [],
        "Lounge": [],
        "Karaoke Bar": [],
    },
    "Outdoors & Recreation": {
        "Park": ["Playground", "Dog Run", "Botanical Garden"],
        "Gym / Fitness": ["Yoga Studio", "Climbing Gym", "Pool"],
        "Trail": [],
        "Beach": [],
        "Plaza": [],
        "Scenic Lookout": [],
        "Sports Field": [],
    },
    "Travel & Transport": {
        "Train Station": ["Metro Station", "Platform"],
        "Bus Station": ["Bus Stop"],
        "Airport": ["Airport Terminal", "Airport Lounge"],
        "Hotel": ["Hostel", "Bed & Breakfast", "Resort"],
        "Taxi Stand": [],
        "Ferry Terminal": [],
        "Rental Car Location": [],
    },
    "College & University": {
        "Academic Building": ["Lecture Hall", "Laboratory"],
        "University Library": [],
        "Student Center": [],
        "College Cafeteria": [],
        "Dormitory": [],
    },
    "Professional & Other Places": {
        "Office": ["Coworking Space", "Corporate HQ"],
        "Medical Center": ["Hospital", "Dentist's Office", "Clinic"],
        "Government Building": ["City Hall", "Courthouse"],
        "Convention Center": [],
        "Factory": [],
        "Post Office": [],
        "Library": [],
    },
    "Residence": {
        "Apartment Building": [],
        "Housing Development": [],
        "Home": [],
    },
    "Event": {
        "Festival": ["Music Festival", "Street Fair"],
        "Market": ["Farmers Market", "Flea Market"],
        "Parade": [],
        "Sporting Event": [],
    },
}


def build_foursquare_forest() -> CategoryForest:
    """Build the embedded Foursquare-style forest (10 trees, 3 levels)."""
    forest = CategoryForest()
    for root, children in _TAXONOMY.items():
        forest.add_root(root)
        for child, grandchildren in children.items():
            forest.add_child(root, child)
            for grandchild in grandchildren:
                forest.add_child(child, grandchild)
    return forest


def taxonomy_size() -> int:
    """Total number of categories in the embedded taxonomy."""
    total = 0
    for children in _TAXONOMY.values():
        total += 1 + len(children) + sum(len(g) for g in children.values())
    return total


def root_names() -> list[str]:
    """The 10 tree roots (Foursquare's top-level categories)."""
    return list(_TAXONOMY)
