"""Semantic hierarchy substrate: category forest, similarity, scoring."""

from repro.semantics.category import Category, CategoryForest
from repro.semantics.foursquare import build_foursquare_forest, root_names
from repro.semantics.scoring import (
    DEFAULT_AGGREGATOR,
    MeanAggregator,
    MinAggregator,
    ProductAggregator,
    SemanticAggregator,
    aggregator_by_name,
)
from repro.semantics.similarity import (
    DEFAULT_SIMILARITY,
    ClassicWuPalmer,
    HierarchyWuPalmer,
    PathLengthSimilarity,
    SimilarityMeasure,
    similarity_by_name,
)

__all__ = [
    "Category",
    "CategoryForest",
    "build_foursquare_forest",
    "root_names",
    "SimilarityMeasure",
    "HierarchyWuPalmer",
    "ClassicWuPalmer",
    "PathLengthSimilarity",
    "DEFAULT_SIMILARITY",
    "similarity_by_name",
    "SemanticAggregator",
    "ProductAggregator",
    "MinAggregator",
    "MeanAggregator",
    "DEFAULT_AGGREGATOR",
    "aggregator_by_name",
]
