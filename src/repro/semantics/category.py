"""Category forest: the semantic hierarchy of PoI categories.

The paper (Section 3) models PoI categories as a *forest* of category
trees (e.g. Foursquare's "Food" and "Shop & Service" trees, Figure 2).
Each category belongs to exactly one tree; the depth of a root is 1.

:class:`CategoryForest` stores the forest and answers the structural
queries the SkySR machinery needs:

* ancestor chains and lowest common ancestors (for similarity, Eq. 6);
* subtree membership in O(1) via Euler-tour intervals (for the closure
  sets ``P_c`` — "a PoI associated with category c is also associated
  with all ancestors of c");
* leaves per tree (the experiment workloads draw query categories from
  leaf categories, Section 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import CategoryError


@dataclass
class Category:
    """A single node of a category tree.

    Attributes:
        cid: Integer id, unique across the whole forest.
        name: Human-readable name, unique across the whole forest.
        parent: Parent category id, or ``None`` for tree roots.
        tree_id: Id of the tree (root category id) this node belongs to.
        depth: Distance from the root, with roots at depth 1 (the
            convention required by the Wu–Palmer similarity of Eq. 6).
        children: Ids of direct child categories.
    """

    cid: int
    name: str
    parent: int | None
    tree_id: int
    depth: int
    children: list[int] = field(default_factory=list)

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def is_leaf(self) -> bool:
        return not self.children


class CategoryForest:
    """A forest of category trees with fast structural queries."""

    def __init__(self) -> None:
        self._categories: list[Category] = []
        self._by_name: dict[str, int] = {}
        self._roots: list[int] = []
        # Euler-tour intervals for O(1) subtree membership; rebuilt lazily.
        self._tin: list[int] = []
        self._tout: list[int] = []
        self._euler_dirty = True

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_root(self, name: str) -> int:
        """Create a new category tree and return the root's id."""
        cid = self._new_category(name, parent=None)
        self._roots.append(cid)
        return cid

    def add_child(self, parent: int | str, name: str) -> int:
        """Add ``name`` as a child of ``parent`` (id or name)."""
        pid = self.resolve(parent)
        cid = self._new_category(name, parent=pid)
        self._categories[pid].children.append(cid)
        return cid

    def add_path(self, *names: str) -> int:
        """Ensure a root-to-leaf chain of categories exists.

        ``add_path("Food", "Asian Restaurant")`` creates the root "Food"
        (if missing) and "Asian Restaurant" beneath it (if missing),
        returning the id of the last category in the chain.
        """
        if not names:
            raise CategoryError("add_path requires at least one name")
        first = names[0]
        if first in self._by_name:
            cid = self._by_name[first]
            if self._categories[cid].parent is not None:
                raise CategoryError(
                    f"category {first!r} exists but is not a root"
                )
        else:
            cid = self.add_root(first)
        for name in names[1:]:
            if name in self._by_name:
                existing = self._categories[self._by_name[name]]
                if existing.parent != cid:
                    raise CategoryError(
                        f"category {name!r} exists under a different parent"
                    )
                cid = existing.cid
            else:
                cid = self.add_child(cid, name)
        return cid

    def _new_category(self, name: str, parent: int | None) -> int:
        if not name:
            raise CategoryError("category name must be non-empty")
        if name in self._by_name:
            raise CategoryError(f"duplicate category name: {name!r}")
        cid = len(self._categories)
        if parent is None:
            tree_id, depth = cid, 1
        else:
            parent_cat = self._categories[parent]
            tree_id, depth = parent_cat.tree_id, parent_cat.depth + 1
        self._categories.append(
            Category(cid=cid, name=name, parent=parent, tree_id=tree_id, depth=depth)
        )
        self._by_name[name] = cid
        self._euler_dirty = True
        return cid

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def resolve(self, ref: int | str | Category) -> int:
        """Normalize a category reference (id, name, or object) to an id."""
        if isinstance(ref, Category):
            return ref.cid
        if isinstance(ref, str):
            try:
                return self._by_name[ref]
            except KeyError:
                raise CategoryError(f"unknown category name: {ref!r}") from None
        cid = int(ref)
        if not 0 <= cid < len(self._categories):
            raise CategoryError(f"unknown category id: {cid}")
        return cid

    def category(self, ref: int | str | Category) -> Category:
        return self._categories[self.resolve(ref)]

    def name_of(self, cid: int) -> str:
        return self._categories[self.resolve(cid)].name

    def depth(self, ref: int | str) -> int:
        return self.category(ref).depth

    def tree_id(self, ref: int | str) -> int:
        return self.category(ref).tree_id

    def parent_of(self, ref: int | str) -> int | None:
        return self.category(ref).parent

    def children_of(self, ref: int | str) -> list[int]:
        return list(self.category(ref).children)

    @property
    def roots(self) -> list[int]:
        return list(self._roots)

    def __len__(self) -> int:
        return len(self._categories)

    def __contains__(self, ref: object) -> bool:
        if isinstance(ref, str):
            return ref in self._by_name
        if isinstance(ref, int):
            return 0 <= ref < len(self._categories)
        return False

    def __iter__(self) -> Iterator[Category]:
        return iter(self._categories)

    def names(self) -> list[str]:
        return [c.name for c in self._categories]

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------

    def ancestors(self, ref: int | str, include_self: bool = True) -> list[int]:
        """Ancestor chain from ``ref`` up to its root (self first).

        This is the paper's ``a(c)`` set (self included by default).
        """
        cid = self.resolve(ref)
        chain: list[int] = []
        cur: int | None = cid if include_self else self._categories[cid].parent
        while cur is not None:
            chain.append(cur)
            cur = self._categories[cur].parent
        return chain

    def _ensure_euler(self) -> None:
        if not self._euler_dirty:
            return
        n = len(self._categories)
        self._tin = [0] * n
        self._tout = [0] * n
        clock = 0
        for root in self._roots:
            # Iterative DFS: (cid, child-cursor) to avoid recursion limits.
            stack: list[tuple[int, int]] = [(root, 0)]
            self._tin[root] = clock
            clock += 1
            while stack:
                cid, cursor = stack[-1]
                children = self._categories[cid].children
                if cursor < len(children):
                    stack[-1] = (cid, cursor + 1)
                    child = children[cursor]
                    self._tin[child] = clock
                    clock += 1
                    stack.append((child, 0))
                else:
                    self._tout[cid] = clock
                    clock += 1
                    stack.pop()
        self._euler_dirty = False

    def is_ancestor_or_self(self, anc: int | str, desc: int | str) -> bool:
        """True iff ``anc`` is an ancestor of ``desc`` (or equal).

        O(1) after the first call (Euler intervals)."""
        a, d = self.resolve(anc), self.resolve(desc)
        if self._categories[a].tree_id != self._categories[d].tree_id:
            return False
        self._ensure_euler()
        return self._tin[a] <= self._tin[d] and self._tout[d] <= self._tout[a]

    def lca(self, a: int | str, b: int | str) -> int | None:
        """Lowest common ancestor, or ``None`` when in different trees."""
        ca, cb = self.category(a), self.category(b)
        if ca.tree_id != cb.tree_id:
            return None
        x, y = ca, cb
        while x.depth > y.depth:
            x = self._categories[x.parent]  # type: ignore[arg-type]
        while y.depth > x.depth:
            y = self._categories[y.parent]  # type: ignore[arg-type]
        while x.cid != y.cid:
            x = self._categories[x.parent]  # type: ignore[arg-type]
            y = self._categories[y.parent]  # type: ignore[arg-type]
        return x.cid

    def subtree(self, ref: int | str) -> list[int]:
        """All category ids in the subtree rooted at ``ref`` (inclusive)."""
        cid = self.resolve(ref)
        out: list[int] = []
        stack = [cid]
        while stack:
            cur = stack.pop()
            out.append(cur)
            stack.extend(self._categories[cur].children)
        return out

    def categories_in_tree(self, tree_id: int) -> list[int]:
        return self.subtree(self.resolve(tree_id))

    def leaves(self, tree: int | str | None = None) -> list[int]:
        """All leaf category ids (optionally restricted to one tree)."""
        if tree is None:
            return [c.cid for c in self._categories if c.is_leaf]
        tid = self.category(tree).tree_id
        return [
            c.cid for c in self._categories if c.is_leaf and c.tree_id == tid
        ]

    def path_length(self, a: int | str, b: int | str) -> int | None:
        """Number of edges on the tree path between two categories."""
        low = self.lca(a, b)
        if low is None:
            return None
        da, db = self.depth(a), self.depth(b)
        dl = self._categories[low].depth
        return (da - dl) + (db - dl)

    def max_depth(self, tree: int | str | None = None) -> int:
        cats: Iterable[Category] = self._categories
        if tree is not None:
            tid = self.category(tree).tree_id
            cats = (c for c in self._categories if c.tree_id == tid)
        return max((c.depth for c in cats), default=0)

    def validate(self) -> None:
        """Check structural invariants; raises :class:`CategoryError`."""
        for cat in self._categories:
            if cat.parent is not None:
                parent = self._categories[cat.parent]
                if cat.cid not in parent.children:
                    raise CategoryError(
                        f"category {cat.name!r} missing from parent's children"
                    )
                if cat.depth != parent.depth + 1:
                    raise CategoryError(f"bad depth at {cat.name!r}")
                if cat.tree_id != parent.tree_id:
                    raise CategoryError(f"bad tree id at {cat.name!r}")
            else:
                if cat.depth != 1 or cat.tree_id != cat.cid:
                    raise CategoryError(f"bad root bookkeeping at {cat.name!r}")

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "categories": [
                {"cid": c.cid, "name": c.name, "parent": c.parent}
                for c in self._categories
            ]
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CategoryForest":
        forest = cls()
        entries = sorted(payload["categories"], key=lambda e: e["cid"])
        for expected, entry in enumerate(entries):
            if entry["cid"] != expected:
                raise CategoryError("category ids must be dense and ordered")
            if entry["parent"] is None:
                forest.add_root(entry["name"])
            else:
                forest.add_child(entry["parent"], entry["name"])
        return forest

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CategoryForest(trees={len(self._roots)}, "
            f"categories={len(self._categories)})"
        )
