"""The running example of the paper (Figure 1 / Example 1.1).

A small hand-built road network with 13 PoIs named ``p1 … p13`` whose
categories follow Figure 1: Asian restaurants (A), Italian restaurants
(I), Arts & Entertainment places, Gift shops (G) and Hobby shops (H),
plus the start vertex ``vq``.  The exact geometry of the paper's figure
is not fully specified, so this instance reproduces its *semantics*
(which categories exist where, who matches whom) on a regular grid; the
test suite uses it for end-to-end sanity checks (e.g. BSSR equals the
brute-force oracle, the skyline contains both perfect and generalized
routes).

All edge weights are small integers, so length scores are exact floats.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.poi import PoIIndex
from repro.graph.road_network import RoadNetwork
from repro.semantics.category import CategoryForest
from repro.semantics.foursquare import build_foursquare_forest


@dataclass
class Dataset:
    """A bundled benchmark instance: network + forest (+ markers)."""

    name: str
    network: RoadNetwork
    forest: CategoryForest
    landmarks: dict[str, int] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)
    _index: PoIIndex | None = field(default=None, repr=False)

    @property
    def index(self) -> PoIIndex:
        if self._index is None:
            self._index = PoIIndex(self.network, self.forest)
        return self._index

    def summary(self) -> dict:
        card = dict(self.network.summary())
        card["name"] = self.name
        card["categories"] = len(self.forest)
        card["trees"] = len(self.forest.roots)
        return card


# grid shape of the example instance
_ROWS, _COLS = 5, 6
_SPACING = 2.0  # so midpoint splits give integer sub-weights


def figure1_dataset() -> Dataset:
    """Build the Figure-1 example instance (deterministic)."""
    forest = build_foursquare_forest()
    network = RoadNetwork()

    ids: list[list[int]] = []
    for r in range(_ROWS):
        row = []
        for c in range(_COLS):
            row.append(network.add_vertex(c * _SPACING, r * _SPACING))
        ids.append(row)
    for r in range(_ROWS):
        for c in range(_COLS):
            if c + 1 < _COLS:
                network.add_edge(ids[r][c], ids[r][c + 1], _SPACING)
            if r + 1 < _ROWS:
                network.add_edge(ids[r][c], ids[r + 1][c], _SPACING)

    asian = forest.resolve("Asian Restaurant")
    italian = forest.resolve("Italian Restaurant")
    arts = forest.resolve("Arts & Entertainment")
    museum = forest.resolve("Museum")
    gift = forest.resolve("Gift Shop")
    hobby = forest.resolve("Hobby Shop")

    def split(r1: int, c1: int, r2: int, c2: int, category: int) -> int:
        """Embed a PoI at the midpoint of a grid edge (weights 1 + 1)."""
        u, v = ids[r1][c1], ids[r2][c2]
        cu, cv = network.coords(u), network.coords(v)
        assert cu is not None and cv is not None
        pid = network.add_poi(
            category, (cu[0] + cv[0]) / 2.0, (cu[1] + cv[1]) / 2.0
        )
        network.add_edge(u, pid, 1.0)
        network.add_edge(pid, v, 1.0)
        return pid

    landmarks = {
        "vq": ids[2][0],
        # Figure 1 PoIs (category letters as in the paper's legend)
        "p1": split(1, 0, 1, 1, italian),   # I
        "p2": split(2, 1, 2, 2, asian),     # A — closest Asian to vq
        "p3": split(0, 3, 0, 4, hobby),     # H
        "p4": split(1, 4, 1, 5, hobby),     # H
        "p5": split(2, 2, 2, 3, arts),      # A&E
        "p6": split(3, 0, 3, 1, asian),     # A
        "p7": split(2, 3, 2, 4, hobby),     # H (semantic match for Gift)
        "p8": split(2, 4, 2, 5, gift),      # G
        "p9": split(3, 2, 3, 3, museum),    # A&E subtree
        "p10": split(1, 1, 2, 1, asian),    # A
        "p11": split(4, 0, 4, 1, italian),  # I
        "p12": split(1, 2, 1, 3, arts),     # A&E
        "p13": split(1, 3, 1, 4, gift),     # G
    }
    return Dataset(
        name="figure1",
        network=network,
        forest=forest,
        landmarks=landmarks,
        meta={
            "source": "paper Figure 1 / Example 1.1 (reconstructed geometry)",
            "query": ("Asian Restaurant", "Arts & Entertainment", "Gift Shop"),
        },
    )


def figure1_query() -> tuple[str, str, str]:
    """The Example 1.1 category sequence."""
    return ("Asian Restaurant", "Arts & Entertainment", "Gift Shop")
