"""Datasets: synthetic generators, presets, workloads, paper example."""

from repro.datasets.paper_example import (
    Dataset,
    figure1_dataset,
    figure1_query,
)
from repro.datasets.poi_placement import (
    assign_categories,
    place_pois_clustered,
    place_pois_uniform,
    zipf_weights,
)
from repro.datasets.presets import (
    PRESETS,
    by_name,
    cal_like,
    mini_city,
    nyc_like,
    tokyo_like,
)
from repro.datasets.synthetic import grid_city, radial_city, random_geometric
from repro.datasets.taxonomy import forest_statistics, synthetic_forest
from repro.datasets.workloads import (
    QuerySpec,
    generate_workload,
    popular_leaf_categories,
)

__all__ = [
    "Dataset",
    "figure1_dataset",
    "figure1_query",
    "grid_city",
    "radial_city",
    "random_geometric",
    "place_pois_uniform",
    "place_pois_clustered",
    "assign_categories",
    "zipf_weights",
    "synthetic_forest",
    "forest_statistics",
    "tokyo_like",
    "nyc_like",
    "cal_like",
    "mini_city",
    "by_name",
    "PRESETS",
    "QuerySpec",
    "generate_workload",
    "popular_leaf_categories",
]
