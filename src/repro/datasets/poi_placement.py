"""PoI placement on synthetic road networks.

Mirrors the paper's data preparation: PoIs are embedded on road edges
(each PoI becomes a network vertex splitting an edge, Section 7.1), PoI
counts per category are heavily skewed ("the number of PoI vertices
associated with each category is significantly biased"), and the
spatial distribution can be uniform (Tokyo-like sprawl) or clustered
(NYC-like density, Cal-like corridor towns) — the property Figure 4 of
the paper attributes the lower-bound behaviour to.
"""

from __future__ import annotations

import random

from repro.errors import DataError
from repro.graph.road_network import RoadNetwork
from repro.semantics.category import CategoryForest


def zipf_weights(n: int, exponent: float = 1.0) -> list[float]:
    """Zipf-like weights 1/rank^exponent (unnormalized)."""
    return [1.0 / (rank**exponent) for rank in range(1, n + 1)]


def assign_categories(
    count: int,
    categories: list[int],
    rng: random.Random,
    *,
    skew: float = 1.0,
) -> list[int]:
    """Draw ``count`` category ids with Zipf-skewed popularity.

    The popularity ranking itself is shuffled by ``rng`` so different
    seeds make different categories popular.
    """
    if not categories:
        raise DataError("no categories to assign")
    ranked = list(categories)
    rng.shuffle(ranked)
    weights = zipf_weights(len(ranked), skew)
    return rng.choices(ranked, weights=weights, k=count)


def _split_edge(
    network: RoadNetwork,
    u: int,
    v: int,
    w: float,
    t: float,
    category: int,
) -> int:
    """Insert a PoI vertex at fraction ``t`` along edge ``(u, v)``."""
    cu, cv = network.coords(u), network.coords(v)
    if cu is not None and cv is not None:
        x = cu[0] + t * (cv[0] - cu[0])
        y = cu[1] + t * (cv[1] - cu[1])
        pid = network.add_poi(category, x, y)
    else:
        pid = network.add_poi(category)
    network.add_edge(u, pid, t * w)
    network.add_edge(pid, v, (1.0 - t) * w)
    return pid


def place_pois_uniform(
    network: RoadNetwork,
    forest: CategoryForest,
    count: int,
    *,
    categories: list[int] | None = None,
    skew: float = 1.0,
    seed: int = 0,
) -> list[int]:
    """Embed ``count`` PoIs on uniformly random edges.

    Categories default to the forest's leaves, Zipf-skewed.  Returns
    the new PoI vertex ids.
    """
    rng = random.Random(seed)
    edges = list(network.edges())
    if not edges:
        raise DataError("network has no edges to embed PoIs on")
    cats = assign_categories(
        count, categories or forest.leaves(), rng, skew=skew
    )
    pois = []
    for category in cats:
        u, v, w = edges[rng.randrange(len(edges))]
        t = rng.uniform(0.15, 0.85)
        pois.append(_split_edge(network, u, v, w, t, category))
    return pois


def place_pois_clustered(
    network: RoadNetwork,
    forest: CategoryForest,
    count: int,
    *,
    num_clusters: int = 5,
    walk_length: int = 3,
    categories: list[int] | None = None,
    skew: float = 1.0,
    seed: int = 0,
) -> list[int]:
    """Embed PoIs around a few cluster centers.

    Each PoI starts at a random cluster center (a road vertex) and
    takes a short random walk before splitting an incident edge — PoIs
    concentrate in small neighbourhoods, which shrinks the minimum
    inter-category distances (the paper's explanation for the weak
    Figure-4 bounds on NYC/Cal).
    """
    rng = random.Random(seed)
    road_vertices = [
        vid for vid in network.vertices() if not network.is_poi(vid)
    ]
    if not road_vertices:
        raise DataError("network has no road vertices")
    centers = [
        road_vertices[rng.randrange(len(road_vertices))]
        for _ in range(max(1, num_clusters))
    ]
    cats = assign_categories(
        count, categories or forest.leaves(), rng, skew=skew
    )
    pois = []
    for category in cats:
        vertex = centers[rng.randrange(len(centers))]
        for _ in range(rng.randrange(walk_length + 1)):
            nbrs = network.neighbors(vertex)
            if not nbrs:
                break
            vertex = nbrs[rng.randrange(len(nbrs))][0]
        nbrs = network.neighbors(vertex)
        if not nbrs:
            continue
        other, w = nbrs[rng.randrange(len(nbrs))]
        t = rng.uniform(0.15, 0.85)
        pois.append(_split_edge(network, vertex, other, w, t, category))
    return pois
