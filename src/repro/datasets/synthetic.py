"""Synthetic road-network generators.

The paper evaluates on OpenStreetMap extracts (Tokyo, NYC) and the
public California road network.  Neither is reachable in this offline
environment, so these generators produce laptop-scale networks with the
*structural properties* the SkySR algorithms are sensitive to:

* :func:`grid_city` — planar, near-4-regular street grids with jittered
  geometry, random diagonals (shortcuts) and random street removals:
  the urban OSM regime (Tokyo/NYC);
* :func:`random_geometric` — sparse low-degree networks connecting
  scattered settlements: the intercity California regime;
* :func:`radial_city` — ring-and-spoke layouts, a common European city
  shape (used in tests and the prototype-service demo).

All generators take an explicit seed, always return *connected*
undirected networks with coordinates, and use edge weights equal to
Euclidean segment lengths (the paper uses lon/lat distances).
"""

from __future__ import annotations

import math
import random

from repro.errors import DataError
from repro.graph.road_network import RoadNetwork
from repro.graph.spatial import euclidean


class _UnionFind:
    """Tiny union-find for connectivity repair after edge removal."""

    def __init__(self, n: int) -> None:
        self._parent = list(range(n))

    def find(self, x: int) -> int:
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self._parent[ra] = rb
        return True


def grid_city(
    rows: int,
    cols: int,
    *,
    spacing: float = 1.0,
    jitter: float = 0.15,
    removal_prob: float = 0.08,
    diagonal_prob: float = 0.05,
    seed: int = 0,
) -> RoadNetwork:
    """A jittered street grid with removals and diagonal shortcuts.

    Removals are repaired so the result is always connected: removed
    edges that would disconnect the network are re-added.
    """
    if rows < 2 or cols < 2:
        raise DataError("grid_city needs at least a 2x2 grid")
    rng = random.Random(seed)
    network = RoadNetwork()
    ids: list[list[int]] = []
    for r in range(rows):
        row_ids = []
        for c in range(cols):
            dx = rng.uniform(-jitter, jitter) * spacing
            dy = rng.uniform(-jitter, jitter) * spacing
            row_ids.append(network.add_vertex(c * spacing + dx, r * spacing + dy))
        ids.append(row_ids)

    candidates: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                candidates.append((ids[r][c], ids[r][c + 1]))
            if r + 1 < rows:
                candidates.append((ids[r][c], ids[r + 1][c]))
            if (
                r + 1 < rows
                and c + 1 < cols
                and rng.random() < diagonal_prob
            ):
                if rng.random() < 0.5:
                    candidates.append((ids[r][c], ids[r + 1][c + 1]))
                else:
                    candidates.append((ids[r][c + 1], ids[r + 1][c]))

    kept: list[tuple[int, int]] = []
    removed: list[tuple[int, int]] = []
    for edge in candidates:
        if rng.random() < removal_prob:
            removed.append(edge)
        else:
            kept.append(edge)
    # Reconnect: re-add removed edges that bridge components.
    uf = _UnionFind(network.num_vertices)
    for u, v in kept:
        uf.union(u, v)
    rng.shuffle(removed)
    for u, v in removed:
        if uf.union(u, v):
            kept.append((u, v))

    for u, v in kept:
        cu, cv = network.coords(u), network.coords(v)
        assert cu is not None and cv is not None
        network.add_edge(u, v, euclidean(cu, cv))
    return network


def random_geometric(
    n: int,
    *,
    k_neighbors: int = 3,
    extent: float = 10.0,
    seed: int = 0,
) -> RoadNetwork:
    """Sparse k-nearest-neighbor network over random points.

    Low average degree and long inter-settlement hops — the shape of
    the California highway dataset.  Connectivity is enforced by
    linking each leftover component to its nearest settled neighbor.
    """
    if n < 2:
        raise DataError("random_geometric needs at least 2 vertices")
    rng = random.Random(seed)
    network = RoadNetwork()
    points: list[tuple[float, float]] = []
    for _ in range(n):
        point = (rng.uniform(0.0, extent), rng.uniform(0.0, extent))
        points.append(point)
        network.add_vertex(*point)

    uf = _UnionFind(n)
    seen: set[tuple[int, int]] = set()
    for vid in range(n):
        by_dist = sorted(
            (euclidean(points[vid], points[other]), other)
            for other in range(n)
            if other != vid
        )
        for d, other in by_dist[:k_neighbors]:
            key = (min(vid, other), max(vid, other))
            if key in seen:
                continue
            seen.add(key)
            network.add_edge(vid, other, d)
            uf.union(vid, other)

    # Stitch components together via their closest cross pairs.
    while True:
        roots: dict[int, list[int]] = {}
        for vid in range(n):
            roots.setdefault(uf.find(vid), []).append(vid)
        if len(roots) == 1:
            break
        groups = sorted(roots.values(), key=len, reverse=True)
        main, rest = groups[0], groups[1:]
        for group in rest:
            best = min(
                (
                    (euclidean(points[a], points[b]), a, b)
                    for a in group
                    for b in main
                ),
            )
            d, a, b = best
            network.add_edge(a, b, d)
            uf.union(a, b)
    return network


def radial_city(
    rings: int,
    spokes: int,
    *,
    ring_spacing: float = 1.0,
    seed: int = 0,
) -> RoadNetwork:
    """Concentric ring roads joined by radial spokes, plus a center."""
    if rings < 1 or spokes < 3:
        raise DataError("radial_city needs >=1 ring and >=3 spokes")
    rng = random.Random(seed)
    network = RoadNetwork()
    center = network.add_vertex(0.0, 0.0)
    ring_ids: list[list[int]] = []
    for ring in range(1, rings + 1):
        radius = ring * ring_spacing
        ids = []
        for s in range(spokes):
            angle = 2.0 * math.pi * s / spokes + rng.uniform(-0.05, 0.05)
            ids.append(
                network.add_vertex(
                    radius * math.cos(angle), radius * math.sin(angle)
                )
            )
        ring_ids.append(ids)
    for s in range(spokes):
        prev = center
        for ring in range(rings):
            cur = ring_ids[ring][s]
            ca, cb = network.coords(prev), network.coords(cur)
            assert ca is not None and cb is not None
            network.add_edge(prev, cur, euclidean(ca, cb))
            prev = cur
    for ring in range(rings):
        for s in range(spokes):
            a = ring_ids[ring][s]
            b = ring_ids[ring][(s + 1) % spokes]
            ca, cb = network.coords(a), network.coords(b)
            assert ca is not None and cb is not None
            network.add_edge(a, b, euclidean(ca, cb))
    return network
