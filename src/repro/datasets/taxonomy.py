"""Synthetic category-forest generation.

The California dataset ships PoI categories without any hierarchy; the
paper synthesizes one ("we generate a category of height three where a
non-leaf node has three child nodes", footnote 5).
:func:`synthetic_forest` generalizes that construction.
"""

from __future__ import annotations

from repro.errors import DataError
from repro.semantics.category import CategoryForest


def synthetic_forest(
    num_trees: int,
    *,
    height: int = 3,
    fanout: int = 3,
    prefix: str = "Cat",
) -> CategoryForest:
    """A uniform forest: ``num_trees`` trees of the given height/fanout.

    Height counts levels (the paper's Cal forest has height 3: root,
    middle, leaves).  Category names are ``{prefix}{tree}.{path}``.
    """
    if num_trees < 1 or height < 1 or fanout < 1:
        raise DataError("num_trees, height and fanout must be positive")
    forest = CategoryForest()
    for t in range(num_trees):
        root = forest.add_root(f"{prefix}{t}")
        frontier = [(root, f"{prefix}{t}")]
        for _level in range(height - 1):
            next_frontier = []
            for parent, name in frontier:
                for child_idx in range(fanout):
                    child_name = f"{name}.{child_idx}"
                    cid = forest.add_child(parent, child_name)
                    next_frontier.append((cid, child_name))
            frontier = next_frontier
    return forest


def forest_statistics(forest: CategoryForest) -> dict[str, int]:
    """Tree count / category count / leaf count / max depth summary."""
    return {
        "trees": len(forest.roots),
        "categories": len(forest),
        "leaves": len(forest.leaves()),
        "max_depth": forest.max_depth(),
    }
