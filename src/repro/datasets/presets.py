"""Preset datasets: laptop-scale stand-ins for the paper's Table 5.

=========  ==========================  ===========================================
preset     paper dataset               reproduced structural properties
=========  ==========================  ===========================================
tokyo_like Tokyo (OSM + Foursquare)    dense urban grid, |P|/|V| ≈ 0.43,
                                       *dispersed* PoIs, 10-tree taxonomy
nyc_like   New York City               dense grid, |P|/|V| ≈ 0.39, strongly
                                       *clustered* PoIs, 10-tree taxonomy
cal_like   California (Li et al.)      sparse intercity network, |P| ≫ |V|
                                       (≈ 4.1×), synthetic height-3/fanout-3
                                       forest (the paper's own footnote-5 rule)
=========  ==========================  ===========================================

Absolute sizes are scaled down (Python, single laptop); the ``scale``
parameter trades fidelity for speed, and each dataset records the
paper's original Table-5 numbers in ``meta["paper"]``.
"""

from __future__ import annotations

from repro.datasets.paper_example import Dataset, figure1_dataset
from repro.datasets.poi_placement import (
    place_pois_clustered,
    place_pois_uniform,
)
from repro.datasets.synthetic import grid_city, random_geometric
from repro.datasets.taxonomy import synthetic_forest
from repro.errors import DataError
from repro.semantics.foursquare import build_foursquare_forest


def _side(base: int, scale: float) -> int:
    side = int(round(base * (scale**0.5)))
    return max(4, side)


def tokyo_like(scale: float = 1.0, seed: int = 42) -> Dataset:
    """Dense urban grid with dispersed PoIs (Tokyo regime)."""
    if scale <= 0:
        raise DataError("scale must be positive")
    side = _side(56, scale)
    network = grid_city(
        side,
        side,
        spacing=1.0,
        jitter=0.15,
        removal_prob=0.08,
        diagonal_prob=0.06,
        seed=seed,
    )
    forest = build_foursquare_forest()
    num_pois = int(0.43 * network.num_vertices)
    place_pois_uniform(
        network, forest, num_pois, skew=0.9, seed=seed + 1
    )
    return Dataset(
        name="tokyo-like",
        network=network,
        forest=forest,
        meta={
            "paper": {"dataset": "Tokyo", "|V|": 401_893, "|P|": 174_421, "|E|": 499_397},
            "placement": "uniform",
            "scale": scale,
            "seed": seed,
        },
    )


def nyc_like(scale: float = 1.0, seed: int = 7) -> Dataset:
    """Dense urban grid with strongly clustered PoIs (NYC regime)."""
    if scale <= 0:
        raise DataError("scale must be positive")
    side = _side(64, scale)
    network = grid_city(
        side,
        side,
        spacing=1.0,
        jitter=0.12,
        removal_prob=0.06,
        diagonal_prob=0.04,
        seed=seed,
    )
    forest = build_foursquare_forest()
    num_pois = int(0.39 * network.num_vertices)
    place_pois_clustered(
        network,
        forest,
        num_pois,
        num_clusters=max(3, side // 8),
        walk_length=3,
        skew=1.0,
        seed=seed + 1,
    )
    return Dataset(
        name="nyc-like",
        network=network,
        forest=forest,
        meta={
            "paper": {"dataset": "NYC", "|V|": 1_150_744, "|P|": 451_051, "|E|": 1_722_350},
            "placement": "clustered",
            "scale": scale,
            "seed": seed,
        },
    )


def cal_like(scale: float = 1.0, seed: int = 3) -> Dataset:
    """Sparse intercity network where PoIs outnumber road vertices."""
    if scale <= 0:
        raise DataError("scale must be positive")
    n = max(60, int(round(950 * scale)))
    network = random_geometric(n, k_neighbors=3, extent=14.0, seed=seed)
    # The paper's Cal forest: synthetic height-3 trees (footnote 5); the
    # dataset has 635 categories — 49 trees of 13 categories ≈ 637.
    forest = synthetic_forest(49, height=3, fanout=3, prefix="Cal")
    num_pois = int(4.1 * network.num_vertices)
    place_pois_clustered(
        network,
        forest,
        num_pois,
        num_clusters=max(4, n // 60),
        walk_length=2,
        skew=0.8,
        seed=seed + 1,
    )
    return Dataset(
        name="cal-like",
        network=network,
        forest=forest,
        meta={
            "paper": {"dataset": "Cal", "|V|": 21_048, "|P|": 87_365, "|E|": 108_863},
            "placement": "clustered",
            "scale": scale,
            "seed": seed,
        },
    )


def mini_city() -> Dataset:
    """The deterministic Figure-1 instance (quickstart / tests)."""
    data = figure1_dataset()
    data.landmarks.setdefault("station", data.landmarks["vq"])
    return data


#: preset registry for the CLI and the experiment harness
PRESETS = {
    "tokyo": tokyo_like,
    "nyc": nyc_like,
    "cal": cal_like,
}


def by_name(name: str, scale: float = 1.0, seed: int | None = None) -> Dataset:
    """Instantiate a preset by registry name."""
    if name in ("mini", "figure1"):
        return mini_city()
    try:
        factory = PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS) + ["mini"])
        raise DataError(f"unknown preset {name!r} (known: {known})") from None
    if seed is None:
        return factory(scale)
    return factory(scale, seed)
