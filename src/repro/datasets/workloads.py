"""Query workload generation (Section 7.1).

"For each dataset, we generate 100 searches ... The start points are
selected randomly from vertices in the maps.  The categories of
sequences are selected randomly from the leaf nodes in the category
trees with the constraint that they have different category trees.
Since the number of PoI vertices associated with each category is
significantly biased, we select only categories that have a large
number of PoI vertices."
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.paper_example import Dataset
from repro.errors import DataError


@dataclass(frozen=True)
class QuerySpec:
    """One generated query: start vertex + category-id sequence."""

    start: int
    categories: tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.categories)


def popular_leaf_categories(
    dataset: Dataset,
    *,
    min_count: int | None = None,
    leaf_only: bool = True,
) -> list[int]:
    """Leaf categories with "a large number" of PoIs.

    Default threshold: at least the median count over populated leaves
    (and never fewer than 2 PoIs).  ``leaf_only=False`` widens the pool
    to every populated category — useful for hand-built datasets whose
    PoIs carry inner categories (the paper's workloads always use
    leaves, which the default enforces).
    """
    counts = dataset.index.category_counts()
    pool = dataset.forest.leaves() if leaf_only else list(counts)
    populated = [
        (cid, counts.get(cid, 0)) for cid in pool if counts.get(cid, 0) > 0
    ]
    if not populated:
        raise DataError(f"dataset {dataset.name} has no populated leaves")
    if min_count is None:
        ordered = sorted(count for _, count in populated)
        median = ordered[len(ordered) // 2]
        min_count = max(2, median)
    return [cid for cid, count in populated if count >= min_count]


def generate_workload(
    dataset: Dataset,
    sequence_size: int,
    num_queries: int,
    *,
    seed: int = 0,
    min_count: int | None = None,
    road_vertices_only: bool = True,
    leaf_only: bool = True,
) -> list[QuerySpec]:
    """Random queries per the paper's recipe (distinct category trees)."""
    if sequence_size < 1:
        raise DataError("sequence_size must be >= 1")
    rng = random.Random(seed)
    forest = dataset.forest
    candidates = popular_leaf_categories(
        dataset, min_count=min_count, leaf_only=leaf_only
    )
    by_tree: dict[int, list[int]] = {}
    for cid in candidates:
        by_tree.setdefault(forest.tree_id(cid), []).append(cid)
    if len(by_tree) < sequence_size:
        raise DataError(
            f"dataset {dataset.name} has only {len(by_tree)} populated "
            f"trees; cannot build sequences of size {sequence_size}"
        )
    network = dataset.network
    if road_vertices_only:
        starts = [v for v in network.vertices() if not network.is_poi(v)]
    else:
        starts = list(network.vertices())
    tree_ids = list(by_tree)
    queries = []
    for _ in range(num_queries):
        trees = rng.sample(tree_ids, sequence_size)
        cats = tuple(by_tree[t][rng.randrange(len(by_tree[t]))] for t in trees)
        queries.append(
            QuerySpec(start=starts[rng.randrange(len(starts))], categories=cats)
        )
    return queries
