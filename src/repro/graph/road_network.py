"""Road network with embedded PoI vertices.

The paper assumes a connected graph ``G = (V ∪ P, E)`` where ``V`` are
plain road vertices, ``P`` are PoI vertices embedded in the network, and
edges carry non-negative weights (travel distance or duration,
Section 3).  :class:`RoadNetwork` stores both vertex kinds in a single
integer-id space; PoI-ness is an attribute (a vertex with one or more
category ids).

Undirected by default; pass ``directed=True`` for the Section 6
"directed graphs" variation — every algorithm in the library works on
both (they only consume :meth:`neighbors` / :meth:`in_neighbors`).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import GraphError


class RoadNetwork:
    """Adjacency-list road network with PoI vertices.

    Vertices are dense integer ids assigned by :meth:`add_vertex`.
    Optional ``(x, y)`` coordinates support the spatial helpers, the
    synthetic generators and GeoJSON export; the core algorithms never
    require them.
    """

    def __init__(self, directed: bool = False) -> None:
        self.directed = directed
        self._adj: list[list[tuple[int, float]]] = []
        self._radj: list[list[tuple[int, float]]] = []  # only when directed
        self._coords: list[tuple[float, float] | None] = []
        self._poi_cats: dict[int, tuple[int, ...]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_vertex(
        self, x: float | None = None, y: float | None = None
    ) -> int:
        """Add a road vertex; returns its id."""
        vid = len(self._adj)
        self._adj.append([])
        if self.directed:
            self._radj.append([])
        if x is None or y is None:
            self._coords.append(None)
        else:
            self._coords.append((float(x), float(y)))
        return vid

    def add_poi(
        self,
        categories: int | Iterable[int],
        x: float | None = None,
        y: float | None = None,
    ) -> int:
        """Add a PoI vertex with one or more category ids."""
        vid = self.add_vertex(x, y)
        self.set_poi(vid, categories)
        return vid

    def set_poi(self, vid: int, categories: int | Iterable[int]) -> None:
        """Mark an existing vertex as a PoI with the given categories.

        The common case is a single category (the paper's base setting);
        a tuple enables the Section 6 "PoI with multiple categories"
        variation.
        """
        self._check_vertex(vid)
        if isinstance(categories, int):
            cats: tuple[int, ...] = (categories,)
        else:
            cats = tuple(dict.fromkeys(int(c) for c in categories))
        if not cats:
            raise GraphError("a PoI needs at least one category")
        self._poi_cats[vid] = cats

    def clear_poi(self, vid: int) -> None:
        """Demote a PoI vertex back to a plain road vertex."""
        self._poi_cats.pop(vid, None)

    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Add an edge (one arc when directed, both directions otherwise)."""
        self._check_vertex(u)
        self._check_vertex(v)
        w = float(weight)
        if w < 0:
            raise GraphError(f"negative edge weight {w} on ({u}, {v})")
        if u == v:
            raise GraphError(f"self-loop on vertex {u}")
        self._adj[u].append((v, w))
        if self.directed:
            self._radj[v].append((u, w))
        else:
            self._adj[v].append((u, w))
        self._num_edges += 1

    def _check_vertex(self, vid: int) -> None:
        if not 0 <= vid < len(self._adj):
            raise GraphError(f"unknown vertex id: {vid}")

    # ------------------------------------------------------------------
    # topology accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Total number of vertices, |V| + |P|."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def num_pois(self) -> int:
        return len(self._poi_cats)

    @property
    def num_road_vertices(self) -> int:
        """|V|: vertices that are not PoIs."""
        return self.num_vertices - self.num_pois

    def vertices(self) -> range:
        return range(len(self._adj))

    def neighbors(self, vid: int) -> list[tuple[int, float]]:
        """Outgoing ``(neighbor, weight)`` pairs."""
        return self._adj[vid]

    def in_neighbors(self, vid: int) -> list[tuple[int, float]]:
        """Incoming ``(neighbor, weight)`` pairs (== neighbors if undirected)."""
        if self.directed:
            return self._radj[vid]
        return self._adj[vid]

    def degree(self, vid: int) -> int:
        return len(self._adj[vid])

    def has_edge(self, u: int, v: int) -> bool:
        return any(nbr == v for nbr, _ in self._adj[u])

    def edge_weight(self, u: int, v: int) -> float:
        for nbr, w in self._adj[u]:
            if nbr == v:
                return w
        raise GraphError(f"no edge ({u}, {v})")

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate edges once (``u < v`` for undirected graphs)."""
        for u in range(len(self._adj)):
            for v, w in self._adj[u]:
                if self.directed or u < v:
                    yield (u, v, w)

    def total_edge_weight(self) -> float:
        return sum(w for _, _, w in self.edges())

    # ------------------------------------------------------------------
    # PoI accessors
    # ------------------------------------------------------------------

    def is_poi(self, vid: int) -> bool:
        return vid in self._poi_cats

    def poi_categories(self, vid: int) -> tuple[int, ...]:
        """Category ids of a PoI vertex (empty tuple for road vertices)."""
        return self._poi_cats.get(vid, ())

    def poi_vertices(self) -> list[int]:
        return list(self._poi_cats)

    def poi_items(self) -> Iterator[tuple[int, tuple[int, ...]]]:
        return iter(self._poi_cats.items())

    # ------------------------------------------------------------------
    # coordinates
    # ------------------------------------------------------------------

    def set_coords(self, vid: int, x: float, y: float) -> None:
        self._check_vertex(vid)
        self._coords[vid] = (float(x), float(y))

    def coords(self, vid: int) -> tuple[float, float] | None:
        return self._coords[vid]

    def has_coords(self) -> bool:
        return all(c is not None for c in self._coords)

    # ------------------------------------------------------------------
    # structure utilities
    # ------------------------------------------------------------------

    def connected_component(self, start: int) -> set[int]:
        """Vertices reachable from ``start`` following outgoing edges."""
        seen = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for v, _ in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return seen

    def is_connected(self) -> bool:
        """Weak reachability from vertex 0 (undirected interpretation)."""
        if self.num_vertices == 0:
            return True
        if not self.directed:
            return len(self.connected_component(0)) == self.num_vertices
        seen = {0}
        stack = [0]
        while stack:
            u = stack.pop()
            for v, _ in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
            for v, _ in self._radj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == self.num_vertices

    def memory_footprint(self) -> int:
        """Approximate resident bytes of the graph structures.

        Used by the Table-6 memory experiment: the paper reports RSS,
        which at scale is dominated by the graph for BSSR/PNE; this
        estimate (adjacency lists, coordinates, PoI table) plays that
        role for the scaled-down datasets.
        """
        import sys

        total = sys.getsizeof(self._adj) + sys.getsizeof(self._coords)
        for lst in self._adj:
            total += sys.getsizeof(lst) + len(lst) * 72  # tuple + float
        if self.directed:
            total += sys.getsizeof(self._radj)
            for lst in self._radj:
                total += sys.getsizeof(lst) + len(lst) * 72
        for coords in self._coords:
            if coords is not None:
                total += 120  # tuple of two floats
        total += sys.getsizeof(self._poi_cats) + 96 * len(self._poi_cats)
        return total

    def summary(self) -> dict[str, int | bool]:
        """Dataset-card numbers in the shape of the paper's Table 5."""
        return {
            "|V|": self.num_road_vertices,
            "|P|": self.num_pois,
            "|E|": self.num_edges,
            "directed": self.directed,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "directed" if self.directed else "undirected"
        return (
            f"RoadNetwork({kind}, |V|={self.num_road_vertices}, "
            f"|P|={self.num_pois}, |E|={self.num_edges})"
        )
