"""ALT landmarks: triangle-inequality lower bounds on network distance.

Goldberg & Harrelson's A*-landmark technique, adapted to BSSR's
pruning needs.  A small set of *landmarks* is chosen with the
farthest-point heuristic; for each landmark ``l`` we precompute the
full distance table *from* ``l`` (and, on directed graphs, *to* ``l``
via reverse Dijkstra).  The triangle inequality then gives, for any
pair ``(u, v)``::

    d(u, v) >= d(l, v) - d(l, u)        (from-table form)
    d(u, v) >= d(u, l) - d(v, l)        (to-table form)

and the maximum over landmarks and forms is a valid — often sharp —
lower bound computed in O(#landmarks).

Beyond pairwise bounds, BSSR needs bounds against *vertex sets* (the
candidate PoIs of a query position).  :meth:`LandmarkIndex.profile`
reduces a set ``S`` to four floats per landmark (min/max of each
table over ``S``); :meth:`min_between` then lower-bounds
``min_{p∈S1, q∈S2} d(p, q)`` from profiles alone, again in
O(#landmarks) regardless of ``|S|``.  ``inf`` entries (disconnected
components) are guarded explicitly — ``inf - inf`` is NaN and must
never reach a comparison.

Tables are built on the CSR kernels (:mod:`repro.graph.csr`) and
memoized per network via :func:`landmarks_for`, so deserialized
searches (which have a network but no engine) share the same index.
"""

from __future__ import annotations

import math
from collections.abc import Collection, Sequence
from typing import TYPE_CHECKING

from repro.graph.csr import batched_min_distances
from repro.graph.dijkstra import dijkstra

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.road_network import RoadNetwork

_INF = math.inf

#: default landmark count — diminishing returns beyond ~8 on city graphs
DEFAULT_LANDMARKS = 8

#: per-landmark set summary: (min_from, max_from, min_to, max_to) over S
Profile = list[tuple[float, float, float, float]]

#: relative slack absorbing float accumulation noise (see :func:`_shaved`)
_EPS = 1e-9

def _shaved(a: float, b: float) -> float:
    """Robust lower bound on the exact difference ``a - b``.

    ``a`` and ``b`` are shortest-path sums accumulated in different
    edge orders, so the float difference can exceed the true value by
    a few ULPs — enough to prune a route that ties a threshold
    exactly.  Shaving by a relative epsilon keeps every bound strictly
    safe while costing ~1e-9 of pruning power.  ``a == inf`` stays
    ``inf``: unreachability is exact set logic, not arithmetic
    (callers guarantee ``b`` is finite).
    """
    if a == _INF:
        return _INF
    return (a - b) - _EPS * (a + b)


def _distance_row(network: "RoadNetwork", source: int, *, reverse: bool) -> list[float]:
    # The table build is a bulk all-distances pass — exactly the shape
    # the vectorized sweep is for.  Its labels are bit-identical to the
    # scalar Dijkstra's (see :func:`batched_min_distances`), so the
    # tables — and every bound derived from them — do not depend on
    # whether numpy was available at build time.
    row = batched_min_distances(network, (source,), reverse=reverse)
    if row is not None:
        return row
    dist = dijkstra(network, source, reverse=reverse)
    assert isinstance(dist, dict)
    row = [_INF] * network.num_vertices
    for v, d in dist.items():
        row[v] = d
    return row


class LandmarkIndex:
    """Precomputed landmark distance tables over one network.

    ``_from[i][v]`` is ``d(landmark_i, v)``; ``_to[i][v]`` is
    ``d(v, landmark_i)`` (the same list object when undirected).
    Build via :func:`landmarks_for`, which memoizes per network.
    """

    __slots__ = ("landmarks", "_from", "_to", "_token", "_key_rows")

    def __init__(
        self, network: "RoadNetwork", *, count: int = DEFAULT_LANDMARKS
    ) -> None:
        self.landmarks = _select_farthest(network, count)
        self._from: list[list[float]] = []
        self._to: list[list[float]] = []
        for lm in self.landmarks:
            fr = _distance_row(network, lm, reverse=False)
            self._from.append(fr)
            if network.directed:
                self._to.append(_distance_row(network, lm, reverse=True))
            else:
                self._to.append(fr)
        self._token = (network.num_vertices, network.num_edges, count)
        self._key_rows: dict[tuple, list[float]] = {}

    def lower_bound(self, u: int, v: int) -> float:
        """Lower bound on ``d(u, v)``; exact 0 for ``u == v``."""
        if u == v:
            return 0.0
        best = 0.0
        # _shaved is inlined here (and in the two set-bound methods):
        # these run per candidate PoI / per popped route on the hot
        # path, where the extra call frame is measurable.  An infinite
        # minuend short-circuits to inf — unreachability is exact.
        for fr, to in zip(self._from, self._to):
            fu = fr[u]
            if fu != _INF:
                fv = fr[v]
                if fv == _INF:
                    return _INF
                cand = (fv - fu) - _EPS * (fv + fu)
                if cand > best:
                    best = cand
            tv = to[v]
            if tv != _INF:
                tu = to[u]
                if tu == _INF:
                    return _INF
                cand = (tu - tv) - _EPS * (tu + tv)
                if cand > best:
                    best = cand
        return best

    def restrict_within(
        self, u: int, vids: Collection[int], radius: float
    ) -> list[int]:
        """Subset of ``vids`` whose :meth:`lower_bound` from ``u`` is at
        most ``radius`` — the batch form of the l̄(ϕ)-ball membership
        test, with the landmark rows for ``u`` hoisted out of the loop.
        A vertex is dropped as soon as any single form exceeds the
        radius (the max over forms then certainly does).
        """
        rows = []
        for fr, to in zip(self._from, self._to):
            rows.append((fr, fr[u], to, to[u]))
        out = []
        for v in vids:
            if v == u:
                out.append(v)
                continue
            for fr, fu, to, tu in rows:
                if fu != _INF:
                    fv = fr[v]
                    if fv == _INF or (fv - fu) - _EPS * (fv + fu) > radius:
                        break
                tv = to[v]
                if tv != _INF:
                    if tu == _INF or (tu - tv) - _EPS * (tu + tv) > radius:
                        break
            else:
                out.append(v)
        return out

    def profile(self, vertices: Collection[int]) -> Profile | None:
        """Reduce a vertex set to per-landmark table extremes.

        Returns ``None`` for an empty set (no profile → no pruning).
        The result feeds :meth:`min_between` / :meth:`min_from_vertex`,
        whose cost is then independent of ``|vertices|``.
        """
        if not vertices:
            return None
        out: Profile = []
        for fr, to in zip(self._from, self._to):
            min_fr = _INF
            max_fr = 0.0
            min_to = _INF
            max_to = 0.0
            for p in vertices:
                f = fr[p]
                if f < min_fr:
                    min_fr = f
                if f > max_fr:
                    max_fr = f
                t = to[p]
                if t < min_to:
                    min_to = t
                if t > max_to:
                    max_to = t
            out.append((min_fr, max_fr, min_to, max_to))
        return out

    def heuristic_row(
        self, key: tuple, vertices: Collection[int]
    ) -> list[float]:
        """Per-vertex lower bounds on the distance *to* a target set.

        ``row[v] <= min_{q∈S} d(v, q)`` for every vertex — the
        admissible A* heuristic toward ``S``, flattened to one list so
        the per-relaxation cost is a single index instead of a loop
        over landmarks.  Memoized under ``key``, which must name a
        query-independent set (e.g. a position spec's ``share_key`` for
        its full perfect set); the caller must pass the same set for
        the same key — this index cannot verify it.
        """
        row = self._key_rows.get(key)
        if row is None:
            prof = self.profile(vertices)
            mfv = self.min_from_vertex
            n = len(self._from[0]) if self._from else 0
            row = [mfv(v, prof) for v in range(n)]
            self._key_rows[key] = row
        return row

    def min_between(self, first: Profile | None, second: Profile | None) -> float:
        """Lower bound on ``min_{p∈S1, q∈S2} d(p, q)`` from profiles.

        For each landmark: ``d(p,q) >= d(l,q) - d(l,p) >= min_fr(S2) -
        max_fr(S1)`` and ``d(p,q) >= d(p,l) - d(q,l) >= min_to(S1) -
        max_to(S2)``, each valid only when the subtracted maximum is
        finite.
        """
        if first is None or second is None:
            return 0.0
        best = 0.0
        for (_, max_fr1, min_to1, _), (min_fr2, _, _, max_to2) in zip(
            first, second
        ):
            if max_fr1 != _INF:
                if min_fr2 == _INF:
                    return _INF
                cand = (min_fr2 - max_fr1) - _EPS * (min_fr2 + max_fr1)
                if cand > best:
                    best = cand
            if max_to2 != _INF:
                if min_to1 == _INF:
                    return _INF
                cand = (min_to1 - max_to2) - _EPS * (min_to1 + max_to2)
                if cand > best:
                    best = cand
        return best

    def min_from_vertex(self, u: int, target: Profile | None) -> float:
        """Lower bound on ``min_{q∈S} d(u, q)`` — the singleton fast path."""
        if target is None:
            return 0.0
        best = 0.0
        fr_tables = self._from
        to_tables = self._to
        for i, (min_fr, _, _, max_to) in enumerate(target):
            fu = fr_tables[i][u]
            if fu != _INF:
                if min_fr == _INF:
                    return _INF
                cand = (min_fr - fu) - _EPS * (min_fr + fu)
                if cand > best:
                    best = cand
            if max_to != _INF:
                tu = to_tables[i][u]
                if tu == _INF:
                    return _INF
                cand = (tu - max_to) - _EPS * (tu + max_to)
                if cand > best:
                    best = cand
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LandmarkIndex(landmarks={self.landmarks})"


def _select_farthest(network: "RoadNetwork", count: int) -> list[int]:
    """Farthest-point landmark selection (deterministic).

    Seed with the vertex farthest from vertex 0, then repeatedly add
    the vertex maximizing the minimum distance to the chosen set.
    Unreachable vertices sort *first* on purpose: a landmark inside an
    otherwise-uncovered component turns "no information" into exact
    infinite bounds there.  Ties break toward the smallest vertex id.
    """
    n = network.num_vertices
    if n == 0:
        return []
    count = min(count, n)
    seed_row = _distance_row(network, 0, reverse=False)
    first = _argmax_row(seed_row)
    landmarks = [first]
    min_dist = _distance_row(network, first, reverse=False)
    while len(landmarks) < count:
        nxt = _argmax_row(min_dist, exclude=landmarks)
        if nxt is None:
            break
        landmarks.append(nxt)
        row = _distance_row(network, nxt, reverse=False)
        for v in range(n):
            if row[v] < min_dist[v]:
                min_dist[v] = row[v]
    return landmarks


def _argmax_row(
    row: Sequence[float], *, exclude: Collection[int] = ()
) -> int | None:
    """Index of the largest value, inf beating any finite, min-id ties."""
    best_v: int | None = None
    best_d = -1.0
    for v, d in enumerate(row):
        if v in exclude:
            continue
        if d > best_d:
            best_v, best_d = v, d
    return best_v


def landmarks_for(
    network: "RoadNetwork", *, count: int = DEFAULT_LANDMARKS
) -> LandmarkIndex:
    """The (memoized) landmark index of ``network``.

    Rebuilt when the network's structure or the requested count
    changed.  Memoizing on the network instance (not an engine) lets
    deserialized sessions — which reconstruct searches from a network
    reference alone — reuse the tables already paid for.
    """
    cached: LandmarkIndex | None = getattr(network, "_landmark_index", None)
    token = (network.num_vertices, network.num_edges, count)
    if cached is not None and cached._token == token:
        return cached
    index = LandmarkIndex(network, count=count)
    network._landmark_index = index  # type: ignore[attr-defined]
    return index
