"""Road-network substrate: graph, Dijkstra variants, PoI index, spatial."""

from repro.graph.csr import (
    CSRGraph,
    csr_enabled,
    csr_graph,
    set_csr_enabled,
)
from repro.graph.dijkstra import (
    ExpansionCounters,
    ResumableDijkstra,
    bounded_dijkstra,
    dijkstra,
    eccentricity,
    multi_source_min_distance,
    shortest_path,
)
from repro.graph.landmarks import LandmarkIndex, landmarks_for
from repro.graph.poi import PoIIndex
from repro.graph.road_network import RoadNetwork
from repro.graph.spatial import (
    bounding_box,
    embed_poi_on_edge,
    equirectangular,
    euclidean,
    nearest_edge,
    nearest_vertex,
)

__all__ = [
    "RoadNetwork",
    "PoIIndex",
    "CSRGraph",
    "csr_graph",
    "csr_enabled",
    "set_csr_enabled",
    "LandmarkIndex",
    "landmarks_for",
    "ExpansionCounters",
    "dijkstra",
    "bounded_dijkstra",
    "shortest_path",
    "multi_source_min_distance",
    "eccentricity",
    "ResumableDijkstra",
    "euclidean",
    "equirectangular",
    "nearest_vertex",
    "nearest_edge",
    "embed_poi_on_edge",
    "bounding_box",
]
