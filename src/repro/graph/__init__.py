"""Road-network substrate: graph, Dijkstra variants, PoI index, spatial."""

from repro.graph.dijkstra import (
    ResumableDijkstra,
    bounded_dijkstra,
    dijkstra,
    eccentricity,
    multi_source_min_distance,
    shortest_path,
)
from repro.graph.poi import PoIIndex
from repro.graph.road_network import RoadNetwork
from repro.graph.spatial import (
    bounding_box,
    embed_poi_on_edge,
    equirectangular,
    euclidean,
    nearest_edge,
    nearest_vertex,
)

__all__ = [
    "RoadNetwork",
    "PoIIndex",
    "dijkstra",
    "bounded_dijkstra",
    "shortest_path",
    "multi_source_min_distance",
    "eccentricity",
    "ResumableDijkstra",
    "euclidean",
    "equirectangular",
    "nearest_vertex",
    "nearest_edge",
    "embed_poi_on_edge",
    "bounding_box",
]
