"""Dijkstra variants used across the library.

Four flavors, all lazy-deletion binary-heap implementations over
:class:`~repro.graph.road_network.RoadNetwork`:

* :func:`dijkstra` — full single-source distances (optionally with
  predecessors for path reconstruction);
* :func:`bounded_dijkstra` — single-source distances restricted to a
  radius (used to restrict candidate sets to the ``l̄(ϕ)`` ball in
  Algorithm 4 line 3);
* :func:`multi_source_min_distance` — the paper's multi-source
  multi-destination Dijkstra (Section 5.3.3, Lemma 5.9): minimum
  distance from *any* source to *any* destination, stopping at the
  first settled destination;
* :class:`ResumableDijkstra` — an incremental expansion that yields
  settled vertices in distance order and can be resumed with a larger
  radius later; this powers both the PNE baseline's progressive
  nearest-neighbor streams and BSSR's on-the-fly cache.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable, Collection

from repro.graph.road_network import RoadNetwork


def dijkstra(
    network: RoadNetwork,
    source: int,
    *,
    reverse: bool = False,
    with_predecessors: bool = False,
) -> dict[int, float] | tuple[dict[int, float], dict[int, int]]:
    """Single-source shortest-path distances.

    Args:
        network: the graph.
        source: start vertex.
        reverse: traverse incoming edges instead (distances *to*
            ``source``; used by the destination extension).
        with_predecessors: also return the shortest-path tree.
    """
    neighbors = network.in_neighbors if reverse else network.neighbors
    dist: dict[int, float] = {source: 0.0}
    pred: dict[int, int] = {}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        for v, w in neighbors(u):
            nd = d + w
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                pred[v] = u
                heapq.heappush(heap, (nd, v))
    if with_predecessors:
        return dist, pred
    return dist


def bounded_dijkstra(
    network: RoadNetwork,
    source: int,
    radius: float,
    *,
    reverse: bool = False,
) -> dict[int, float]:
    """Distances from ``source`` strictly below ``radius``.

    Every returned distance is final (settled); vertices at distance
    ``>= radius`` are omitted.
    """
    if radius == math.inf:
        result = dijkstra(network, source, reverse=reverse)
        assert isinstance(result, dict)
        return result
    neighbors = network.in_neighbors if reverse else network.neighbors
    dist: dict[int, float] = {source: 0.0}
    out: dict[int, float] = {}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        if d >= radius:
            break
        settled.add(u)
        out[u] = d
        for v, w in neighbors(u):
            nd = d + w
            if nd < radius and nd < dist.get(v, math.inf):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return out


def shortest_path(
    network: RoadNetwork, source: int, target: int
) -> tuple[float, list[int]]:
    """Distance and vertex path from ``source`` to ``target``.

    Returns ``(inf, [])`` when unreachable.
    """
    dist, pred = dijkstra(network, source, with_predecessors=True)
    if target not in dist:
        return math.inf, []
    path = [target]
    while path[-1] != source:
        path.append(pred[path[-1]])
    path.reverse()
    return dist[target], path


def multi_source_min_distance(
    network: RoadNetwork,
    sources: Collection[int],
    targets: Collection[int],
    *,
    radius: float = math.inf,
) -> float:
    """Minimum network distance between two vertex sets (Lemma 5.9).

    All sources start at distance 0 in one priority queue; the first
    settled target yields the exact minimum.  When the search is
    truncated by ``radius`` before reaching a target, ``radius`` itself
    is returned — a valid *lower bound*, which is all the caller
    (Algorithm 4) needs.  Returns ``inf`` when the sets cannot be
    connected at all (and ``0.0`` when the sets overlap).
    """
    if not sources or not targets:
        return math.inf
    target_set = targets if isinstance(targets, (set, frozenset)) else set(targets)
    dist: dict[int, float] = {}
    heap: list[tuple[float, int]] = []
    for s in sources:
        dist[s] = 0.0
        heapq.heappush(heap, (0.0, s))
    settled: set[int] = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        if d >= radius:
            return radius
        settled.add(u)
        if u in target_set:
            return d
        for v, w in network.neighbors(u):
            nd = d + w
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return math.inf


def eccentricity(network: RoadNetwork, source: int) -> float:
    """Largest finite shortest-path distance from ``source``."""
    dist = dijkstra(network, source)
    assert isinstance(dist, dict)
    return max(dist.values(), default=0.0)


class ResumableDijkstra:
    """Incremental Dijkstra that can be paused and resumed.

    Settles vertices in nondecreasing distance order.  :meth:`settle_next`
    settles one vertex and reports it; :meth:`expand_until` keeps
    settling while the next settle distance is below a (possibly
    re-evaluated) budget.  Once the heap drains the search is
    *exhausted* and resuming is a no-op.

    The on-the-fly cache of Section 5.3.4 stores one instance per
    (source PoI, query position); the PNE baseline uses one per
    (vertex, category-candidate set) as its progressive nearest-neighbor
    stream.
    """

    __slots__ = ("_network", "source", "_dist", "_settled", "_heap", "radius")

    def __init__(self, network: RoadNetwork, source: int) -> None:
        self._network = network
        self.source = source
        self._dist: dict[int, float] = {source: 0.0}
        self._settled: set[int] = set()
        self._heap: list[tuple[float, int]] = [(0.0, source)]
        #: largest settled distance so far
        self.radius = 0.0

    @property
    def exhausted(self) -> bool:
        self._skim()
        return not self._heap

    def _skim(self) -> None:
        """Drop stale heap entries so the head is live."""
        heap = self._heap
        while heap and heap[0][1] in self._settled:
            heapq.heappop(heap)

    def next_distance(self) -> float:
        """Distance at which the next vertex would settle (inf if done)."""
        self._skim()
        return self._heap[0][0] if self._heap else math.inf

    def settle_next(self) -> tuple[float, int] | None:
        """Settle and return the next ``(distance, vertex)``; None if done."""
        self._skim()
        if not self._heap:
            return None
        d, u = heapq.heappop(self._heap)
        self._settled.add(u)
        self.radius = d
        for v, w in self._network.neighbors(u):
            nd = d + w
            if nd < self._dist.get(v, math.inf):
                self._dist[v] = nd
                heapq.heappush(self._heap, (nd, v))
        return d, u

    def expand_until(
        self, budget: Callable[[], float] | float
    ) -> list[tuple[float, int]]:
        """Settle vertices while the next settle distance < budget.

        ``budget`` may be a callable re-evaluated after every settle —
        BSSR's thresholds tighten while a search runs.
        """
        budget_fn = budget if callable(budget) else (lambda: budget)  # type: ignore[truthy-function]
        out: list[tuple[float, int]] = []
        while True:
            nxt = self.next_distance()
            if nxt == math.inf or nxt >= budget_fn():
                break
            settled = self.settle_next()
            assert settled is not None
            out.append(settled)
        return out

    def distance(self, vid: int) -> float:
        """Settled distance to ``vid`` (inf when not settled yet)."""
        if vid in self._settled:
            return self._dist[vid]
        return math.inf
