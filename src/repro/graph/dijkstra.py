"""Dijkstra variants used across the library.

Four flavors, all lazy-deletion binary-heap implementations over
:class:`~repro.graph.road_network.RoadNetwork`:

* :func:`dijkstra` — full single-source distances (optionally with
  predecessors for path reconstruction, optionally terminating early
  once a ``target`` vertex settles);
* :func:`bounded_dijkstra` — single-source distances restricted to a
  radius (used to restrict candidate sets to the ``l̄(ϕ)`` ball in
  Algorithm 4 line 3);
* :func:`multi_source_min_distance` — the paper's multi-source
  multi-destination Dijkstra (Section 5.3.3, Lemma 5.9): minimum
  distance from *any* source to *any* destination, stopping at the
  first settled destination;
* :class:`ResumableDijkstra` — an incremental expansion that yields
  settled vertices in distance order and can be resumed with a larger
  radius later; this powers both the PNE baseline's progressive
  nearest-neighbor streams and BSSR's on-the-fly cache.

Each flavor has two interchangeable backends behind the same
signature: the original dict-based implementation, and a CSR kernel
over flat adjacency arrays (:mod:`repro.graph.csr`) whose inner loop
indexes python lists instead of hashing dict keys.  Both produce
bit-identical distances, predecessors and settle orders — edge
relaxation order and heap tie-breaks are preserved — which the
property layer pins (``tests/test_csr.py``).  The CSR backend is the
default; :func:`repro.graph.csr.set_csr_enabled` switches back for
baseline measurements (and the dict path is the automatic fallback for
code paths numpy-free environments cannot vectorize anyway).
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable, Collection
from dataclasses import dataclass

from repro.graph.csr import batched_min_distances, flat_adjacency
from repro.graph.road_network import RoadNetwork


@dataclass
class ExpansionCounters:
    """Optional instrumentation for a single Dijkstra run.

    Pass an instance via the ``counters`` keyword to observe how much
    of the graph a search actually touched — the early-termination
    regression tests assert ``settled`` drops when a ``target`` is
    supplied, and benchmarks report it as search volume.
    """

    settled: int = 0
    relaxed: int = 0


def dijkstra(
    network: RoadNetwork,
    source: int,
    *,
    reverse: bool = False,
    with_predecessors: bool = False,
    target: int | None = None,
    counters: ExpansionCounters | None = None,
) -> dict[int, float] | tuple[dict[int, float], dict[int, int]]:
    """Single-source shortest-path distances.

    Args:
        network: the graph.
        source: start vertex.
        reverse: traverse incoming edges instead (distances *to*
            ``source``; used by the destination extension).
        with_predecessors: also return the shortest-path tree.
        target: stop as soon as this vertex settles (its distance is
            then final).  With a target the returned dict still
            contains every *touched* vertex, but only settled entries
            are final — callers that need all distances must omit it.
        counters: optional :class:`ExpansionCounters` to fill.
    """
    flat = flat_adjacency(network, reverse=reverse)
    if flat is not None:
        n, indptr, indices, weights = flat
        inf = math.inf
        dist = [inf] * n
        dist[source] = 0.0
        touched = [source]
        settled = bytearray(n)
        pred = [-1] * n if with_predecessors else None
        heap: list[tuple[float, int]] = [(0.0, source)]
        push, pop = heapq.heappush, heapq.heappop
        nsettled = 0
        nrelaxed = 0
        while heap:
            d, u = pop(heap)
            if settled[u]:
                continue
            settled[u] = 1
            nsettled += 1
            if u == target:
                break
            for i in range(indptr[u], indptr[u + 1]):
                nrelaxed += 1
                v = indices[i]
                nd = d + weights[i]
                if nd < dist[v]:
                    if dist[v] == inf:
                        touched.append(v)
                    dist[v] = nd
                    if pred is not None:
                        pred[v] = u
                    push(heap, (nd, v))
        if counters is not None:
            counters.settled += nsettled
            counters.relaxed += nrelaxed
        out = {v: dist[v] for v in touched}
        if with_predecessors:
            assert pred is not None
            return out, {v: pred[v] for v in touched if pred[v] >= 0}
        return out

    # dict-based baseline backend
    neighbors = network.in_neighbors if reverse else network.neighbors
    dist_map: dict[int, float] = {source: 0.0}
    pred_map: dict[int, int] | None = {} if with_predecessors else None
    settled_set: set[int] = set()
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled_set:
            continue
        settled_set.add(u)
        if counters is not None:
            counters.settled += 1
        if u == target:
            break
        for v, w in neighbors(u):
            if counters is not None:
                counters.relaxed += 1
            nd = d + w
            if nd < dist_map.get(v, math.inf):
                dist_map[v] = nd
                if pred_map is not None:
                    pred_map[v] = u
                heapq.heappush(heap, (nd, v))
    if with_predecessors:
        assert pred_map is not None
        return dist_map, pred_map
    return dist_map


def bounded_dijkstra(
    network: RoadNetwork,
    source: int,
    radius: float,
    *,
    reverse: bool = False,
    counters: ExpansionCounters | None = None,
) -> dict[int, float]:
    """Distances from ``source`` strictly below ``radius``.

    Every returned distance is final (settled); vertices at distance
    ``>= radius`` are omitted.
    """
    if radius == math.inf:
        result = dijkstra(
            network, source, reverse=reverse, counters=counters
        )
        assert isinstance(result, dict)
        return result
    flat = flat_adjacency(network, reverse=reverse)
    if flat is not None:
        n, indptr, indices, weights = flat
        inf = math.inf
        dist = [inf] * n
        dist[source] = 0.0
        settled = bytearray(n)
        out: dict[int, float] = {}
        heap: list[tuple[float, int]] = [(0.0, source)]
        push, pop = heapq.heappush, heapq.heappop
        nrelaxed = 0
        while heap:
            d, u = pop(heap)
            if settled[u]:
                continue
            if d >= radius:
                break
            settled[u] = 1
            out[u] = d
            for i in range(indptr[u], indptr[u + 1]):
                nrelaxed += 1
                v = indices[i]
                nd = d + weights[i]
                if nd < radius and nd < dist[v]:
                    dist[v] = nd
                    push(heap, (nd, v))
        if counters is not None:
            counters.settled += len(out)
            counters.relaxed += nrelaxed
        return out

    neighbors = network.in_neighbors if reverse else network.neighbors
    dist_map: dict[int, float] = {source: 0.0}
    out = {}
    settled_set: set[int] = set()
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled_set:
            continue
        if d >= radius:
            break
        settled_set.add(u)
        if counters is not None:
            counters.settled += 1
        out[u] = d
        for v, w in neighbors(u):
            if counters is not None:
                counters.relaxed += 1
            nd = d + w
            if nd < radius and nd < dist_map.get(v, math.inf):
                dist_map[v] = nd
                heapq.heappush(heap, (nd, v))
    return out


def shortest_path(
    network: RoadNetwork,
    source: int,
    target: int,
    *,
    counters: ExpansionCounters | None = None,
) -> tuple[float, list[int]]:
    """Distance and vertex path from ``source`` to ``target``.

    Terminates as soon as ``target`` settles (its label is then final)
    instead of exhausting the whole graph — on a preset city this
    settles a strict subset of the vertices a full run would (pinned by
    a regression test).  Returns ``(inf, [])`` when unreachable.
    """
    dist, pred = dijkstra(
        network,
        source,
        with_predecessors=True,
        target=target,
        counters=counters,
    )
    if target not in dist:
        return math.inf, []
    path = [target]
    while path[-1] != source:
        path.append(pred[path[-1]])
    path.reverse()
    return dist[target], path


def multi_source_min_distance(
    network: RoadNetwork,
    sources: Collection[int],
    targets: Collection[int],
    *,
    radius: float = math.inf,
    reverse: bool = False,
    counters: ExpansionCounters | None = None,
) -> float:
    """Minimum network distance between two vertex sets (Lemma 5.9).

    All sources start at distance 0 in one priority queue; the first
    settled target yields the exact minimum.  When the search is
    truncated by ``radius`` before reaching a target, ``radius`` itself
    is returned — a valid *lower bound*, which is all the caller
    (Algorithm 4) needs.  Returns ``inf`` when the sets cannot be
    connected at all (and ``0.0`` when the sets overlap).

    ``reverse=True`` traverses incoming edges — the minimum distance
    from any *target-set* vertex to any *source-set* vertex on a
    directed graph, matching :func:`dijkstra`'s convention.
    """
    if not sources or not targets:
        return math.inf
    target_set = targets if isinstance(targets, (set, frozenset)) else set(targets)
    if radius == math.inf and counters is None:
        # Untruncated searches relax until a target settles wherever it
        # is, so the vectorized full-fixpoint sweep wins; the scalar
        # kernel keeps the radius-truncated hot path (Algorithm 4),
        # where stopping at the ball's edge beats any batch width.  The
        # sweep's labels are bit-identical to Dijkstra's (see
        # :func:`repro.graph.csr.batched_min_distances`), so the
        # minimum over targets is the same float either way.
        row = batched_min_distances(network, sources, reverse=reverse)
        if row is not None:
            return min((row[t] for t in target_set), default=math.inf)
    flat = flat_adjacency(network, reverse=reverse)
    if flat is not None:
        n, indptr, indices, weights = flat
        inf = math.inf
        dist = [inf] * n
        heap: list[tuple[float, int]] = []
        for s in sources:
            dist[s] = 0.0
            heapq.heappush(heap, (0.0, s))
        settled = bytearray(n)
        push, pop = heapq.heappush, heapq.heappop
        settled_n = relaxed_n = 0
        result = math.inf
        while heap:
            d, u = pop(heap)
            if settled[u]:
                continue
            if d >= radius:
                result = radius
                break
            settled[u] = 1
            settled_n += 1
            if u in target_set:
                result = d
                break
            lo = indptr[u]
            hi = indptr[u + 1]
            relaxed_n += hi - lo
            for i in range(lo, hi):
                v = indices[i]
                nd = d + weights[i]
                if nd < dist[v]:
                    dist[v] = nd
                    push(heap, (nd, v))
        if counters is not None:
            counters.settled += settled_n
            counters.relaxed += relaxed_n
        return result

    neighbors = network.in_neighbors if reverse else network.neighbors
    dist_map: dict[int, float] = {}
    heap = []
    for s in sources:
        dist_map[s] = 0.0
        heapq.heappush(heap, (0.0, s))
    settled_set: set[int] = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled_set:
            continue
        if d >= radius:
            return radius
        settled_set.add(u)
        if counters is not None:
            counters.settled += 1
        if u in target_set:
            return d
        for v, w in neighbors(u):
            if counters is not None:
                counters.relaxed += 1
            nd = d + w
            if nd < dist_map.get(v, math.inf):
                dist_map[v] = nd
                heapq.heappush(heap, (nd, v))
    return math.inf


def eccentricity(
    network: RoadNetwork, source: int, *, reverse: bool = False
) -> float:
    """Largest finite shortest-path distance from ``source``.

    ``reverse=True`` measures the largest distance *to* ``source`` on
    a directed graph (both directions coincide when undirected).
    """
    row = batched_min_distances(network, (source,), reverse=reverse)
    if row is not None:
        return max((d for d in row if d < math.inf), default=0.0)
    dist = dijkstra(network, source, reverse=reverse)
    assert isinstance(dist, dict)
    return max(dist.values(), default=0.0)


class ResumableDijkstra:
    """Incremental Dijkstra that can be paused and resumed.

    Settles vertices in nondecreasing distance order.  :meth:`settle_next`
    settles one vertex and reports it; :meth:`expand_until` keeps
    settling while the next settle distance is below a (possibly
    re-evaluated) budget.  Once the heap drains the search is
    *exhausted* and resuming is a no-op.

    The on-the-fly cache of Section 5.3.4 stores one instance per
    (source PoI, query position); the PNE baseline uses one per
    (vertex, category-candidate set) as its progressive nearest-neighbor
    stream.  Like the function flavors, the instance runs on the CSR
    backend when enabled at construction time and on the dict backend
    otherwise, with bit-identical settle sequences.
    """

    __slots__ = (
        "_network",
        "source",
        "_dist",
        "_settled",
        "_heap",
        "radius",
        "_flat",
    )

    def __init__(self, network: RoadNetwork, source: int) -> None:
        self._network = network
        self.source = source
        self._flat = flat_adjacency(network)
        if self._flat is not None:
            n = self._flat[0]
            self._dist: list[float] | dict[int, float] = [math.inf] * n
            self._dist[source] = 0.0
            self._settled: bytearray | set[int] = bytearray(n)
        else:
            self._dist = {source: 0.0}
            self._settled = set()
        self._heap: list[tuple[float, int]] = [(0.0, source)]
        #: largest settled distance so far
        self.radius = 0.0

    @property
    def exhausted(self) -> bool:
        self._skim()
        return not self._heap

    def _skim(self) -> None:
        """Drop stale heap entries so the head is live."""
        heap = self._heap
        settled = self._settled
        if self._flat is not None:
            while heap and settled[heap[0][1]]:
                heapq.heappop(heap)
        else:
            while heap and heap[0][1] in settled:
                heapq.heappop(heap)

    def next_distance(self) -> float:
        """Distance at which the next vertex would settle (inf if done)."""
        self._skim()
        return self._heap[0][0] if self._heap else math.inf

    def settle_next(self) -> tuple[float, int] | None:
        """Settle and return the next ``(distance, vertex)``; None if done."""
        self._skim()
        if not self._heap:
            return None
        d, u = heapq.heappop(self._heap)
        self.radius = d
        if self._flat is not None:
            _, indptr, indices, weights = self._flat
            dist = self._dist
            settled = self._settled
            settled[u] = 1
            heap = self._heap
            push = heapq.heappush
            for i in range(indptr[u], indptr[u + 1]):
                v = indices[i]
                nd = d + weights[i]
                if nd < dist[v]:
                    dist[v] = nd
                    push(heap, (nd, v))
            return d, u
        self._settled.add(u)
        for v, w in self._network.neighbors(u):
            nd = d + w
            if nd < self._dist.get(v, math.inf):
                self._dist[v] = nd
                heapq.heappush(self._heap, (nd, v))
        return d, u

    def expand_until(
        self, budget: Callable[[], float] | float
    ) -> list[tuple[float, int]]:
        """Settle vertices while the next settle distance < budget.

        ``budget`` may be a callable re-evaluated after every settle —
        BSSR's thresholds tighten while a search runs.
        """
        budget_fn = budget if callable(budget) else (lambda: budget)  # type: ignore[truthy-function]
        out: list[tuple[float, int]] = []
        while True:
            nxt = self.next_distance()
            if nxt == math.inf or nxt >= budget_fn():
                break
            settled = self.settle_next()
            assert settled is not None
            out.append(settled)
        return out

    def distance(self, vid: int) -> float:
        """Settled distance to ``vid`` (inf when not settled yet)."""
        if self._flat is not None:
            return self._dist[vid] if self._settled[vid] else math.inf
        if vid in self._settled:
            return self._dist[vid]
        return math.inf
