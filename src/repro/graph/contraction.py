"""Contraction hierarchies: the preprocessing-based exact leg oracle.

Geisberger et al.'s contraction hierarchies (CH), in pure python over
the same :class:`~repro.graph.road_network.RoadNetwork` topology as the
Dijkstra kernels.  Preprocessing contracts vertices one by one in
*edge-difference* order (lazy-update priority queue): removing a vertex
``v`` inserts a shortcut ``u -> x`` of weight ``w(u,v) + w(v,x)`` for
every neighbor pair whose shortest ``u -> x`` path runs through ``v`` —
unless a *witness search* finds an equally short path avoiding ``v``.
Witness searches are settle-capped: a missed witness only adds a
redundant shortcut, never a wrong distance, so the cap trades
preprocessing time against shortcut count without touching correctness.

Queries then run bidirectional Dijkstra over the *upward* graphs only
(arcs from lower to higher contraction rank): every shortest path in
the original graph is covered by an up-then-down path over the
hierarchy, so scanning the tiny upward search spaces from both ends and
summing at the best meeting hub yields the exact distance.  Shortcuts
remember their middle vertex, so :meth:`ContractionHierarchy.path`
unpacks back to original-edge paths.

Beyond point-to-point, the pieces BSSR consumes directly:

* :meth:`~ContractionHierarchy.bucket` — per-target backward upward
  sweeps folded into a hub table (the many-to-many "bucket" trick).
  Buckets depend only on the target set, so
  :class:`~repro.core.distcache.DistanceCache` caches them across
  queries (warm queries skip every downward sweep);
* :meth:`~ContractionHierarchy.distances_from` — one forward upward
  sweep from a source scanned against a bucket: exact one-to-many
  distances (NNinit's legs);
* :meth:`~ContractionHierarchy.min_from_set` — a multi-source forward
  upward sweep against a bucket's per-hub minimum: the exact
  set-to-set minimum distance (the Section 5.3.3 leg bounds), in one
  sweep regardless of set sizes;
* :class:`CHDistanceOracle` — a lazy dict-like ``.get`` view of
  distances *to* one vertex, replacing the eager full reverse Dijkstra
  of destination queries.

Like the CSR backend, the hierarchy is memoized per network
(:func:`contraction_for`) and globally toggleable
(:func:`set_ch_enabled`, env ``REPRO_DISABLE_CH=1``) so benchmarks and
CI can force either backend deterministically.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from heapq import heappop, heappush
from time import perf_counter
from typing import TYPE_CHECKING, Collection, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.road_network import RoadNetwork

_INF = math.inf

#: witness searches stop after this many settles; a missed witness only
#: costs one redundant shortcut (see module docstring)
WITNESS_SETTLE_CAP = 64

#: global backend switch, pre-seeded from the environment so CI can
#: prove the CH-free path without touching code
_ENABLED = not os.environ.get("REPRO_DISABLE_CH")


def set_ch_enabled(enabled: bool) -> bool:
    """Toggle CH usage globally; returns the previous setting.

    Mirrors :func:`repro.graph.csr.set_csr_enabled`: an existing
    hierarchy stays memoized, the toggle only gates whether searches
    consult it (``BSSROptions.use_contraction`` must also be set).
    ``REPRO_DISABLE_CH=1`` in the environment seeds this to ``False``.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def ch_enabled() -> bool:
    return _ENABLED


@dataclass
class CHStats:
    """Preprocessing counters, surfaced through service/CLI stats."""

    vertices: int
    edges: int
    shortcuts_added: int
    preprocess_s: float

    def as_dict(self) -> dict:
        return {
            "vertices": self.vertices,
            "edges": self.edges,
            "shortcuts_added": self.shortcuts_added,
            "preprocess_ms": self.preprocess_s * 1e3,
        }


@dataclass
class CHBucket:
    """A target set folded into the hierarchy's hub space.

    ``pairs[h]`` lists ``(target, d(h, target))`` for every target whose
    backward upward sweep reached hub ``h``; ``hubmin[h]`` is the
    minimum of those distances (the set-to-set fast path).  A bucket
    depends only on the target set, never on a query.
    """

    pairs: dict[int, list[tuple[int, float]]]
    hubmin: dict[int, float]


class ContractionHierarchy:
    """Contracted view of one network; build via :func:`contraction_for`."""

    __slots__ = ("num_vertices", "directed", "_up_out", "_up_in",
                 "_middle", "stats", "_token", "_memo")

    def __init__(self, network: "RoadNetwork") -> None:
        started = perf_counter()
        n = network.num_vertices
        self.num_vertices = n
        self.directed = network.directed
        self._token = (n, network.num_edges)

        # Working adjacency as weight dicts (parallel edges collapse to
        # their minimum — distances are unaffected).  For undirected
        # networks the in- and out-dicts alias: the symmetric arc pair
        # is one dict entry per direction either way.
        out_adj: list[dict[int, float]] = [{} for _ in range(n)]
        if network.directed:
            in_adj: list[dict[int, float]] = [{} for _ in range(n)]
        else:
            in_adj = out_adj
        for u in range(n):
            row = out_adj[u]
            for v, w in network.neighbors(u):
                if w < row.get(v, _INF):
                    row[v] = w
        if network.directed:
            for u in range(n):
                row = in_adj[u]
                for v, w in network.in_neighbors(u):
                    if w < row.get(v, _INF):
                        row[v] = w

        #: per-hierarchy memo for buckets and leg minima keyed by
        #: ``share_key`` — both depend only on the network and the
        #: (query-independent) category sets, so they are preprocessing
        #: in disguise, exactly like landmark heuristic rows
        self._memo: dict = {}
        self._middle: dict[tuple[int, int], int] = {}
        #: upward adjacency, snapshotted at each vertex's contraction:
        #: every arc endpoint outlives (outranks) the vertex
        self._up_out: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        self._up_in: list[list[tuple[int, float]]] = [[] for _ in range(n)]

        deleted = [0] * n  # contracted-neighbor count (uniformity term)
        shortcuts_added = 0

        def witness(source: int, excluded: int, limit: float) -> dict[int, float]:
            # Settle-capped Dijkstra avoiding ``excluded``.  Every label
            # (settled or not) is the length of a real path, hence a
            # valid witness when <= the shortcut weight.
            dist = {source: 0.0}
            settled: set[int] = set()
            heap = [(0.0, source)]
            cap = WITNESS_SETTLE_CAP
            while heap and cap:
                d, a = heappop(heap)
                if a in settled:
                    continue
                if d > limit:
                    break
                settled.add(a)
                cap -= 1
                for b, w in out_adj[a].items():
                    if b == excluded:
                        continue
                    nd = d + w
                    if nd <= limit and nd < dist.get(b, _INF):
                        dist[b] = nd
                        heappush(heap, (nd, b))
            return dist

        def needed_shortcuts(v: int) -> list[tuple[int, int, float]]:
            outs = out_adj[v]
            ins = in_adj[v]
            if not outs or not ins:
                return []
            max_out = max(outs.values())
            found: list[tuple[int, int, float]] = []
            for u, w1 in ins.items():
                reach = witness(u, v, w1 + max_out)
                for x, w2 in outs.items():
                    if x == u:
                        continue
                    through = w1 + w2
                    if reach.get(x, _INF) <= through:
                        continue  # witness path avoids v
                    if out_adj[u].get(x, _INF) <= through:
                        continue  # existing arc already as short
                    found.append((u, x, through))
            return found

        # Edge-difference ordering with lazy updates: recompute a popped
        # vertex's priority against the current graph; re-queue it when
        # a cheaper vertex has appeared since.  Ties contract the
        # smallest vertex id, keeping the order deterministic.
        pq: list[tuple[int, int]] = []
        for v in range(n):
            cand = needed_shortcuts(v)
            ed = len(cand) - (len(in_adj[v]) + len(out_adj[v]))
            heappush(pq, (ed, v))

        rank = [0] * n
        next_rank = 0
        while pq:
            _, v = heappop(pq)
            cand = needed_shortcuts(v)
            priority = (
                len(cand)
                - (len(in_adj[v]) + len(out_adj[v]))
                + deleted[v]
            )
            if pq and priority > pq[0][0]:
                heappush(pq, (priority, v))
                continue
            for u, x, w in cand:
                out_adj[u][x] = w
                in_adj[x][u] = w
                self._middle[(u, x)] = v
                shortcuts_added += 1
            # Snapshot v's arcs (all endpoints outrank v) sorted for a
            # deterministic sweep order, then remove v from the graph.
            self._up_out[v] = sorted(out_adj[v].items())
            self._up_in[v] = sorted(in_adj[v].items())
            for u in list(in_adj[v]):
                out_adj[u].pop(v, None)
                deleted[u] += 1
            if network.directed:
                for x in out_adj[v]:
                    in_adj[x].pop(v, None)
                    deleted[x] += 1
            out_adj[v] = {}
            if network.directed:
                in_adj[v] = {}
            else:
                in_adj[v] = out_adj[v]
            rank[v] = next_rank
            next_rank += 1

        self.stats = CHStats(
            vertices=n,
            edges=network.num_edges,
            shortcuts_added=shortcuts_added,
            preprocess_s=perf_counter() - started,
        )

    # ------------------------------------------------------------------
    # upward sweeps

    def _sweep(
        self,
        sources: Iterable[tuple[int, float]],
        adj: list[list[tuple[int, float]]],
        counters=None,
    ) -> dict[int, float]:
        """Full Dijkstra over an upward graph; returns settled labels.

        Upward search spaces are tiny (arcs only climb ranks), so the
        sweep always runs to exhaustion — that is what makes its result
        reusable as a bucket or a one-to-many row.
        """
        dist: dict[int, float] = {}
        heap: list[tuple[float, int]] = []
        for s, d0 in sources:
            if d0 < dist.get(s, _INF):
                dist[s] = d0
                heappush(heap, (d0, s))
        out: dict[int, float] = {}
        relaxed = 0
        while heap:
            d, u = heappop(heap)
            if u in out:
                continue
            out[u] = d
            arcs = adj[u]
            relaxed += len(arcs)
            for v, w in arcs:
                nd = d + w
                if nd < dist.get(v, _INF):
                    dist[v] = nd
                    heappush(heap, (nd, v))
        if counters is not None:
            counters.settled += len(out)
            counters.relaxed += relaxed
        return out

    # ------------------------------------------------------------------
    # queries

    def distance(self, source: int, target: int) -> float:
        """Exact shortest-path distance (inf when unreachable)."""
        fwd = self._sweep([(source, 0.0)], self._up_out)
        bwd = self._sweep([(target, 0.0)], self._up_in)
        best = _INF
        if len(bwd) < len(fwd):
            small, large = bwd, fwd
        else:
            small, large = fwd, bwd
        for h, d in small.items():
            other = large.get(h)
            if other is not None:
                total = d + other
                if total < best:
                    best = total
        return best

    def path(self, source: int, target: int) -> tuple[float, list[int]]:
        """Exact distance plus an unpacked original-edge vertex path."""
        fwd, fpred = self._sweep_pred([(source, 0.0)], self._up_out)
        bwd, bpred = self._sweep_pred([(target, 0.0)], self._up_in)
        best = _INF
        hub = -1
        for h, d in fwd.items():
            other = bwd.get(h)
            if other is not None and d + other < best:
                best = d + other
                hub = h
        if hub < 0:
            return _INF, []
        up: list[int] = [hub]
        while up[-1] != source and fpred.get(up[-1], -1) >= 0:
            up.append(fpred[up[-1]])
        up.reverse()
        down: list[int] = [hub]
        while down[-1] != target and bpred.get(down[-1], -1) >= 0:
            down.append(bpred[down[-1]])
        # Backward-sweep predecessors already point *along* the route
        # (pred[v] = u means arc v -> u lies on v's path to the target),
        # so both chains read in forward arc orientation.
        arcs = list(zip(up, up[1:]))
        arcs += list(zip(down, down[1:]))
        path = [source]
        for a, b in arcs:
            path.extend(self._unpack(a, b))
        return best, path

    def _sweep_pred(self, sources, adj):
        dist: dict[int, float] = {}
        pred: dict[int, int] = {}
        heap: list[tuple[float, int]] = []
        for s, d0 in sources:
            dist[s] = d0
            pred[s] = -1
            heappush(heap, (d0, s))
        out: dict[int, float] = {}
        while heap:
            d, u = heappop(heap)
            if u in out:
                continue
            out[u] = d
            for v, w in adj[u]:
                nd = d + w
                if nd < dist.get(v, _INF):
                    dist[v] = nd
                    pred[v] = u
                    heappush(heap, (nd, v))
        return out, pred

    def _unpack(self, a: int, b: int) -> list[int]:
        """Vertices after ``a`` along arc ``a -> b`` in original edges."""
        mid = self._middle.get((a, b))
        if mid is None:
            return [b]
        return self._unpack(a, mid) + self._unpack(mid, b)

    # ------------------------------------------------------------------
    # many-to-many machinery

    def bucket(self, targets: Collection[int], counters=None) -> CHBucket:
        """Fold a target set into its hub table (one backward upward
        sweep per target; cacheable — depends only on the set)."""
        pairs: dict[int, list[tuple[int, float]]] = {}
        hubmin: dict[int, float] = {}
        for t in targets:
            row = self._sweep([(t, 0.0)], self._up_in, counters)
            for h, d in row.items():
                entry = pairs.get(h)
                if entry is None:
                    pairs[h] = [(t, d)]
                    hubmin[h] = d
                else:
                    entry.append((t, d))
                    if d < hubmin[h]:
                        hubmin[h] = d
        return CHBucket(pairs=pairs, hubmin=hubmin)

    def forward_row(self, u: int) -> dict[int, float]:
        """``u``'s forward hub labels: ``{hub: d(u, hub)}``, memoized.

        One upward sweep on first use, a dict lookup after — the lazy
        hub-labeling view of the hierarchy.  Every one-to-many consumer
        (:meth:`distances_from`, :class:`CHDistanceOracle`,
        :meth:`vertex_min`) reads through this, so repeated queries
        touching the same vertices degrade to pure label scans.
        """
        key = ("fwd", u)
        row = self._memo.get(key)
        if row is None:
            row = self._sweep([(u, 0.0)], self._up_out)
            self._memo[key] = row
        return row

    def distances_from(
        self, source: int, bucket: CHBucket, counters=None
    ) -> dict[int, float]:
        """Exact distances from ``source`` to every bucket target
        (missing key == unreachable) via one forward upward sweep."""
        key = ("fwd", source)
        fwd = self._memo.get(key)
        if fwd is None:
            fwd = self._sweep([(source, 0.0)], self._up_out, counters)
            self._memo[key] = fwd
        pairs = bucket.pairs
        best: dict[int, float] = {}
        for h, g in fwd.items():
            for t, d in pairs.get(h, ()):
                total = g + d
                if total < best.get(t, _INF):
                    best[t] = total
        return best

    def min_from_set(
        self, sources: Collection[int], bucket: CHBucket, counters=None
    ) -> float:
        """Exact ``min_{s in sources, t in targets} d(s, t)`` in one
        multi-source forward upward sweep against the hub minima."""
        if not sources:
            return _INF
        fwd = self._sweep(
            [(s, 0.0) for s in sources], self._up_out, counters
        )
        hubmin = bucket.hubmin
        best = _INF
        for h, g in fwd.items():
            d = hubmin.get(h)
            if d is not None and g + d < best:
                best = g + d
        return best

    @staticmethod
    def _row_min(row: dict[int, float], hubmin: dict[int, float]) -> float:
        """``min_h row[h] + hubmin[h]`` over the smaller of the dicts."""
        best = _INF
        if len(hubmin) < len(row):
            row, hubmin = hubmin, row
        get = hubmin.get
        for h, g in row.items():
            d = get(h)
            if d is not None and g + d < best:
                best = g + d
        return best

    def vertex_min(
        self,
        kind: str,
        share_key: tuple,
        u: int,
        targets: Collection[int],
    ) -> float:
        """Exact ``min_t d(u, t)`` over a share-keyed target set, memoized.

        The per-route next-leg floor of BSSR's pruning test: from the
        concrete last vertex of a partial route to the next position's
        full candidate set.  Both the target bucket and the resulting
        scalar are per-network constants, so after the first probe of a
        ``(u, share_key)`` pair the floor costs one dict lookup.
        """
        memo = self._memo
        key = ("vmin", kind, share_key, u)
        value = memo.get(key)
        if value is None:
            bucket_key = ("bucket", kind, share_key)
            bucket = memo.get(bucket_key)
            if bucket is None:
                bucket = self.bucket(targets)
                memo[bucket_key] = bucket
            value = self._row_min(self.forward_row(u), bucket.hubmin)
            memo[key] = value
        return value

    def memo_row(
        self,
        kind: str,
        share_key: tuple,
        source: int,
        targets: Collection[int],
        counters=None,
    ) -> dict[int, float]:
        """:meth:`distances_from` against a share-keyed target set,
        memoized per ``(source, share_key)``.

        The exact one-to-many row from a vertex to a category's full
        candidate set is a per-network constant — NNinit legs and
        final-position candidate streams re-request the same rows every
        query, so after the first build they are dict lookups.
        ``counters`` only ticks when the row (or its bucket) is actually
        swept — memo hits report zero work, which is the point.
        """
        memo = self._memo
        key = ("drow", kind, share_key, source)
        row = memo.get(key)
        if row is None:
            bucket_key = ("bucket", kind, share_key)
            bucket = memo.get(bucket_key)
            if bucket is None:
                bucket = self.bucket(targets, counters)
                memo[bucket_key] = bucket
            row = self.distances_from(source, bucket, counters)
            memo[key] = row
        return row

    def memo_stream(
        self,
        share_key: tuple,
        source: int,
        sim_map: dict[int, float],
        counters=None,
    ) -> list[tuple[float, int, float]]:
        """The sorted ``(d, vid, sim)`` candidate stream from ``source``
        to a share-keyed candidate set, memoized.

        Equal ``share_key`` implies equal ``sim_map`` (see
        ``PositionSpec.share_key``), so the stream — row *and* sims and
        their sort order — is a per-network constant.  Final-position
        expansions re-read it every query; after the first build it is
        one dict lookup per search.
        """
        memo = self._memo
        key = ("stream", share_key, source)
        entries = memo.get(key)
        if entries is None:
            row = self.memo_row("cands", share_key, source, sim_map, counters)
            sim_of = sim_map.__getitem__
            entries = sorted(
                (d, vid, sim_of(vid)) for vid, d in row.items()
            )
            memo[key] = entries
        return entries

    def memo_min(
        self, key: tuple, sources: Collection[int], bucket: CHBucket
    ) -> float:
        """:meth:`min_from_set`, memoized on the hierarchy under ``key``.

        For set-to-set leg minima whose sources *and* targets are both
        named query-independently (full category candidate sets): the
        value is a per-network constant, so computing it per query is
        pure waste.  Callers must fold the share keys of both sets into
        ``key``.
        """
        value = self._memo.get(key)
        if value is None:
            value = self.min_from_set(sources, bucket)
            self._memo[key] = value
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "directed" if self.directed else "undirected"
        return (
            f"ContractionHierarchy({kind}, |V∪P|={self.num_vertices}, "
            f"shortcuts={self.stats.shortcuts_added})"
        )


class CHDistanceOracle:
    """Lazy dict-like view of exact distances *to* one target vertex.

    Drop-in for the eager ``dijkstra(network, destination,
    reverse=True)`` dict of destination queries — consumers only call
    ``.get(vid, default)``.  Each first lookup costs one forward upward
    sweep (memoized), so queries touching few vertices skip almost the
    entire reverse search.
    """

    __slots__ = ("_ch", "_bucket", "_memo")

    def __init__(
        self, ch: ContractionHierarchy, target: int, bucket: CHBucket | None = None
    ) -> None:
        self._ch = ch
        self._bucket = bucket if bucket is not None else ch.bucket((target,))
        self._memo: dict[int, float] = {}

    @property
    def bucket(self) -> CHBucket:
        return self._bucket

    def get(self, vid: int, default=None):
        d = self._memo.get(vid)
        if d is None:
            d = self._ch._row_min(
                self._ch.forward_row(vid), self._bucket.hubmin
            )
            self._memo[vid] = d
        return default if d == _INF else d


def shared_bucket(
    ch: ContractionHierarchy,
    network: "RoadNetwork",
    cache,
    kind: str,
    share_key: tuple | None,
    targets: Collection[int],
) -> CHBucket:
    """A target bucket, through the cross-query cache when possible.

    ``cache`` is a :class:`~repro.core.distcache.DistanceCache` (or
    ``None``); ``share_key`` names the target set query-independently —
    without one the bucket is built fresh (exactly like unshareable
    modified-Dijkstra searches).  With a cache the bucket lives there
    (budgeted, evictable, hit/miss counted); without one it is memoized
    on the hierarchy itself, because a shareable bucket is a per-network
    constant and rebuilding it per query would make "cold" CH queries
    pay the downward sweeps forever.  The hierarchy token in the cache
    key guards against a rebuilt-after-mutation hierarchy reading stale
    buckets (the hierarchy memo dies with the hierarchy, so it needs no
    token).
    """
    if share_key is None:
        return ch.bucket(targets)
    if cache is not None:
        key = ("chb", ch._token, kind, share_key)
        hit = cache.lookup_bucket(network, key)
        if hit is not None:
            return hit
        bucket = ch.bucket(targets)
        cache.admit_bucket(network, key, bucket)
        return bucket
    memo_key = ("bucket", kind, share_key)
    bucket = ch._memo.get(memo_key)
    if bucket is None:
        bucket = ch.bucket(targets)
        ch._memo[memo_key] = bucket
    return bucket


def contraction_for(network: "RoadNetwork") -> ContractionHierarchy:
    """The (memoized) contraction hierarchy of ``network``.

    Rebuilt when the network gained vertices or edges, mirroring
    :func:`repro.graph.csr.csr_graph`; independent of
    :func:`set_ch_enabled` so callers can inspect stats either way.
    """
    cached: ContractionHierarchy | None = getattr(network, "_ch_index", None)
    token = (network.num_vertices, network.num_edges)
    if cached is not None and cached._token == token:
        return cached
    index = ContractionHierarchy(network)
    network._ch_index = index  # type: ignore[attr-defined]
    return index
