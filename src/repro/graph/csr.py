"""CSR adjacency: the hardware-bound form of :class:`RoadNetwork`.

The dict/list adjacency of :class:`~repro.graph.road_network.RoadNetwork`
is convenient to build but hostile to the hot loops: every relaxation
hashes a vertex id, allocates a tuple, and chases pointers.
:class:`CSRGraph` flattens the same topology once into three parallel
arrays per direction —

* ``indptr``  — vertex ``u``'s out-edges live at ``indptr[u]:indptr[u+1]``;
* ``indices`` — head vertex of each edge;
* ``weights`` — edge weight of each edge —

using numpy arrays when numpy is installed (bulk/vectorized consumers,
e.g. the ALT landmark tables) and :mod:`array` arrays otherwise.  The
scalar Dijkstra kernels additionally read cached *python-list mirrors*
of the same arrays: CPython list indexing beats both dict hashing and
numpy scalar access in a tight interpreted loop, which is what makes
the CSR kernels measurably faster than the dict-based originals
(``BENCH_core_query.json`` tracks the delta).

Edge order within a vertex is exactly the insertion order of
:meth:`RoadNetwork.add_edge`, so CSR-backed searches relax edges in the
same sequence as ``network.neighbors(u)`` and produce **bit-identical**
results (same heap pushes, same tie-breaks) — pinned by the property
layer in ``tests/test_csr.py``.

The CSR view is built lazily and memoized on the network instance; a
structural mutation (new vertex or edge) invalidates the memo via a
``(num_vertices, num_edges)`` token.  :func:`set_csr_enabled` toggles
the whole backend globally — benchmarks use it to compare the dict and
CSR paths on identical workloads.
"""

from __future__ import annotations

import os
from array import array
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.road_network import RoadNetwork

try:  # numpy is optional: CSR falls back to array('q')/array('d')
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the fallback tests
    _np = None

HAVE_NUMPY = _np is not None

#: global backend switch (see :func:`set_csr_enabled`)
_ENABLED = True

#: vectorized-kernel switch — numpy presence, minus the CI kill switch
_NUMPY_ENABLED = HAVE_NUMPY and not os.environ.get("REPRO_DISABLE_NUMPY")


def set_numpy_enabled(enabled: bool) -> bool:
    """Toggle the vectorized numpy kernels; returns the previous setting.

    Forced off permanently when numpy is not importable; pre-seeded off
    by ``REPRO_DISABLE_NUMPY=1`` so CI can prove the scalar fallback on
    a numpy-equipped machine.  Only the batched sweep dispatch listens
    to this — CSR array *storage* keeps whatever numpy decision was
    made at import."""
    global _NUMPY_ENABLED
    previous = _NUMPY_ENABLED
    _NUMPY_ENABLED = bool(enabled) and HAVE_NUMPY
    return previous


def numpy_enabled() -> bool:
    return _NUMPY_ENABLED

#: python-list adjacency mirror: (num_vertices, indptr, indices, weights)
FlatAdjacency = tuple[int, list[int], list[int], list[float]]


def set_csr_enabled(enabled: bool) -> bool:
    """Toggle the CSR backend globally; returns the previous setting.

    With the backend disabled every Dijkstra flavor runs its original
    dict-based implementation — the benchmark baseline.  Searches that
    captured a backend at construction time keep it; the switch only
    affects searches created afterwards.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def csr_enabled() -> bool:
    return _ENABLED


class CSRGraph:
    """Immutable CSR snapshot of a :class:`RoadNetwork`'s topology.

    ``indptr``/``indices``/``weights`` describe outgoing edges;
    ``rindptr``/``rindices``/``rweights`` incoming ones (aliases of the
    forward arrays for undirected networks).  Build via
    :func:`csr_graph`, which memoizes per network.
    """

    __slots__ = (
        "num_vertices",
        "num_edges",
        "directed",
        "indptr",
        "indices",
        "weights",
        "rindptr",
        "rindices",
        "rweights",
        "_flat_fwd",
        "_flat_rev",
        "_tails_fwd",
        "_tails_rev",
        "_token",
    )

    def __init__(self, network: "RoadNetwork") -> None:
        n = network.num_vertices
        self.num_vertices = n
        self.num_edges = network.num_edges
        self.directed = network.directed
        self.indptr, self.indices, self.weights = self._pack(
            network.neighbors, n
        )
        if network.directed:
            self.rindptr, self.rindices, self.rweights = self._pack(
                network.in_neighbors, n
            )
        else:
            self.rindptr = self.indptr
            self.rindices = self.indices
            self.rweights = self.weights
        self._flat_fwd: FlatAdjacency | None = None
        self._flat_rev: FlatAdjacency | None = None
        self._tails_fwd = None
        self._tails_rev = None
        self._token = (n, network.num_edges)

    @staticmethod
    def _pack(neighbors, n: int):
        indptr = [0] * (n + 1)
        indices: list[int] = []
        weights: list[float] = []
        for u in range(n):
            for v, w in neighbors(u):
                indices.append(v)
                weights.append(w)
            indptr[u + 1] = len(indices)
        if HAVE_NUMPY:
            return (
                _np.asarray(indptr, dtype=_np.int64),
                _np.asarray(indices, dtype=_np.int64),
                _np.asarray(weights, dtype=_np.float64),
            )
        return array("q", indptr), array("q", indices), array("d", weights)

    def flat(self, *, reverse: bool = False) -> FlatAdjacency:
        """Python-list mirror for the scalar kernels (cached)."""
        # .tolist() (numpy and array.array alike) yields plain python
        # ints/floats — list(...) would leak numpy scalars into the
        # kernels and the heap, which is both slower and not bit-stable.
        if reverse and self.directed:
            if self._flat_rev is None:
                self._flat_rev = (
                    self.num_vertices,
                    self.rindptr.tolist(),
                    self.rindices.tolist(),
                    self.rweights.tolist(),
                )
            return self._flat_rev
        if self._flat_fwd is None:
            self._flat_fwd = (
                self.num_vertices,
                self.indptr.tolist(),
                self.indices.tolist(),
                self.weights.tolist(),
            )
        return self._flat_fwd

    def tails(self, *, reverse: bool = False):
        """Per-edge tail-vertex array (numpy builds only, cached).

        The CSR triplet implicitly encodes each edge's tail via the
        ``indptr`` ranges; the batched relaxation kernel needs it
        explicit to gather ``dist[tail] + weight`` in one shot.
        """
        assert HAVE_NUMPY
        if reverse and self.directed:
            if self._tails_rev is None:
                self._tails_rev = _np.repeat(
                    _np.arange(self.num_vertices, dtype=_np.int64),
                    _np.diff(self.rindptr),
                )
            return self._tails_rev
        if self._tails_fwd is None:
            self._tails_fwd = _np.repeat(
                _np.arange(self.num_vertices, dtype=_np.int64),
                _np.diff(self.indptr),
            )
        return self._tails_fwd

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "directed" if self.directed else "undirected"
        return (
            f"CSRGraph({kind}, |V∪P|={self.num_vertices}, "
            f"|E|={self.num_edges}, numpy={HAVE_NUMPY})"
        )


def csr_graph(network: "RoadNetwork") -> CSRGraph:
    """The (memoized) CSR view of ``network``.

    Rebuilt automatically when the network gained vertices or edges
    since the last call; independent of :func:`set_csr_enabled`, so
    index structures (e.g. landmarks) can use CSR arrays even while the
    scalar kernels run the dict baseline.
    """
    cached: CSRGraph | None = getattr(network, "_csr_view", None)
    token = (network.num_vertices, network.num_edges)
    if cached is not None and cached._token == token:
        return cached
    view = CSRGraph(network)
    network._csr_view = view  # type: ignore[attr-defined]
    return view


def flat_adjacency(
    network: "RoadNetwork", *, reverse: bool = False
) -> FlatAdjacency | None:
    """Python-list CSR mirror, or ``None`` when the backend is disabled.

    This is the single dispatch point of every Dijkstra flavor: a
    non-``None`` return selects the CSR kernel, ``None`` the original
    dict-based implementation.
    """
    if not _ENABLED:
        return None
    return csr_graph(network).flat(reverse=reverse)


def batched_min_distances(
    network: "RoadNetwork",
    sources: Iterable[int],
    *,
    reverse: bool = False,
) -> list[float] | None:
    """Vectorized multi-source sweep: per-vertex min distance from any
    source, or ``None`` when the numpy kernels are unavailable/disabled.

    A frontier-driven Bellman–Ford fixpoint over the flat arrays: each
    round gathers ``dist[tail] + weight`` for every edge leaving an
    improved vertex and scatter-minimizes into the heads.  The result
    is **bit-identical** to the scalar Dijkstra labels: with
    non-negative weights both compute, per vertex, the minimum over all
    paths of the left-to-right float sum of edge weights (float ``+``
    is monotone and float ``min`` order-independent), so the fixpoint
    is unique.  Pinned by the property layer in ``tests/test_csr.py``.

    This is a *bulk* kernel — it always relaxes to the full fixpoint,
    so it backs build-time paths (landmark tables, eccentricities,
    untruncated multi-source queries), never the radius-truncated
    early-exit searches where the scalar kernel's laziness wins.
    """
    if not _NUMPY_ENABLED:
        return None
    g = csr_graph(network)
    n = g.num_vertices
    if n == 0:
        return []
    use_rev = reverse and g.directed
    indices = g.rindices if use_rev else g.indices
    weights = g.rweights if use_rev else g.weights
    tails = g.tails(reverse=reverse)
    dist = _np.full(n, _np.inf)
    src = _np.fromiter(sources, dtype=_np.int64)
    dist[src] = 0.0
    frontier = _np.zeros(n, dtype=bool)
    frontier[src] = True
    while frontier.any():
        live = frontier[tails]
        heads = indices[live]
        cand = dist[tails[live]] + weights[live]
        improved = dist.copy()
        _np.minimum.at(improved, heads, cand)
        frontier = improved < dist
        dist = improved
    return dist.tolist()
