"""PoI index: category → PoI vertices, with semantic closure sets.

Section 3 of the paper defines two PoI sets per category ``c``:

* ``P_c``  — PoIs *associated with* ``c``.  Because a PoI is associated
  with every ancestor of its category, ``P_c`` is the set of PoIs whose
  category lies in the *subtree* of ``c`` (the closure set);
* ``P_t``  — PoIs associated with the category *tree* ``t`` (any
  category in the tree → semantic match candidates).

:class:`PoIIndex` materializes exact-category and per-tree buckets once
and serves both sets; closure sets are resolved through the forest's
O(1) subtree-membership test.
"""

from __future__ import annotations

from collections import defaultdict

from repro.graph.road_network import RoadNetwork
from repro.semantics.category import CategoryForest


class PoIIndex:
    """Immutable snapshot index of the network's PoI vertices.

    Build once per (network, forest) pair; rebuild after mutating PoIs.
    """

    def __init__(self, network: RoadNetwork, forest: CategoryForest) -> None:
        self._network = network
        self._forest = forest
        by_category: dict[int, list[int]] = defaultdict(list)
        by_tree: dict[int, list[int]] = defaultdict(list)
        for vid, cats in network.poi_items():
            seen_trees: set[int] = set()
            for cid in cats:
                by_category[cid].append(vid)
                tid = forest.tree_id(cid)
                if tid not in seen_trees:
                    seen_trees.add(tid)
                    by_tree[tid].append(vid)
        self._by_category: dict[int, list[int]] = dict(by_category)
        self._by_tree: dict[int, list[int]] = dict(by_tree)

    @property
    def forest(self) -> CategoryForest:
        return self._forest

    @property
    def network(self) -> RoadNetwork:
        return self._network

    # ------------------------------------------------------------------
    # buckets
    # ------------------------------------------------------------------

    def pois_with_exact_category(self, category: int | str) -> list[int]:
        """PoIs whose *own* category equals ``category``."""
        cid = self._forest.resolve(category)
        return list(self._by_category.get(cid, ()))

    def pois_in_tree(self, tree: int | str) -> list[int]:
        """The paper's ``P_t``: all PoIs of one category tree
        (the semantic-match candidates of Definition 3.4)."""
        tid = self._forest.category(tree).tree_id
        return list(self._by_tree.get(tid, ()))

    def pois_in_closure(self, category: int | str) -> list[int]:
        """The paper's ``P_c``: PoIs associated with ``category``, i.e.
        PoIs whose category lies in ``category``'s subtree."""
        cid = self._forest.resolve(category)
        cat = self._forest.category(cid)
        if cat.is_root:
            return self.pois_in_tree(cid)
        out = []
        for vid in self._by_tree.get(cat.tree_id, ()):
            if self.matches_closure(cid, vid):
                out.append(vid)
        return out

    # ------------------------------------------------------------------
    # membership tests
    # ------------------------------------------------------------------

    def matches_tree(self, category: int | str, vid: int) -> bool:
        """Does PoI ``vid`` semantically match ``category`` (same tree)?"""
        tid = self._forest.category(category).tree_id
        return any(
            self._forest.tree_id(c) == tid
            for c in self._network.poi_categories(vid)
        )

    def matches_closure(self, category: int | str, vid: int) -> bool:
        """Is PoI ``vid`` in ``P_category`` (category subtree closure)?"""
        cid = self._forest.resolve(category)
        return any(
            self._forest.is_ancestor_or_self(cid, c)
            for c in self._network.poi_categories(vid)
        )

    # ------------------------------------------------------------------
    # statistics (used by workload generation, Section 7.1)
    # ------------------------------------------------------------------

    def category_counts(self) -> dict[int, int]:
        """PoI count per exact category id."""
        return {cid: len(vids) for cid, vids in self._by_category.items()}

    def populated_leaves(self, min_count: int = 1) -> list[int]:
        """Leaf categories with at least ``min_count`` exact PoIs.

        The paper "select[s] only categories that have a large number of
        PoI vertices" for its workloads.
        """
        counts = self.category_counts()
        return [
            cid
            for cid in self._forest.leaves()
            if counts.get(cid, 0) >= min_count
        ]

    def trees_present(self) -> list[int]:
        """Tree ids that contain at least one PoI."""
        return list(self._by_tree)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PoIIndex(pois={self._network.num_pois}, "
            f"categories={len(self._by_category)}, trees={len(self._by_tree)})"
        )
