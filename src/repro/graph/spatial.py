"""Spatial helpers: distances, nearest elements, PoI edge-embedding.

The paper embeds each Foursquare PoI "on the closest edge" of the OSM
road network (Section 7.1, following Li et al. [10]).
:func:`embed_poi_on_edge` reproduces that operation: the PoI becomes a
new vertex splitting the edge, with the two sub-weights proportional to
the projection of the PoI onto the edge segment.
"""

from __future__ import annotations

import math

from repro.errors import GraphError
from repro.graph.road_network import RoadNetwork


def euclidean(a: tuple[float, float], b: tuple[float, float]) -> float:
    """Plain Euclidean distance between two coordinate pairs."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def equirectangular(
    a: tuple[float, float], b: tuple[float, float]
) -> float:
    """Distance "based on longitude and latitude" as in the paper —
    the equirectangular approximation in degree units (coordinates are
    ``(lon, lat)``)."""
    mean_lat = math.radians((a[1] + b[1]) / 2.0)
    dx = (a[0] - b[0]) * math.cos(mean_lat)
    dy = a[1] - b[1]
    return math.hypot(dx, dy)


def nearest_vertex(
    network: RoadNetwork, point: tuple[float, float]
) -> int:
    """Vertex whose coordinates are closest to ``point`` (linear scan)."""
    best, best_d = -1, math.inf
    for vid in network.vertices():
        coords = network.coords(vid)
        if coords is None:
            continue
        d = euclidean(coords, point)
        if d < best_d:
            best, best_d = vid, d
    if best < 0:
        raise GraphError("network has no vertices with coordinates")
    return best


def _project_on_segment(
    p: tuple[float, float],
    a: tuple[float, float],
    b: tuple[float, float],
) -> float:
    """Fraction t ∈ [0, 1] of p's projection along segment a→b."""
    ax, ay = a
    bx, by = b
    dx, dy = bx - ax, by - ay
    denom = dx * dx + dy * dy
    if denom <= 0.0:
        return 0.5
    t = ((p[0] - ax) * dx + (p[1] - ay) * dy) / denom
    return min(1.0, max(0.0, t))


def nearest_edge(
    network: RoadNetwork, point: tuple[float, float]
) -> tuple[int, int, float]:
    """Closest edge to ``point`` and the projection fraction along it.

    Returns ``(u, v, t)`` where the projection sits at fraction ``t`` of
    the way from ``u`` to ``v``.  Linear scan — generators call this a
    bounded number of times per PoI.
    """
    best: tuple[int, int, float] | None = None
    best_d = math.inf
    for u, v, _w in network.edges():
        cu, cv = network.coords(u), network.coords(v)
        if cu is None or cv is None:
            continue
        t = _project_on_segment(point, cu, cv)
        proj = (cu[0] + t * (cv[0] - cu[0]), cu[1] + t * (cv[1] - cu[1]))
        d = euclidean(point, proj)
        if d < best_d:
            best, best_d = (u, v, t), d
    if best is None:
        raise GraphError("network has no edges with coordinates")
    return best


def embed_poi_on_edge(
    network: RoadNetwork,
    categories: int | tuple[int, ...],
    point: tuple[float, float],
    *,
    edge: tuple[int, int] | None = None,
) -> int:
    """Embed a PoI at ``point`` by splitting its closest edge.

    The edge ``(u, v)`` of weight ``w`` is replaced by ``(u, p)`` and
    ``(p, v)`` with weights ``t·w`` and ``(1−t)·w``; the original edge is
    kept (removal would require adjacency rebuilds and does not affect
    shortest paths, since the split path has identical total weight).

    Returns the new PoI vertex id.
    """
    if edge is None:
        u, v, t = nearest_edge(network, point)
    else:
        u, v = edge
        cu, cv = network.coords(u), network.coords(v)
        if cu is None or cv is None:
            t = 0.5
        else:
            t = _project_on_segment(point, cu, cv)
    w = network.edge_weight(u, v)
    pid = network.add_poi(categories, point[0], point[1])
    network.add_edge(u, pid, t * w)
    network.add_edge(pid, v, (1.0 - t) * w)
    if network.directed:
        # Keep the embedding reachable both ways on directed networks.
        network.add_edge(v, pid, (1.0 - t) * w)
        network.add_edge(pid, u, t * w)
    return pid


def bounding_box(
    network: RoadNetwork,
) -> tuple[float, float, float, float]:
    """``(min_x, min_y, max_x, max_y)`` over all vertices with coords."""
    xs, ys = [], []
    for vid in network.vertices():
        coords = network.coords(vid)
        if coords is not None:
            xs.append(coords[0])
            ys.append(coords[1])
    if not xs:
        raise GraphError("network has no coordinates")
    return min(xs), min(ys), max(xs), max(ys)
