"""Persistence and interop for road networks and category forests.

Formats:

* JSON — complete round-trip of a dataset (network + forest), used by
  the CLI to save/load generated datasets;
* TSV edge list — lowest-common-denominator exchange (mirrors the
  format of the public California road-network files the paper uses);
* networkx bridge — optional, for validation in tests and for users who
  want to run graph analytics on the same data.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import DataError
from repro.graph.road_network import RoadNetwork
from repro.semantics.category import CategoryForest


def network_to_dict(network: RoadNetwork) -> dict:
    """JSON-serializable representation of a road network."""
    vertices = []
    for vid in network.vertices():
        entry: dict = {"id": vid}
        coords = network.coords(vid)
        if coords is not None:
            entry["x"], entry["y"] = coords
        cats = network.poi_categories(vid)
        if cats:
            entry["categories"] = list(cats)
        vertices.append(entry)
    return {
        "directed": network.directed,
        "vertices": vertices,
        "edges": [[u, v, w] for u, v, w in network.edges()],
    }


def network_from_dict(payload: dict) -> RoadNetwork:
    """Inverse of :func:`network_to_dict`."""
    network = RoadNetwork(directed=bool(payload.get("directed", False)))
    vertices = sorted(payload["vertices"], key=lambda e: e["id"])
    for expected, entry in enumerate(vertices):
        if entry["id"] != expected:
            raise DataError("vertex ids must be dense and ordered")
        vid = network.add_vertex(entry.get("x"), entry.get("y"))
        cats = entry.get("categories")
        if cats:
            network.set_poi(vid, cats)
    for u, v, w in payload["edges"]:
        network.add_edge(int(u), int(v), float(w))
    return network


def save_dataset(
    path: str | Path, network: RoadNetwork, forest: CategoryForest
) -> None:
    """Write a complete dataset (network + forest) as one JSON file."""
    payload = {
        "format": "repro-skysr-dataset",
        "version": 1,
        "network": network_to_dict(network),
        "forest": forest.to_dict(),
    }
    Path(path).write_text(json.dumps(payload))


def load_dataset(path: str | Path) -> tuple[RoadNetwork, CategoryForest]:
    """Read a dataset written by :func:`save_dataset`."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise DataError(f"cannot read dataset {path}: {exc}") from exc
    if payload.get("format") != "repro-skysr-dataset":
        raise DataError(f"{path} is not a repro dataset file")
    return (
        network_from_dict(payload["network"]),
        CategoryForest.from_dict(payload["forest"]),
    )


def write_edge_list(path: str | Path, network: RoadNetwork) -> None:
    """TSV edge list: ``u<TAB>v<TAB>weight`` per line."""
    with open(path, "w", encoding="utf-8") as handle:
        for u, v, w in network.edges():
            handle.write(f"{u}\t{v}\t{w}\n")


def read_edge_list(
    path: str | Path, *, directed: bool = False
) -> RoadNetwork:
    """Read a TSV edge list into a coordinate-less network."""
    edges: list[tuple[int, int, float]] = []
    max_vid = -1
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3:
                raise DataError(f"{path}:{lineno}: expected 'u v w'")
            u, v, w = int(parts[0]), int(parts[1]), float(parts[2])
            edges.append((u, v, w))
            max_vid = max(max_vid, u, v)
    network = RoadNetwork(directed=directed)
    for _ in range(max_vid + 1):
        network.add_vertex()
    for u, v, w in edges:
        network.add_edge(u, v, w)
    return network


def to_networkx(network: RoadNetwork):
    """Convert to a :mod:`networkx` graph (optional dependency)."""
    try:
        import networkx as nx
    except ImportError as exc:  # pragma: no cover - env always has it
        raise DataError("networkx is not installed") from exc
    graph = nx.DiGraph() if network.directed else nx.Graph()
    for vid in network.vertices():
        attrs: dict = {}
        coords = network.coords(vid)
        if coords is not None:
            attrs["x"], attrs["y"] = coords
        cats = network.poi_categories(vid)
        if cats:
            attrs["categories"] = cats
        graph.add_node(vid, **attrs)
    for u, v, w in network.edges():
        # Parallel edges collapse to the lightest one: networkx simple
        # graphs hold one edge per pair, and only the minimum weight is
        # relevant for shortest paths.
        if graph.has_edge(u, v):
            w = min(w, graph[u][v]["weight"])
        graph.add_edge(u, v, weight=w)
    return graph


def from_networkx(graph) -> RoadNetwork:
    """Convert a (di)graph with ``weight`` edge attributes back."""
    network = RoadNetwork(directed=graph.is_directed())
    relabel: dict = {}
    for node, attrs in sorted(graph.nodes(data=True), key=lambda kv: str(kv[0])):
        vid = network.add_vertex(attrs.get("x"), attrs.get("y"))
        relabel[node] = vid
        cats = attrs.get("categories")
        if cats:
            network.set_poi(vid, tuple(cats))
    for u, v, attrs in graph.edges(data=True):
        network.add_edge(relabel[u], relabel[v], float(attrs.get("weight", 1.0)))
    return network
