"""Table 4 — the Section 5.5 running example as an execution trace.

Replays BSSR with tracing on the Figure-1 instance and prints the
evolution of the route queue ``Q_b`` and the skyline set ``S`` after
every expansion, the way the paper's Table 4 presents its twelve steps
(exact step contents depend on the reconstructed Figure-1 geometry; the
invariants — monotone skyline improvement, queue drain, final SkySR set
— are asserted by the benchmark).
"""

from __future__ import annotations

from repro.core.trace import render_trace, trace_bssr
from repro.datasets.paper_example import figure1_dataset, figure1_query
from repro.experiments.harness import ExperimentConfig, Report
from repro.semantics.similarity import HierarchyWuPalmer


def run(config: ExperimentConfig | None = None) -> Report:
    del config  # the running example is fixed-size by design
    data = figure1_dataset()
    from repro.core.spec import compile_query

    compiled = compile_query(
        data.landmarks["vq"],
        list(figure1_query()),
        data.index,
        HierarchyWuPalmer(),
    )
    routes, stats, steps = trace_bssr(data.network, compiled)
    names = {vid: name for name, vid in data.landmarks.items()}
    trace = render_trace(steps)
    final = "\n".join(
        f"  l={r.length:g}  s={r.semantic:.4g}  "
        + " -> ".join(names.get(p, str(p)) for p in r.pois)
        for r in routes
    )
    table = (
        f"query: {' -> '.join(figure1_query())} from vq\n\n"
        f"{trace}\n\nfinal SkySR set:\n{final}\n"
        f"({stats.routes_expanded} expansions, "
        f"{stats.routes_pruned_on_pop} pruned at pop)"
    )
    return Report(
        experiment="table4",
        title="Table 4 — BSSR running example (execution trace)",
        table=table,
        data={"steps": len(steps), "routes": routes},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
