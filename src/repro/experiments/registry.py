"""Experiment registry: id → runner, for the CLI and the benchmarks."""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    figure3,
    figure4,
    figure5,
    figure6,
    pagination,
    table1,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
    topk,
)
from repro.experiments.harness import ExperimentConfig, Report

_REGISTRY: dict[str, Callable[..., Report]] = {
    "table1": table1.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "table7": table7.run,
    "table8": table8.run,
    "table9": table9.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "topk": topk.run,
    "pagination": pagination.run,
}


def experiment_names() -> list[str]:
    return sorted(_REGISTRY)


def run_experiment(
    name: str, config: ExperimentConfig | None = None
) -> Report:
    try:
        runner = _REGISTRY[name]
    except KeyError:
        known = ", ".join(experiment_names())
        raise KeyError(f"unknown experiment {name!r} (known: {known})") from None
    return runner(config)


def run_all(config: ExperimentConfig | None = None) -> list[Report]:
    config = config or ExperimentConfig.from_env()
    return [run_experiment(name, config) for name in experiment_names()]
