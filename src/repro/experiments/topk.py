"""Top-k alternatives — response time and result size vs k.

Beyond the paper: the top-k sequenced route query (after Liu et al.,
*Finding Top-k Optimal Sequenced Routes*, 2018) relaxes BSSR's pruning
thresholds to the k-th-smallest qualifying length, so the search
retains up to k ranked alternatives per skyline level.  This experiment
measures what the relaxation costs on the synthetic presets: mean
response time and mean number of routes retained for k ∈ {1, 3, 5} at
a fixed |S_q| = 3 workload.
"""

from __future__ import annotations

from repro.core.options import BSSROptions
from repro.experiments.harness import (
    CellResult,
    ExperimentConfig,
    Report,
    dataset_by_name,
    run_cell,
    workload_for,
)
from repro.experiments.tables import format_table

#: the k sweep of the report
K_VALUES = (1, 3, 5)


def run(
    config: ExperimentConfig | None = None,
    *,
    datasets: tuple[str, ...] = ("tokyo", "nyc", "cal"),
    sequence_size: int = 3,
) -> Report:
    config = config or ExperimentConfig.from_env()
    size = min(sequence_size, config.max_sequence_size)
    rows = []
    cells: dict[tuple[str, int], CellResult] = {}
    for dataset_name in datasets:
        dataset = dataset_by_name(dataset_name, config.scale)
        workload = workload_for(dataset, size, config)
        row = [dataset.name, size]
        sizes = []
        for k in K_VALUES:
            cell = run_cell(
                dataset,
                workload,
                "bssr",
                time_budget=config.time_budget,
                options=BSSROptions().but(k=k),
            )
            cells[(dataset_name, k)] = cell
            row.append(cell.mean_time)
            sizes.append(None if cell.timed_out else cell.mean.result_size)
        rows.append(row + sizes)
    headers = (
        ["dataset", "|Sq|"]
        + [f"k={k} [s]" for k in K_VALUES]
        + [f"k={k} routes" for k in K_VALUES]
    )
    table = format_table(
        headers,
        rows,
        title="top-k alternatives: mean response time and mean skyband "
        "size per query; '-' = cell exceeded its time budget "
        f"({config.time_budget}s)",
    )
    return Report(
        experiment="topk",
        title="Top-k — response time vs k",
        table=table,
        data={"rows": rows, "cells": cells, "k_values": list(K_VALUES)},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
