"""Figure 3 — response time vs sequence size, four algorithms.

The paper's headline result: BSSR is fastest on every dataset, the gap
to the naive baselines grows dramatically with |S_q| (up to four orders
of magnitude), and at |S_q| = 5 the baselines may not finish at all
(missing bars — reproduced here via per-cell time budgets).
"""

from __future__ import annotations

from repro.core.options import BSSROptions
from repro.experiments.harness import (
    CellResult,
    ExperimentConfig,
    Report,
    dataset_by_name,
    run_cell,
    workload_for,
)
from repro.experiments.tables import format_table

#: (report label, engine algorithm name, options override)
ALGORITHMS: list[tuple[str, str, BSSROptions | None]] = [
    ("BSSR", "bssr", None),
    ("BSSR w/o Opt", "bssr-noopt", None),
    ("PNE", "pne", None),
    ("Dij", "dij", None),
]


def run(
    config: ExperimentConfig | None = None,
    *,
    datasets: tuple[str, ...] = ("tokyo", "nyc", "cal"),
) -> Report:
    config = config or ExperimentConfig.from_env()
    rows = []
    cells: dict[tuple[str, str, int], CellResult] = {}
    for dataset_name in datasets:
        dataset = dataset_by_name(dataset_name, config.scale)
        for size in config.sequence_sizes():
            workload = workload_for(dataset, size, config)
            row = [dataset.name, size]
            for label, algorithm, options in ALGORITHMS:
                cell = run_cell(
                    dataset,
                    workload,
                    algorithm,
                    time_budget=config.time_budget,
                    options=options,
                )
                cells[(dataset_name, label, size)] = cell
                row.append(cell.mean_time)
            rows.append(row)
    table = format_table(
        ["dataset", "|Sq|"] + [label for label, _, _ in ALGORITHMS],
        rows,
        title="mean response time per query [s]; '-' = cell exceeded its "
        f"time budget ({config.time_budget}s), as in the paper's missing bars",
    )
    return Report(
        experiment="figure3",
        title="Figure 3 — response time vs |Sq|",
        table=table,
        data={"rows": rows, "cells": cells},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
