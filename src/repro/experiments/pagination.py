"""Pagination — resume-vs-recompute cost of top-k sessions.

Beyond the paper: a :class:`~repro.core.session.PlanningSession`
serves ranks ``k+1..2k`` by resuming the checkpointed k-skyband search
(queue, skyband archive, deferred routes, Dijkstra caches) instead of
recomputing a 2k search from scratch.  This experiment quantifies the
saving on the synthetic presets: per query it runs page 1 (``k``),
resumes for page 2 (``2k``), and runs a fresh one-shot ``2k`` search,
then reports mean queue pops (``routes_expanded`` — the search-work
proxy of :mod:`repro.core.stats`) and wall-clock time for the resumed
second page against the from-scratch recompute.  The resume column
should be strictly cheaper on both axes everywhere.

A fourth leg covers *durable* sessions (:mod:`repro.core.serialize`):
after page 1 the session is serialized to JSON and restored into a new
:class:`~repro.core.session.PlanningSession`, which then serves page 2.
Its queue pops must equal the in-process resume exactly — the
serialization round trip loses none of the checkpoint — so the
``restored pops`` column doubles as a standing oracle check.
"""

from __future__ import annotations

from time import perf_counter

from repro.core.options import BSSROptions
from repro.core.session import PlanningSession
from repro.core.stats import SearchStats, mean_stats
from repro.experiments.harness import (
    ExperimentConfig,
    Report,
    dataset_by_name,
    engine_for,
    workload_for,
)
from repro.experiments.tables import format_table

#: page size of the report (page 2 therefore widens the skyband to 2k)
PAGE_SIZE = 3


def run(
    config: ExperimentConfig | None = None,
    *,
    datasets: tuple[str, ...] = ("tokyo", "nyc", "cal"),
    sequence_size: int = 3,
    page_size: int = PAGE_SIZE,
) -> Report:
    config = config or ExperimentConfig.from_env()
    size = min(sequence_size, config.max_sequence_size)
    rows = []
    cells: dict[str, dict] = {}
    for dataset_name in datasets:
        dataset = dataset_by_name(dataset_name, config.scale)
        engine = engine_for(dataset)
        workload = workload_for(dataset, size, config)
        page1_stats: list[SearchStats] = []
        resume_stats: list[SearchStats] = []
        restored_stats: list[SearchStats] = []
        fresh_stats: list[SearchStats] = []
        mismatches = 0
        started = perf_counter()
        timed_out = False
        for qspec in workload:
            if perf_counter() - started > config.time_budget:
                timed_out = True
                break
            session = engine.session(
                qspec.start, list(qspec.categories), page_size=page_size
            )
            page1 = session.next_page()
            # durable leg: JSON round trip, then page 2 on the restored copy
            restored = PlanningSession.loads(engine, session.dumps())
            restored_page2 = restored.next_page()
            page2 = session.next_page()
            if [r.scores() for r in restored_page2.routes] != [
                r.scores() for r in page2.routes
            ]:
                mismatches += 1
            fresh = engine.query(
                qspec.start,
                list(qspec.categories),
                options=BSSROptions().but(k=2 * page_size),
            )
            page1_stats.append(page1.stats)
            resume_stats.append(page2.stats)
            restored_stats.append(restored_page2.stats)
            fresh_stats.append(fresh.stats)
        if not page1_stats:
            rows.append([dataset.name, size] + [None] * 6)
            continue
        p1, res, rst, frs = (
            mean_stats(page1_stats),
            mean_stats(resume_stats),
            mean_stats(restored_stats),
            mean_stats(fresh_stats),
        )
        saving = (
            1.0 - res.routes_expanded / frs.routes_expanded
            if frs.routes_expanded
            else 0.0
        )
        rows.append(
            [
                dataset.name,
                size,
                round(p1.routes_expanded, 1),
                round(res.routes_expanded, 1),
                round(rst.routes_expanded, 1),
                round(frs.routes_expanded, 1),
                f"{saving * 100.0:.0f}%",
                None if timed_out else res.elapsed,
            ]
        )
        cells[dataset_name] = {
            "page1": p1,
            "resume": res,
            "restored": rst,
            "fresh": frs,
            "saving": saving,
            "queries": len(resume_stats),
            "restored_page_mismatches": mismatches,
            "timed_out": timed_out,
        }
    headers = [
        "dataset",
        "|Sq|",
        "page1 pops",
        "resume pops",
        "restored pops",
        "fresh 2k pops",
        "pops saved",
        "resume [s]",
    ]
    table = format_table(
        headers,
        rows,
        title=(
            f"resumable pagination (page size {page_size}): queue pops "
            "to serve ranks k+1..2k by resuming the checkpointed "
            "session vs recomputing the 2k search from scratch"
        ),
    )
    return Report(
        experiment="pagination",
        title="Pagination — resume vs recompute",
        table=table,
        data={"rows": rows, "cells": cells, "page_size": page_size},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
