"""Shared helpers for the paper's narrative examples (Tables 1 and 9)."""

from __future__ import annotations

import random

from repro.core.engine import SkySREngine
from repro.datasets.paper_example import Dataset
from repro.datasets.poi_placement import place_pois_uniform


def ensure_category_pois(
    dataset: Dataset,
    category_names: list[str],
    *,
    per_category: int = 3,
    seed: int = 99,
) -> None:
    """Guarantee a few exact-category PoIs exist for a scenario.

    The synthetic presets draw categories with Zipf skew, so a specific
    leaf (say "Cupcake Shop") may be unpopulated at small scales; the
    narrative scenarios need at least a handful so a perfect-match
    route exists, as in the paper's examples.
    """
    counts = dataset.index.category_counts()
    missing: list[int] = []
    for name in category_names:
        cid = dataset.forest.resolve(name)
        shortfall = per_category - counts.get(cid, 0)
        missing.extend([cid] * max(0, shortfall))
    if not missing:
        return
    rng = random.Random(seed)
    for cid in missing:
        place_pois_uniform(
            dataset.network,
            dataset.forest,
            1,
            categories=[cid],
            seed=rng.randrange(1 << 30),
        )
    dataset._index = None  # rebuild the PoI index snapshot


def scenario_start(dataset: Dataset, seed: int = 5) -> int:
    """A deterministic road-vertex start point for a scenario."""
    rng = random.Random(seed)
    road = [
        v for v in dataset.network.vertices() if not dataset.network.is_poi(v)
    ]
    return road[rng.randrange(len(road))]


def scenario_engine(dataset: Dataset) -> SkySREngine:
    """A fresh engine bound to the (possibly mutated) scenario dataset."""
    return SkySREngine(dataset.network, dataset.forest)
