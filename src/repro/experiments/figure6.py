"""Figure 6 — number of skyline sequenced routes per query.

The skyline stays small (the paper measures at most ~8 routes, with
Cal returning the most), which is what makes SkySR results directly
consumable without a ranking function.
"""

from __future__ import annotations

from repro.experiments.harness import (
    ExperimentConfig,
    Report,
    dataset_by_name,
    run_cell,
    workload_for,
)
from repro.experiments.tables import format_series


def run(
    config: ExperimentConfig | None = None,
    *,
    datasets: tuple[str, ...] = ("tokyo", "nyc", "cal"),
) -> Report:
    config = config or ExperimentConfig.from_env()
    sizes = config.sequence_sizes()
    series: dict[str, list[float | None]] = {}
    for dataset_name in datasets:
        dataset = dataset_by_name(dataset_name, config.scale)
        values: list[float | None] = []
        for size in sizes:
            workload = workload_for(dataset, size, config)
            cell = run_cell(
                dataset, workload, "bssr", time_budget=config.time_budget
            )
            values.append(cell.mean.result_size if cell.queries_run else None)
        series[dataset.name] = values
    table = format_series(
        "|Sq|", sizes, series, title="mean # of SkySRs per query"
    )
    return Report(
        experiment="figure6",
        title="Figure 6 — number of skyline sequenced routes",
        table=table,
        data={"sizes": sizes, "series": series},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
