"""Table 8 — effect of the priority-queue arrangement (Section 5.3.2).

Total vertices visited by BSSR under the proposed queue order
(size ↓, semantic ↑, length ↑) vs the conventional distance-based
order.  The gap widens with |S_q|: a distance-first queue keeps
extending short prefixes and rarely completes routes, so the upper
bound stays loose.
"""

from __future__ import annotations

from repro.core.options import BSSROptions
from repro.experiments.harness import (
    ExperimentConfig,
    Report,
    dataset_by_name,
    run_cell,
    workload_for,
)
from repro.experiments.tables import format_table


def run(
    config: ExperimentConfig | None = None,
    *,
    datasets: tuple[str, ...] = ("tokyo", "nyc", "cal"),
) -> Report:
    config = config or ExperimentConfig.from_env()
    distance_queue = BSSROptions().but(priority_queue=False)
    rows = []
    for dataset_name in datasets:
        dataset = dataset_by_name(dataset_name, config.scale)
        for size in config.sequence_sizes():
            workload = workload_for(dataset, size, config)
            proposed = run_cell(
                dataset, workload, "bssr", time_budget=config.time_budget
            )
            distance = run_cell(
                dataset,
                workload,
                "bssr",
                time_budget=config.time_budget,
                options=distance_queue,
            )
            rows.append(
                [
                    dataset.name,
                    size,
                    proposed.mean.settled if proposed.queries_run else None,
                    distance.mean.settled if distance.queries_run else None,
                ]
            )
    table = format_table(
        ["dataset", "|Sq|", "proposed", "distance-based"],
        rows,
        title="mean vertices visited per query",
    )
    return Report(
        experiment="table8",
        title="Table 8 — effect of the priority queue",
        table=table,
        data={"rows": rows},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
