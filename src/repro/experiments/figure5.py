"""Figure 5 — effect of on-the-fly caching (Section 5.3.4).

Number of modified-Dijkstra executions per query with and without the
cache.  A cache hit *resumes* a previous expansion instead of starting
a new one, so the gap grows with |S_q| (more opportunities to land on
the same PoI at the same position).
"""

from __future__ import annotations

from repro.core.options import BSSROptions
from repro.experiments.harness import (
    ExperimentConfig,
    Report,
    dataset_by_name,
    run_cell,
    workload_for,
)
from repro.experiments.tables import format_table


def run(
    config: ExperimentConfig | None = None,
    *,
    datasets: tuple[str, ...] = ("tokyo", "nyc", "cal"),
) -> Report:
    config = config or ExperimentConfig.from_env()
    no_cache = BSSROptions().but(caching=False)
    rows = []
    for dataset_name in datasets:
        dataset = dataset_by_name(dataset_name, config.scale)
        for size in config.sequence_sizes():
            workload = workload_for(dataset, size, config)
            with_cache = run_cell(
                dataset, workload, "bssr", time_budget=config.time_budget
            )
            without_cache = run_cell(
                dataset,
                workload,
                "bssr",
                time_budget=config.time_budget,
                options=no_cache,
            )
            rows.append(
                [
                    dataset.name,
                    size,
                    with_cache.mean.mdijkstra_runs
                    if with_cache.queries_run
                    else None,
                    without_cache.mean.mdijkstra_runs
                    if without_cache.queries_run
                    else None,
                    with_cache.mean.cache_hits
                    if with_cache.queries_run
                    else None,
                ]
            )
    table = format_table(
        ["dataset", "|Sq|", "with cache", "w/o cache", "cache hits"],
        rows,
        title="mean modified-Dijkstra executions per query",
    )
    return Report(
        experiment="figure5",
        title="Figure 5 — effect of on-the-fly caching",
        table=table,
        data={"rows": rows},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
