"""Table 6 — memory usage (RSS) comparison at |S_q| = 4.

The paper reports maximum resident set size, which is the graph's
footprint plus the algorithm's working set.  We reconstruct that as
``graph memory estimate + tracemalloc peak during the query`` (the
interpreter baseline is excluded; it carries no signal).  The
reproduced claim is the *ordering*: Dij's route-carrying priority
queue dwarfs BSSR and PNE, which stay near the graph's footprint.
"""

from __future__ import annotations

from repro.experiments.harness import (
    ExperimentConfig,
    Report,
    dataset_by_name,
    run_cell,
    workload_for,
)
from repro.experiments.figure3 import ALGORITHMS
from repro.experiments.tables import format_table


def run(
    config: ExperimentConfig | None = None,
    *,
    sequence_size: int = 4,
    datasets: tuple[str, ...] = ("tokyo", "nyc", "cal"),
) -> Report:
    config = config or ExperimentConfig.from_env()
    sequence_size = min(sequence_size, config.max_sequence_size)
    rows = []
    for dataset_name in datasets:
        dataset = dataset_by_name(dataset_name, config.scale)
        workload = workload_for(dataset, sequence_size, config)
        graph_bytes = dataset.network.memory_footprint()
        row: list = [dataset.name, graph_bytes / (1024.0 * 1024.0)]
        for label, algorithm, options in ALGORITHMS:
            cell = run_cell(
                dataset,
                workload,
                algorithm,
                time_budget=config.time_budget,
                options=options,
                measure_memory=True,
            )
            if cell.queries_run == 0:
                row.append(None)
            else:
                peak = max(s.peak_memory_bytes for s in cell.per_query)
                row.append((graph_bytes + peak) / (1024.0 * 1024.0))
        rows.append(row)
    table = format_table(
        ["dataset", "graph [MiB]"]
        + [f"{label} [MiB]" for label, _, _ in ALGORITHMS],
        rows,
        title=f"graph footprint + peak query allocations, |Sq|={sequence_size}",
    )
    return Report(
        experiment="table6",
        title="Table 6 — memory (peak per-query allocations)",
        table=table,
        data={"rows": rows},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
