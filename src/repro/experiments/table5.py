"""Table 5 — dataset summary (ours vs the paper's originals)."""

from __future__ import annotations

from repro.experiments.harness import ExperimentConfig, Report, dataset_by_name
from repro.experiments.tables import format_table


def run(config: ExperimentConfig | None = None) -> Report:
    config = config or ExperimentConfig.from_env()
    rows = []
    for name in ("tokyo", "nyc", "cal"):
        dataset = dataset_by_name(name, config.scale)
        card = dataset.summary()
        paper = dataset.meta.get("paper", {})
        rows.append(
            [
                dataset.name,
                card["|V|"],
                card["|P|"],
                card["|E|"],
                card["categories"],
                card["trees"],
                paper.get("|V|"),
                paper.get("|P|"),
                paper.get("|E|"),
            ]
        )
    table = format_table(
        [
            "dataset",
            "|V|",
            "|P|",
            "|E|",
            "categories",
            "trees",
            "paper |V|",
            "paper |P|",
            "paper |E|",
        ],
        rows,
    )
    return Report(
        experiment="table5",
        title=f"Table 5 — dataset summary (scale={config.scale})",
        table=table,
        data={"rows": rows},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
