"""Figure 4 — effect of the possible minimum distances (Section 5.3.3).

For |S_q| = 5, the ratio of the semantic-match (``Σ l_s``) and
perfect-match (``Σ l_p``) minimum distances to the initial search's
weight (the length of NNinit's semantic-score-0 route).  The paper
observes large ratios on Tokyo (dispersed PoIs) and near-zero ratios on
NYC/Cal (PoIs concentrated in small areas) — the bound's usefulness
tracks PoI spatial skew.
"""

from __future__ import annotations

import math

from repro.experiments.harness import (
    ExperimentConfig,
    Report,
    dataset_by_name,
    run_cell,
    workload_for,
)
from repro.experiments.tables import format_table


def run(
    config: ExperimentConfig | None = None,
    *,
    sequence_size: int = 5,
    datasets: tuple[str, ...] = ("tokyo", "nyc", "cal"),
) -> Report:
    config = config or ExperimentConfig.from_env()
    sequence_size = min(sequence_size, config.max_sequence_size)
    rows = []
    for dataset_name in datasets:
        dataset = dataset_by_name(dataset_name, config.scale)
        workload = workload_for(dataset, sequence_size, config)
        cell = run_cell(
            dataset, workload, "bssr", time_budget=config.time_budget
        )
        ls_ratios: list[float] = []
        lp_ratios: list[float] = []
        for stats in cell.per_query:
            base = stats.extra.get("init_perfect_length", math.inf)
            if not base or base == math.inf:
                continue
            if stats.sum_ls < math.inf:
                ls_ratios.append(stats.sum_ls / base)
            if stats.sum_lp < math.inf:
                lp_ratios.append(stats.sum_lp / base)
        rows.append(
            [
                dataset.name,
                sum(ls_ratios) / len(ls_ratios) if ls_ratios else None,
                sum(lp_ratios) / len(lp_ratios) if lp_ratios else None,
            ]
        )
    table = format_table(
        ["dataset", "semantic-match ratio", "perfect-match ratio"],
        rows,
        title=f"Σ l_s / l(R0) and Σ l_p / l(R0) at |Sq|={sequence_size}",
    )
    return Report(
        experiment="figure4",
        title="Figure 4 — effect of minimum possible distances",
        table=table,
        data={"rows": rows},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
