"""Plain-text table/series rendering for the experiment reports."""

from __future__ import annotations

import math
from typing import Sequence


def format_value(value) -> str:
    """Compact human rendering of one cell."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.3g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], *, title: str | None = None
) -> str:
    """Fixed-width ASCII table."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Sequence,
    series: dict[str, Sequence],
    *,
    title: str | None = None,
) -> str:
    """A figure as a table: one x column plus one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)
