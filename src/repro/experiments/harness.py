"""Experiment harness: workloads × algorithms with budgets and memory.

Every table/figure module builds on three pieces:

* :class:`ExperimentConfig` — one knob set for the whole evaluation
  (dataset scale, queries per cell, per-cell time budget, seed), with
  environment overrides (``REPRO_SCALE``, ``REPRO_QUERIES``,
  ``REPRO_BUDGET``, ``REPRO_SEED``, ``REPRO_MAX_SEQ``) so CI can run
  tiny and a workstation can run large;
* :func:`run_cell` — execute one workload under one algorithm,
  aggregating per-query :class:`~repro.core.stats.SearchStats`, honoring
  a wall-clock budget the way the paper handles its month-long baseline
  runs (the cell is marked ``timed_out`` and reported as missing);
* :class:`Report` — a titled, printable result table.

The paper's absolute numbers came from C++ on millions of vertices;
ours come from CPython on scaled-down synthetic stand-ins.  Reports are
therefore *shape* reproductions: orderings, scalings and crossovers.
"""

from __future__ import annotations

import os
import tracemalloc
from dataclasses import dataclass, field
from time import perf_counter

from repro.core.engine import SkySREngine
from repro.core.options import BSSROptions
from repro.core.stats import SearchStats, mean_stats
from repro.datasets.paper_example import Dataset
from repro.datasets.presets import cal_like, nyc_like, tokyo_like
from repro.datasets.workloads import QuerySpec, generate_workload


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    return float(raw) if raw else default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    return int(raw) if raw else default


@dataclass
class ExperimentConfig:
    """Global experiment knobs (environment-overridable)."""

    scale: float = 0.35
    queries_per_cell: int = 3
    time_budget: float = 20.0
    seed: int = 17
    max_sequence_size: int = 5

    @classmethod
    def from_env(cls) -> "ExperimentConfig":
        return cls(
            scale=_env_float("REPRO_SCALE", cls.scale),
            queries_per_cell=_env_int("REPRO_QUERIES", cls.queries_per_cell),
            time_budget=_env_float("REPRO_BUDGET", cls.time_budget),
            seed=_env_int("REPRO_SEED", cls.seed),
            max_sequence_size=_env_int("REPRO_MAX_SEQ", cls.max_sequence_size),
        )

    def sequence_sizes(self) -> list[int]:
        """The paper's |S_q| sweep 2..5, truncated by the config."""
        return [s for s in (2, 3, 4, 5) if s <= self.max_sequence_size]


@dataclass
class Report:
    """A printable experiment outcome."""

    experiment: str
    title: str
    table: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:
        bar = "=" * max(len(self.title), 8)
        return f"{bar}\n{self.title}\n{bar}\n{self.table}\n"


@dataclass
class CellResult:
    """Aggregated outcome of one (dataset, algorithm, |S_q|) cell."""

    dataset: str
    algorithm: str
    sequence_size: int
    queries_run: int
    mean: SearchStats
    timed_out: bool = False
    per_query: list[SearchStats] = field(default_factory=list)
    score_sets: list[set] = field(default_factory=list)

    @property
    def mean_time(self) -> float | None:
        """Mean per-query seconds (None when the cell never finished —
        the paper's missing Figure-3 bars)."""
        if self.timed_out or self.queries_run == 0:
            return None
        return self.mean.elapsed


_DATASET_FACTORIES = {
    "tokyo": tokyo_like,
    "nyc": nyc_like,
    "cal": cal_like,
}

_dataset_cache: dict[tuple[str, float], Dataset] = {}


def dataset_by_name(name: str, scale: float) -> Dataset:
    """Memoized preset instantiation (datasets are immutable here)."""
    key = (name, scale)
    found = _dataset_cache.get(key)
    if found is None:
        found = _DATASET_FACTORIES[name](scale)
        _dataset_cache[key] = found
    return found


def clear_dataset_cache() -> None:
    _dataset_cache.clear()


_engine_cache: dict[int, SkySREngine] = {}


def engine_for(dataset: Dataset) -> SkySREngine:
    key = id(dataset)
    engine = _engine_cache.get(key)
    if engine is None:
        engine = SkySREngine(dataset.network, dataset.forest)
        _engine_cache[key] = engine
    return engine


def workload_for(
    dataset: Dataset, sequence_size: int, config: ExperimentConfig
) -> list[QuerySpec]:
    return generate_workload(
        dataset,
        sequence_size,
        config.queries_per_cell,
        seed=config.seed + sequence_size,
    )


def run_cell(
    dataset: Dataset,
    workload: list[QuerySpec],
    algorithm: str,
    *,
    time_budget: float | None = None,
    options: BSSROptions | None = None,
    measure_memory: bool = False,
    keep_scores: bool = False,
) -> CellResult:
    """Run one workload under one algorithm with a wall-clock budget."""
    engine = engine_for(dataset)
    per_query: list[SearchStats] = []
    score_sets: list[set] = []
    timed_out = False
    started = perf_counter()
    for qspec in workload:
        remaining = None
        if time_budget is not None:
            remaining = time_budget - (perf_counter() - started)
            if remaining <= 0:
                timed_out = True
                break
        if measure_memory:
            tracemalloc.start()
        result = engine.query(
            qspec.start,
            list(qspec.categories),
            algorithm=algorithm,
            options=options,
            deadline=remaining,
        )
        if measure_memory:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            result.stats.peak_memory_bytes = peak
        if result.stats.extra.get("timed_out"):
            timed_out = True
            break
        per_query.append(result.stats)
        if keep_scores:
            score_sets.append({r.scores() for r in result.routes})
    sequence_size = workload[0].size if workload else 0
    return CellResult(
        dataset=dataset.name,
        algorithm=algorithm,
        sequence_size=sequence_size,
        queries_run=len(per_query),
        mean=mean_stats(per_query),
        timed_out=timed_out,
        per_query=per_query,
        score_sets=score_sets,
    )
