"""Table 9 / Figure 7 — the Tokyo dinner use case (Section 7.5).

Query: Beer Garden → Sushi Restaurant → Sake Bar, then on to the hotel
(a destination query).  In the Foursquare trees "Bar" subsumes "Beer
Garden" and "Sake Bar", and "Japanese Restaurant" subsumes "Sushi
Restaurant", so SkySR finds much shorter semantically matching routes
— the paper's second representative route swaps the Beer Garden for a
nearby Bar and saves most of the walk.
"""

from __future__ import annotations

from repro.datasets.presets import tokyo_like
from repro.experiments.harness import ExperimentConfig, Report
from repro.experiments.scenarios import (
    ensure_category_pois,
    scenario_engine,
    scenario_start,
)
from repro.experiments.tables import format_table

QUERY = ("Beer Garden", "Sushi Restaurant", "Sake Bar")


def run(config: ExperimentConfig | None = None) -> Report:
    config = config or ExperimentConfig.from_env()
    dataset = tokyo_like(max(config.scale, 0.25), seed=2018)
    ensure_category_pois(dataset, list(QUERY), seed=config.seed)
    engine = scenario_engine(dataset)
    start = scenario_start(dataset, seed=config.seed)
    hotel = scenario_start(dataset, seed=config.seed + 1)
    result = engine.query(start, list(QUERY), destination=hotel)
    rows = []
    for route in result.routes:
        rows.append(
            [
                route.length,
                route.semantic,
                " -> ".join(result.poi_category_names(route)),
            ]
        )
    table = format_table(
        ["distance", "semantic", "sequenced route"],
        rows,
        title=(
            f"query: {' -> '.join(QUERY)}, start {start}, hotel {hotel} "
            "(destination query)"
        ),
    )
    return Report(
        experiment="table9",
        title="Table 9 — Tokyo dinner use case (with destination)",
        table=table,
        data={"rows": rows, "start": start, "hotel": hotel},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
