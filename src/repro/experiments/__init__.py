"""Experiment harness reproducing every table and figure of the paper."""

from repro.experiments.harness import (
    CellResult,
    ExperimentConfig,
    Report,
    dataset_by_name,
    run_cell,
    workload_for,
)

__all__ = [
    "ExperimentConfig",
    "Report",
    "CellResult",
    "run_cell",
    "dataset_by_name",
    "workload_for",
    "experiment_names",
    "run_experiment",
    "run_all",
]


def __getattr__(name):
    # Late imports: the registry pulls in every experiment module, which
    # would otherwise make `import repro` eagerly import them all.
    if name in ("experiment_names", "run_experiment", "run_all"):
        from repro.experiments import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
