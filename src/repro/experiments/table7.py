"""Table 7 — effect of the initial search (NNinit, Section 5.3.1).

Reported per dataset and |S_q|:

* **weight sum** — the radius of the first modified-Dijkstra search
  (the paper's search-space proxy), with the initial search;
* **existing weight sum** — the same radius *without* the initial
  search, which explores to the graph's eccentricity and is therefore
  constant "regardless of |S_q|";
* **NNinit response time** (milliseconds) and **# of routes** NNinit
  seeds;
* **ratio** — length of the max-semantic seed over the semantic-0 seed.
"""

from __future__ import annotations

from repro.core.options import BSSROptions
from repro.experiments.harness import (
    ExperimentConfig,
    Report,
    dataset_by_name,
    run_cell,
    workload_for,
)
from repro.experiments.tables import format_table


def run(
    config: ExperimentConfig | None = None,
    *,
    datasets: tuple[str, ...] = ("tokyo", "nyc", "cal"),
) -> Report:
    config = config or ExperimentConfig.from_env()
    rows = []
    no_init = BSSROptions().but(initial_search=False)
    for dataset_name in datasets:
        dataset = dataset_by_name(dataset_name, config.scale)
        for size in config.sequence_sizes():
            workload = workload_for(dataset, size, config)
            with_init = run_cell(
                dataset, workload, "bssr", time_budget=config.time_budget
            )
            without_init = run_cell(
                dataset,
                workload,
                "bssr",
                time_budget=config.time_budget,
                options=no_init,
            )
            mean = with_init.mean
            rows.append(
                [
                    dataset.name,
                    size,
                    mean.first_search_radius,
                    (
                        without_init.mean.first_search_radius
                        if without_init.queries_run
                        else None
                    ),
                    mean.init_time * 1000.0,
                    mean.init_routes,
                    mean.init_length_ratio,
                ]
            )
    table = format_table(
        [
            "dataset",
            "|Sq|",
            "weight sum",
            "w/o init (existing)",
            "NNinit [ms]",
            "# routes",
            "ratio",
        ],
        rows,
        title="first-search radius with/without NNinit; NNinit cost and seeds",
    )
    return Report(
        experiment="table7",
        title="Table 7 — effect of the initial search",
        table=table,
        data={"rows": rows},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
