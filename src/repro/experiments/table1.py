"""Table 1 — the New York City motivating example.

Query: Cupcake Shop → Art Museum → Jazz Club.  The existing approach
returns only the perfect-match route; the SkySR query additionally
returns shorter routes that satisfy the request semantically (Dessert
Shop / Museum / Music Venue generalizations).
"""

from __future__ import annotations

from repro.datasets.presets import nyc_like
from repro.experiments.harness import ExperimentConfig, Report
from repro.experiments.scenarios import (
    ensure_category_pois,
    scenario_engine,
    scenario_start,
)
from repro.experiments.tables import format_table

QUERY = ("Cupcake Shop", "Art Museum", "Jazz Club")


def run(config: ExperimentConfig | None = None) -> Report:
    config = config or ExperimentConfig.from_env()
    dataset = nyc_like(max(config.scale, 0.25), seed=1007)
    ensure_category_pois(dataset, list(QUERY), seed=config.seed)
    engine = scenario_engine(dataset)
    start = scenario_start(dataset, seed=config.seed)
    result = engine.query(start, list(QUERY))
    rows = []
    for route in result.routes:
        rows.append(
            [
                route.length,
                route.semantic,
                " -> ".join(result.poi_category_names(route)),
            ]
        )
    table = format_table(
        ["distance", "semantic", "sequenced route"],
        rows,
        title=f"query: {' -> '.join(QUERY)} from vertex {start} "
        "(existing approaches return only the first perfect-match row)",
    )
    return Report(
        experiment="table1",
        title="Table 1 — NYC example routes",
        table=table,
        data={"rows": rows, "start": start},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
