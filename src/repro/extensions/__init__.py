"""Section 6 variations: predicates, destination, unordered, multi-category."""

from repro.extensions.destination import (
    destination_distances,
    final_leg,
    split_length,
)
from repro.extensions.multicategory import MultiCategoryRequirement, add_category
from repro.extensions.predicates import AllOf, AnyOf, Excluding
from repro.extensions.unordered import (
    brute_force_unordered,
    run_unordered_skysr,
)

__all__ = [
    "AnyOf",
    "AllOf",
    "Excluding",
    "destination_distances",
    "final_leg",
    "split_length",
    "run_unordered_skysr",
    "brute_force_unordered",
    "MultiCategoryRequirement",
    "add_category",
]
