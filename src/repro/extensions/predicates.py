"""Complex category requirements (Section 6): conjunction, disjunction,
negation.

The paper notes that detailed requirements — "'American restaurant' OR
'Mexican restaurant' but NOT 'Taco Place'" — compile away into ordinary
per-position candidate sets, leaving the algorithm untouched.  That is
literally how this module works: each predicate implements the
:class:`~repro.core.spec.Requirement` protocol and compiles to a plain
:class:`~repro.core.spec.PositionSpec`, so BSSR, the oracle, and every
extension accept predicates anywhere a category is accepted.

Semantics:

* :class:`AnyOf` — candidates of any branch; similarity is the best
  branch similarity (a PoI satisfying one alternative perfectly is a
  perfect match).
* :class:`AllOf` — candidates matching *every* branch (sensible for
  multi-category PoIs, e.g. "Cafe" AND "Bakery"); similarity is the
  worst branch similarity.
* :class:`Excluding` — a base requirement minus PoIs associated with
  any excluded category (closure semantics: excluding "Bar" also
  excludes "Beer Garden").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.spec import PositionSpec, Requirement, as_requirement
from repro.errors import QueryError
from repro.graph.poi import PoIIndex
from repro.semantics.category import CategoryForest
from repro.semantics.similarity import SimilarityMeasure


def _recompute_best_np(sim_map: dict[int, float]) -> float | None:
    best: float | None = None
    for sim in sim_map.values():
        if sim < 1.0 and (best is None or sim > best):
            best = sim
    return best


@dataclass(frozen=True)
class AnyOf:
    """Disjunction of requirements (categories or nested predicates)."""

    alternatives: tuple

    def __init__(self, *alternatives) -> None:
        if not alternatives:
            raise QueryError("AnyOf needs at least one alternative")
        object.__setattr__(self, "alternatives", tuple(alternatives))

    def compile(
        self, index: PoIIndex, similarity: SimilarityMeasure, position: int
    ) -> PositionSpec:
        forest = index.forest
        sim_map: dict[int, float] = {}
        trees: set[int] = set()
        for item in self.alternatives:
            spec = as_requirement(item, forest).compile(index, similarity, position)
            trees |= spec.tree_ids
            for vid, sim in spec.sim_map.items():
                if sim > sim_map.get(vid, 0.0):
                    sim_map[vid] = sim
        perfect = frozenset(v for v, s in sim_map.items() if s >= 1.0)
        return PositionSpec(
            index=position,
            label=self.describe(forest),
            sim_map=sim_map,
            perfect=perfect,
            tree_ids=frozenset(trees),
            best_nonperfect=_recompute_best_np(sim_map),
        )

    def describe(self, forest: CategoryForest) -> str:
        parts = [
            as_requirement(item, forest).describe(forest)
            for item in self.alternatives
        ]
        return "(" + " OR ".join(parts) + ")"


@dataclass(frozen=True)
class AllOf:
    """Conjunction of requirements — meaningful for multi-category PoIs."""

    requirements: tuple

    def __init__(self, *requirements) -> None:
        if not requirements:
            raise QueryError("AllOf needs at least one requirement")
        object.__setattr__(self, "requirements", tuple(requirements))

    def compile(
        self, index: PoIIndex, similarity: SimilarityMeasure, position: int
    ) -> PositionSpec:
        forest = index.forest
        specs = [
            as_requirement(item, forest).compile(index, similarity, position)
            for item in self.requirements
        ]
        sim_map: dict[int, float] = {}
        shared = set(specs[0].sim_map)
        for spec in specs[1:]:
            shared &= set(spec.sim_map)
        for vid in shared:
            sim_map[vid] = min(spec.sim_map[vid] for spec in specs)
        perfect = frozenset(v for v, s in sim_map.items() if s >= 1.0)
        trees: set[int] = set()
        for spec in specs:
            trees |= spec.tree_ids
        return PositionSpec(
            index=position,
            label=self.describe(forest),
            sim_map=sim_map,
            perfect=perfect,
            tree_ids=frozenset(trees),
            best_nonperfect=_recompute_best_np(sim_map),
        )

    def describe(self, forest: CategoryForest) -> str:
        parts = [
            as_requirement(item, forest).describe(forest)
            for item in self.requirements
        ]
        return "(" + " AND ".join(parts) + ")"


@dataclass(frozen=True)
class Excluding:
    """A base requirement with negated categories (closure semantics)."""

    base: object
    excluded: tuple

    def __init__(self, base, *excluded) -> None:
        if not excluded:
            raise QueryError("Excluding needs at least one excluded category")
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "excluded", tuple(excluded))

    def compile(
        self, index: PoIIndex, similarity: SimilarityMeasure, position: int
    ) -> PositionSpec:
        forest = index.forest
        spec = as_requirement(self.base, forest).compile(
            index, similarity, position
        )
        banned_ids = [forest.resolve(c) for c in self.excluded]
        sim_map = {
            vid: sim
            for vid, sim in spec.sim_map.items()
            if not any(index.matches_closure(b, vid) for b in banned_ids)
        }
        perfect = frozenset(v for v in spec.perfect if v in sim_map)
        return PositionSpec(
            index=position,
            label=self.describe(forest),
            sim_map=sim_map,
            perfect=perfect,
            tree_ids=spec.tree_ids,
            best_nonperfect=_recompute_best_np(sim_map),
        )

    def describe(self, forest: CategoryForest) -> str:
        base = as_requirement(self.base, forest).describe(forest)
        banned = ", ".join(
            forest.name_of(forest.resolve(c)) for c in self.excluded
        )
        return f"({base} NOT {banned})"


_ = Requirement  # the protocol these predicates implement (typing aid)

__all__ = ["AnyOf", "AllOf", "Excluding"]
