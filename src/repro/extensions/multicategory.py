"""PoIs with multiple categories (Section 6).

The road network natively stores a category *tuple* per PoI, and the
standard :class:`~repro.core.spec.CategoryRequirement` already takes
the *highest* similarity over a PoI's categories, as the paper's
primary rule prescribes.  This module supplies the alternative rule the
paper mentions ("either the highest or the average value") and small
helpers for attaching extra categories to existing PoIs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.spec import PositionSpec
from repro.graph.poi import PoIIndex
from repro.graph.road_network import RoadNetwork
from repro.semantics.category import CategoryForest
from repro.semantics.similarity import SimilarityMeasure


def add_category(network: RoadNetwork, vid: int, category: int) -> None:
    """Attach an additional category to an existing PoI.

    Rebuild any :class:`~repro.graph.poi.PoIIndex` afterwards — indexes
    are immutable snapshots.
    """
    current = network.poi_categories(vid)
    network.set_poi(vid, current + (category,))


@dataclass(frozen=True)
class MultiCategoryRequirement:
    """A category requirement with a selectable multi-category rule.

    ``mode="max"`` reproduces the default behaviour; ``mode="mean"``
    averages the similarities of the PoI's categories *within the query
    tree* (categories from unrelated trees neither help nor hurt).
    Mean-mode perfect matches require every same-tree category to be
    perfect.
    """

    category: int
    mode: str = "max"

    def compile(
        self, index: PoIIndex, similarity: SimilarityMeasure, position: int
    ) -> PositionSpec:
        if self.mode not in ("max", "mean"):
            raise ValueError(f"unknown multi-category mode: {self.mode!r}")
        forest = index.forest
        network = index.network
        cid = self.category
        tree = forest.tree_id(cid)
        sim_map: dict[int, float] = {}
        perfect: set[int] = set()
        best_np: float | None = None
        for vid in index.pois_in_tree(cid):
            sims = [
                similarity.similarity(forest, cid, poi_cid)
                for poi_cid in network.poi_categories(vid)
                if forest.tree_id(poi_cid) == tree
            ]
            if not sims:
                continue
            value = max(sims) if self.mode == "max" else sum(sims) / len(sims)
            if value <= 0.0:
                continue
            sim_map[vid] = value
            if value >= 1.0:
                perfect.add(vid)
            elif best_np is None or value > best_np:
                best_np = value
        return PositionSpec(
            index=position,
            label=self.describe(forest),
            sim_map=sim_map,
            perfect=frozenset(perfect),
            tree_ids=frozenset({tree}),
            best_nonperfect=best_np,
        )

    def describe(self, forest: CategoryForest) -> str:
        return f"{forest.name_of(self.category)}[{self.mode}]"
