"""Preprocessing for repeated SkySR queries (the paper's future work).

Section 9: "because we have not used any preprocessing techniques such
as indexing, we plan to propose a suitable preprocessing method for the
SkySR query."  This module implements the natural first step: a
**tree-pair minimum-distance index**.

Algorithm 4 spends one multi-source multi-destination Dijkstra per
consecutive query position to obtain the semantic-match minimum
distances ``l_s[i]``.  Those distances are minima between *tree*
candidate sets intersected with the ``l̄(ϕ)`` ball; dropping the ball
restriction yields a weaker but still valid lower bound that depends
only on the (tree, tree) pair — a quantity that can be computed once
per dataset and reused by every query.

:class:`TreePairDistanceIndex` precomputes exactly that.  With ``T``
populated trees the build runs ``T`` multi-source Dijkstras (not
``T²``: one expansion from each tree's PoI set against all other trees'
PoI sets simultaneously), after which any query obtains its ``l_s``
suffix bounds in O(|S_q|) dictionary lookups.

Trade-off: the indexed bounds are never tighter than Algorithm 4's
(no ball restriction), so BSSR prunes somewhat less; in exchange the
per-query bound computation cost disappears.  Both code paths are
exact; the test suite checks the index lower-bounds the online legs
and that BSSR results are unchanged.
"""

from __future__ import annotations

import heapq
import math
from time import perf_counter

from repro.core.bounds import LowerBounds, _remaining_best_np_from
from repro.core.spec import CompiledQuery
from repro.graph.poi import PoIIndex
from repro.graph.road_network import RoadNetwork


class TreePairDistanceIndex:
    """Minimum network distance between the PoI sets of tree pairs."""

    def __init__(self, network: RoadNetwork, index: PoIIndex) -> None:
        self._network = network
        self._forest = index.forest
        self.pairs: dict[tuple[int, int], float] = {}
        started = perf_counter()
        trees = index.trees_present()
        membership: dict[int, list[int]] = {}  # vid -> tree ids hosting it
        for tree in trees:
            for vid in index.pois_in_tree(tree):
                membership.setdefault(vid, []).append(tree)
        for tree in trees:
            self._expand_from(tree, index.pois_in_tree(tree), membership)
        #: seconds spent building (for the ablation report)
        self.build_time = perf_counter() - started

    def _expand_from(
        self,
        tree: int,
        sources: list[int],
        membership: dict[int, list[int]],
    ) -> None:
        """One multi-source Dijkstra from a tree's PoIs toward all trees.

        The first settled PoI of any other tree fixes that pair's
        minimum (Lemma 5.9 applies per target set); the search stops
        once every reachable tree has been seen.
        """
        if not sources:
            return
        remaining: set[int] = set()
        for trees in membership.values():
            remaining.update(trees)
        remaining.discard(tree)
        dist: dict[int, float] = {}
        heap: list[tuple[float, int]] = []
        for vid in sources:
            dist[vid] = 0.0
            heapq.heappush(heap, (0.0, vid))
        settled: set[int] = set()
        while heap and remaining:
            d, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            for other in membership.get(u, ()):
                if other in remaining:
                    remaining.discard(other)
                    self.pairs[self._key(tree, other)] = min(
                        d, self.pairs.get(self._key(tree, other), math.inf)
                    )
            for v, w in self._network.neighbors(u):
                nd = d + w
                if nd < dist.get(v, math.inf):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))

    @staticmethod
    def _key(a: int, b: int) -> tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    def min_distance(self, tree_a: int, tree_b: int) -> float:
        """Lower bound on the distance between PoIs of the two trees."""
        if tree_a == tree_b:
            return 0.0
        return self.pairs.get(self._key(tree_a, tree_b), math.inf)

    # ------------------------------------------------------------------

    def bounds_for(self, query: CompiledQuery) -> LowerBounds:
        """Algorithm-4-shaped bounds from the index (no per-query work).

        Positions spanning several trees (OR-predicates) take the
        weakest pair — still a valid lower bound.  Perfect-match bounds
        (Lemma 5.8) need exact-category targets, which a tree-level
        index cannot provide, so ``suffix_lp`` falls back to the
        semantic legs.
        """
        n = query.size
        legs: list[float] = []
        for j in range(n - 1):
            left = query.specs[j].tree_ids
            right = query.specs[j + 1].tree_ids
            legs.append(
                min(
                    (
                        self.min_distance(a, b)
                        for a in left
                        for b in right
                    ),
                    default=0.0,
                )
            )
        bounds = LowerBounds(
            suffix_ls=[0.0] * (n + 1),
            suffix_lp=[0.0] * (n + 1),
            remaining_best_np=_remaining_best_np_from(
                [spec.best_nonperfect for spec in query.specs]
            ),
        )
        for k in range(n - 1, 0, -1):
            bounds.suffix_ls[k] = bounds.suffix_ls[k + 1] + legs[k - 1]
        bounds.suffix_ls[0] = bounds.suffix_ls[1]
        bounds.suffix_lp = list(bounds.suffix_ls)
        bounds.legs_ls = legs
        bounds.legs_lp = list(legs)
        return bounds
