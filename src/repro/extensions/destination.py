"""SkySR with a destination (Section 6).

"The simple way to calculate a SkySR with a destination is to add the
distance from the last visited PoI vertex to the destination to the
length score after finding the sequenced route."  The core engine
implements exactly that, plus the efficiency aid the paper sketches
(traversing from both ends): a reverse Dijkstra from the destination is
computed once, and the minimum destination leg over last-position
candidates joins the length lower bound, so partial routes are pruned
against *total* lengths.

This module adds the user-facing conveniences: round trips (destination
= start) and destination-leg inspection for result presentation.
"""

from __future__ import annotations

import math

from repro.core.routes import SkylineRoute
from repro.graph.dijkstra import dijkstra
from repro.graph.road_network import RoadNetwork


def destination_distances(
    network: RoadNetwork, destination: int
) -> dict[int, float]:
    """Distances from every vertex *to* the destination.

    On directed networks this is a reverse-edge Dijkstra; on undirected
    networks it equals the forward search.
    """
    result = dijkstra(network, destination, reverse=True)
    assert isinstance(result, dict)
    return result


def final_leg(
    network: RoadNetwork, route: SkylineRoute, destination: int
) -> float:
    """Length of the route's final leg to ``destination`` (inf if cut off)."""
    if not route.pois:
        return math.inf
    return destination_distances(network, destination).get(
        route.pois[-1], math.inf
    )


def split_length(
    network: RoadNetwork, route: SkylineRoute, destination: int
) -> tuple[float, float]:
    """Decompose a destination-query route length into
    (PoI-chain length, destination leg)."""
    leg = final_leg(network, route, destination)
    return route.length - leg, leg
