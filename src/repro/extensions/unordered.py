"""Skyline trip planning without category order (Section 6).

"For searching routes without category order, the proposed algorithm
searches PoI vertices that semantically match a category in a given set
of categories.  Then, if the algorithm finds PoI vertices, it deletes
the categories that are already included in the routes to find next PoI
vertices."

The search mirrors BSSR's branch-and-bound: partial routes carry the
set of positions still uncovered; one Dijkstra per expansion emits
every PoI matching any uncovered position; the skyline set's threshold
prunes.  Lemma 5.5's substitution filters are *not* applied — they are
justified for a fixed next category, not a category set — so this
variant trades some pruning power for unconditional exactness, which
the tests verify against a permutation brute force.

The semantic score of an unordered route aggregates the similarity of
each PoI under the position it covers; the product (Eq. 7), min, and
mean aggregators are all order-independent, so scores are well-defined.
"""

from __future__ import annotations

import heapq
import itertools
import math
from time import perf_counter

from repro.core.dominance import SkylineSet, skyline_filter
from repro.core.routes import PartialRoute, SkylineRoute
from repro.core.spec import CompiledQuery
from repro.core.stats import SearchStats
from repro.graph.dijkstra import dijkstra
from repro.graph.road_network import RoadNetwork
from repro.semantics.scoring import DEFAULT_AGGREGATOR, SemanticAggregator


def run_unordered_skysr(
    network: RoadNetwork,
    query: CompiledQuery,
    *,
    aggregator: SemanticAggregator | None = None,
    seed_with_greedy: bool = True,
) -> tuple[list[SkylineRoute], SearchStats]:
    """Skyline trip-planning query (unordered categories)."""
    aggregator = aggregator or DEFAULT_AGGREGATOR
    stats = SearchStats(algorithm="unordered-bssr")
    started = perf_counter()
    skyline = SkylineSet()
    n = query.size
    specs = query.specs
    if any(not spec.sim_map for spec in specs):
        stats.elapsed = perf_counter() - started
        return [], stats

    if seed_with_greedy:
        _greedy_seed(network, query, aggregator, skyline, stats)

    serial = itertools.count()
    # queue entries: (priority, #, partial route, frozenset of open positions)
    heap: list[tuple[tuple, int, PartialRoute, frozenset[int]]] = []

    def push(route: PartialRoute, open_positions: frozenset[int]) -> None:
        key = (-route.size, route.semantic, route.length)
        heapq.heappush(heap, (key, next(serial), route, open_positions))
        stats.routes_enqueued += 1
        stats.max_queue_size = max(stats.max_queue_size, len(heap))

    def expand(route: PartialRoute, open_positions: frozenset[int]) -> None:
        source = route.pois[-1] if route.pois else query.start
        dist: dict[int, float] = {source: 0.0}
        local_heap: list[tuple[float, int]] = [(0.0, source)]
        settled: set[int] = set()
        stats.mdijkstra_runs += 1
        while local_heap:
            d, u = heapq.heappop(local_heap)
            if u in settled:
                continue
            if route.length + d >= skyline.threshold(route.semantic):
                break  # Lemma 5.3: nothing farther can beat the threshold
            settled.add(u)
            stats.settled += 1
            if u not in route.pois:
                for position in open_positions:
                    sim = specs[position].sim_map.get(u)
                    if sim is None:
                        continue
                    state = aggregator.extend(route.sem_state, sim)
                    semantic = aggregator.score(state)
                    length = route.length + d
                    pois = route.pois + (u,)
                    sims = route.sims + (sim,)
                    if len(pois) == n:
                        skyline.update(
                            SkylineRoute(
                                pois=pois,
                                length=length,
                                semantic=semantic,
                                sims=sims,
                            )
                        )
                    elif length < skyline.threshold(semantic):
                        push(
                            PartialRoute(
                                pois=pois,
                                length=length,
                                semantic=semantic,
                                sem_state=state,
                                sims=sims,
                            ),
                            open_positions - {position},
                        )
                    else:
                        stats.routes_pruned_on_insert += 1
            for v, w in network.neighbors(u):
                stats.relaxed += 1
                nd = d + w
                if nd < dist.get(v, math.inf):
                    dist[v] = nd
                    heapq.heappush(local_heap, (nd, v))

    empty = PartialRoute(
        pois=(), length=0.0, semantic=0.0,
        sem_state=aggregator.initial(n), sims=(),
    )
    expand(empty, frozenset(range(n)))
    while heap:
        _, _, route, open_positions = heapq.heappop(heap)
        if route.length >= skyline.threshold(route.semantic):
            stats.routes_pruned_on_pop += 1
            continue
        stats.routes_expanded += 1
        expand(route, open_positions)

    stats.elapsed = perf_counter() - started
    stats.result_size = len(skyline)
    stats.skyline_updates = skyline.updates
    stats.skyline_rejects = skyline.rejects
    return skyline.routes(), stats


def _greedy_seed(
    network: RoadNetwork,
    query: CompiledQuery,
    aggregator: SemanticAggregator,
    skyline: SkylineSet,
    stats: SearchStats,
) -> None:
    """Greedy nearest-perfect chain over uncovered positions.

    The unordered analogue of NNinit: repeatedly walk to the closest
    perfect match of *any* uncovered position.  Produces one semantic-
    score-0 seed when every position has a reachable perfect match.
    """
    n = query.size
    specs = query.specs
    open_positions = set(range(n))
    source = query.start
    length = 0.0
    pois: list[int] = []
    sims: list[float] = []
    state = aggregator.initial(n)
    while open_positions:
        dist: dict[int, float] = {source: 0.0}
        heap: list[tuple[float, int]] = [(0.0, source)]
        settled: set[int] = set()
        found: tuple[float, int, int] | None = None
        while heap:
            d, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            stats.settled += 1
            if u not in pois:
                hit = next(
                    (
                        position
                        for position in open_positions
                        if u in specs[position].perfect
                    ),
                    None,
                )
                if hit is not None:
                    found = (d, u, hit)
                    break
            for v, w in network.neighbors(u):
                nd = d + w
                if nd < dist.get(v, math.inf):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        if found is None:
            return  # some position lacks a reachable perfect match
        d, u, position = found
        length += d
        pois.append(u)
        sims.append(1.0)
        state = aggregator.extend(state, 1.0)
        open_positions.remove(position)
        source = u
    skyline.update(
        SkylineRoute(
            pois=tuple(pois),
            length=length,
            semantic=aggregator.score(state),
            sims=tuple(sims),
        )
    )
    stats.init_routes += 1


def brute_force_unordered(
    network: RoadNetwork,
    query: CompiledQuery,
    *,
    aggregator: SemanticAggregator | None = None,
) -> list[SkylineRoute]:
    """Permutation brute force — the unordered oracle for tests."""
    aggregator = aggregator or DEFAULT_AGGREGATOR
    n = query.size
    specs = query.specs
    if any(not spec.sim_map for spec in specs):
        return []
    dist_cache: dict[int, dict[int, float]] = {}

    def distances_from(vid: int) -> dict[int, float]:
        found = dist_cache.get(vid)
        if found is None:
            found = dijkstra(network, vid)  # type: ignore[assignment]
            dist_cache[vid] = found  # type: ignore[assignment]
        return found  # type: ignore[return-value]

    routes: list[SkylineRoute] = []

    def recurse(order, position, last, length, state, pois, sims) -> None:
        if position == n:
            routes.append(
                SkylineRoute(
                    pois=pois,
                    length=length,
                    semantic=aggregator.score(state),
                    sims=sims,
                )
            )
            return
        spec = specs[order[position]]
        source_map = (
            distances_from(query.start) if last is None else distances_from(last)
        )
        for vid, sim in spec.sim_map.items():
            if vid in pois:
                continue
            d = source_map.get(vid, math.inf)
            if d == math.inf:
                continue
            recurse(
                order,
                position + 1,
                vid,
                length + d,
                aggregator.extend(state, sim),
                pois + (vid,),
                sims + (sim,),
            )

    for order in itertools.permutations(range(n)):
        recurse(order, 0, None, 0.0, aggregator.initial(n), (), ())
    return skyline_filter(routes)
