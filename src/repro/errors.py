"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch a single exception type at the service boundary while the
library internally raises precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Road-network structural errors (unknown vertices, bad weights)."""


class CategoryError(ReproError):
    """Category-forest errors (unknown names, duplicate names, cycles)."""


class QueryError(ReproError):
    """Malformed SkySR queries (empty sequence, unknown start vertex)."""


class AdmissionError(QueryError):
    """Per-request admission control rejected the query (e.g. a
    requested ``k`` or session budget above the service's configured
    cap).  A subclass of :class:`QueryError` so existing service-
    boundary handlers keep working."""


class DataError(ReproError):
    """Dataset generation or (de)serialization errors."""


class AlgorithmError(ReproError):
    """Internal algorithmic invariant violations (bugs, not user errors)."""
