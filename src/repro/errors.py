"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch a single exception type at the service boundary while the
library internally raises precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Road-network structural errors (unknown vertices, bad weights)."""


class CategoryError(ReproError):
    """Category-forest errors (unknown names, duplicate names, cycles)."""


class QueryError(ReproError):
    """Malformed SkySR queries (empty sequence, unknown start vertex)."""


class AdmissionError(QueryError):
    """Per-request admission control rejected the query (e.g. a
    requested ``k`` or session budget above the service's configured
    cap).  A subclass of :class:`QueryError` so existing service-
    boundary handlers keep working."""


class SessionNotFoundError(QueryError):
    """A session id does not resolve to live state — never created,
    already closed, or evicted from the store.  A subclass of
    :class:`QueryError` so service-boundary handlers keep working, and
    deliberately *not* a ``KeyError``: store lookups are part of the
    public request surface, not a dict access."""


class SessionExpiredError(SessionNotFoundError):
    """The session existed but its TTL has lapsed.  Distinguished from
    plain not-found so clients can tell "retry with a new session" from
    "you never had one"."""


class DataError(ReproError):
    """Dataset generation or (de)serialization errors."""


class SessionEncodeError(DataError):
    """A session cannot be serialized — e.g. it was built from
    non-serializable category requirements (predicate objects)."""


class SessionDecodeError(DataError):
    """A serialized session payload failed strict validation.

    Raised for corrupted or truncated JSON, missing or mistyped fields,
    and unknown schema versions (forward-compat rejection).  ``field``
    names the offending field (``"<json>"`` for undecodable text), so a
    service can log precisely what was wrong without string-parsing the
    message.
    """

    def __init__(self, message: str, *, field: str = "<payload>") -> None:
        super().__init__(message)
        self.field = field


class AlgorithmError(ReproError):
    """Internal algorithmic invariant violations (bugs, not user errors)."""
