"""Command-line interface: ``skysr`` (or ``python -m repro``).

Subcommands::

    skysr info                       library + dataset overview
    skysr query  --preset tokyo --categories "Beer Garden" "Sake Bar" ...
    skysr query  --topk 3 ...        ranked top-k alternatives
    skysr query  --topk 3 --page 2 ...      resumable pagination (page 2
                                            continues the checkpointed
                                            search for ranks 4..6)
    skysr query  --topk 5 --diverse 0.6 ... MMR diversity re-ranking
    skysr query  --page 1 --save-session trip.json ...   durable session
    skysr query  --resume-session trip.json --save-session trip.json
                                     next page, restored from the file —
                                     no --categories needed, and only
                                     the incremental search runs
    skysr experiment figure3         regenerate one paper table/figure
    skysr experiment all             regenerate everything
    skysr generate --preset nyc out.json      save a dataset to JSON
    skysr study  --preset tokyo      run the simulated user study
"""

from __future__ import annotations

import argparse
import json
import random
import sys

from repro import __version__
from repro.core.engine import ALGORITHMS, SkySREngine
from repro.core.options import BSSROptions
from repro.core.session import PlanningSession
from repro.datasets.presets import PRESETS, by_name
from repro.errors import ReproError
from repro.experiments.harness import ExperimentConfig
from repro.graph.io import save_dataset
from repro.service.user_study import simulate_user_study

#: envelope for session files: the serialized session plus the dataset
#: provenance (preset/scale/seed) needed to rebuild the same network
SESSION_FILE_FORMAT = "repro-skysr-session-file"
SESSION_FILE_VERSION = 1


def _positive_int(raw: str) -> int:
    value = int(raw)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_preset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset",
        default="mini",
        choices=sorted(PRESETS) + ["mini"],
        help="dataset preset (default: mini)",
    )
    parser.add_argument(
        "--dataset-scale",
        type=float,
        default=0.35,
        dest="dataset_scale",
        help="preset size multiplier",
    )
    parser.add_argument("--seed", type=int, default=None)


def _cmd_info(args: argparse.Namespace) -> int:
    print(f"repro {__version__} — SkySR query library (EDBT 2018 reproduction)")
    data = by_name(args.preset, args.dataset_scale, args.seed)
    for key, value in data.summary().items():
        print(f"  {key}: {value}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    if args.resume_session is not None:
        if args.categories:
            print(
                "error: --resume-session restores the original query; "
                "it cannot be combined with --categories",
                file=sys.stderr,
            )
            return 2
        return _resume_query(args)
    if not args.categories:
        print(
            "error: --categories is required (unless resuming a saved "
            "session with --resume-session)",
            file=sys.stderr,
        )
        return 2
    if args.save_session is not None and args.page is None:
        print(
            "error: --save-session needs a resumable session; add "
            "--page P (or use --resume-session)",
            file=sys.stderr,
        )
        return 2
    data = by_name(args.preset, args.dataset_scale, args.seed)
    engine = SkySREngine(data.network, data.forest)
    start = args.start
    if start is None:
        rng = random.Random(args.seed or 0)
        road = [
            v for v in data.network.vertices() if not data.network.is_poi(v)
        ]
        start = road[rng.randrange(len(road))]
    if args.page is not None:
        return _paged_query(engine, start, args)
    if args.diverse > 0.0 and args.topk <= 1:
        print(
            "error: --diverse re-ranks alternatives, so it needs "
            "--topk K (K > 1) or --page",
            file=sys.stderr,
        )
        return 2
    overrides: dict = {}
    if args.topk > 1:
        overrides["k"] = args.topk
        overrides["diversity_lambda"] = args.diverse
    if args.contraction:
        overrides["use_contraction"] = True
    options = BSSROptions().but(**overrides) if overrides else None
    result = engine.query(
        start,
        args.categories,
        algorithm=args.algorithm,
        destination=args.destination,
        ordered=not args.unordered,
        options=options,
    )
    if result.k > 1:
        flavor = (
            f"diverse (λ={args.diverse:g}) " if args.diverse > 0.0 else ""
        )
        print(
            f"# top-{result.k}: {len(result)} {flavor}ranked route(s) "
            f"from vertex {start} [{result.algorithm}, "
            f"{result.stats.elapsed * 1000:.1f} ms]"
        )
        print(result.to_ranked_table())
    else:
        print(
            f"# {len(result)} skyline route(s) from vertex {start} "
            f"[{result.algorithm}, {result.stats.elapsed * 1000:.1f} ms]"
        )
        print(result.to_table())
    if args.stats:
        _print_stats(engine, result.stats)
    return 0


def _print_stats(engine: SkySREngine, search_stats=None) -> None:
    """``--stats``: engine counters (cache/CH) plus per-query numbers."""
    payload: dict = {"engine": engine.perf_stats()}
    if search_stats is not None:
        payload["query"] = {
            "elapsed_ms": search_stats.elapsed * 1e3,
            "routes_expanded": search_stats.routes_expanded,
            "settled": search_stats.settled,
            "relaxed": search_stats.relaxed,
        }
        ch = search_stats.extra.get("ch")
        if ch is not None:
            payload["query"]["ch"] = ch
    print("# stats")
    print(json.dumps(payload, indent=2, sort_keys=True))


def _paged_query(engine: SkySREngine, start: int, args) -> int:
    """``--page P``: serve page P of size ``--topk`` via a resumable
    session — pages 1..P-1 run/resume the checkpointed search, so page
    P costs only the incremental work beyond page P-1."""
    if args.algorithm != "bssr" or args.unordered:
        print(
            "error: --page requires the (ordered) bssr algorithm",
            file=sys.stderr,
        )
        return 2
    session = engine.session(
        start,
        args.categories,
        destination=args.destination,
        page_size=max(args.topk, 1),
        diversity_lambda=args.diverse,
        options=(
            BSSROptions().but(use_contraction=True)
            if args.contraction
            else None
        ),
    )
    page = session.next_page()
    for _ in range(args.page - 1):
        if page.exhausted:
            break
        page = session.next_page()
    _print_page(session, page)
    if args.save_session is not None:
        _save_session_file(args.save_session, args, session)
    if args.stats:
        _print_stats(engine, page.stats)
    return 0


def _print_page(session: PlanningSession, page) -> None:
    result = session.to_result(page)
    total = session.total_stats()
    lam = session.diversity_lambda
    flavor = f", λ={lam:g}" if lam > 0.0 else ""
    print(
        f"# page {page.number} (ranks {page.first_rank}.."
        f"{page.first_rank + max(len(page) - 1, 0)}) of a resumable "
        f"top-k session [k={session.k}{flavor}, "
        f"{total.routes_expanded:.0f} expansions total, "
        f"{page.stats.routes_expanded} this page"
        f"{', exhausted' if page.exhausted else ''}]"
    )
    if len(page):
        print(result.to_page_table(first_rank=page.first_rank))
    else:
        print("(no further routes — the alternatives are exhausted)")


def _save_session_file(
    path: str, args: argparse.Namespace, session: PlanningSession
) -> None:
    """Write the session + dataset provenance so ``--resume-session``
    can rebuild the identical network in a later process."""
    envelope = {
        "format": SESSION_FILE_FORMAT,
        "version": SESSION_FILE_VERSION,
        "context": {
            "preset": args.preset,
            "dataset_scale": args.dataset_scale,
            "seed": args.seed,
        },
        "session": session.to_dict(),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(envelope, fh)
    print(f"# session saved to {path} (resume with --resume-session)")


def _resume_query(args: argparse.Namespace) -> int:
    """``--resume-session FILE``: restore the saved session (dataset
    rebuilt from the file's provenance) and serve the next page(s) —
    only the incremental search beyond the checkpoint runs."""
    try:
        with open(args.resume_session, encoding="utf-8") as fh:
            envelope = json.load(fh)
    except OSError as exc:
        print(f"error: cannot read session file: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(
            f"error: {args.resume_session} is not valid JSON: {exc}",
            file=sys.stderr,
        )
        return 2
    if (
        not isinstance(envelope, dict)
        or envelope.get("format") != SESSION_FILE_FORMAT
    ):
        print(
            f"error: {args.resume_session} is not a saved session file "
            f"(expected format {SESSION_FILE_FORMAT!r})",
            file=sys.stderr,
        )
        return 2
    if envelope.get("version") != SESSION_FILE_VERSION:
        print(
            f"error: session file version {envelope.get('version')!r} is "
            f"not supported (this build reads version "
            f"{SESSION_FILE_VERSION})",
            file=sys.stderr,
        )
        return 2
    context = envelope.get("context") or {}
    try:
        data = by_name(
            context.get("preset", "mini"),
            context.get("dataset_scale", 0.35),
            context.get("seed"),
        )
        engine = SkySREngine(data.network, data.forest)
        session = PlanningSession.from_dict(engine, envelope["session"])
    except (ReproError, KeyError) as exc:
        print(f"error: cannot restore session: {exc}", file=sys.stderr)
        return 2
    pages = args.page or 1
    page = None
    for _ in range(pages):
        if page is not None and page.exhausted:
            break
        page = session.next_page()
    _print_page(session, page)
    if args.stats:
        _print_stats(engine, page.stats)
    if args.save_session is not None:
        save_args = argparse.Namespace(
            preset=context.get("preset", "mini"),
            dataset_scale=context.get("dataset_scale", 0.35),
            seed=context.get("seed"),
        )
        _save_session_file(args.save_session, save_args, session)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.registry import run_all, run_experiment

    config = ExperimentConfig.from_env()
    if args.dataset_scale is not None:
        config.scale = args.dataset_scale
    if args.queries is not None:
        config.queries_per_cell = args.queries
    if args.budget is not None:
        config.time_budget = args.budget
    if args.name == "all":
        for report in run_all(config):
            print(report)
    else:
        print(run_experiment(args.name, config))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    data = by_name(args.preset, args.dataset_scale, args.seed)
    save_dataset(args.output, data.network, data.forest)
    print(f"wrote {args.output}: {data.summary()}")
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    data = by_name(args.preset, args.dataset_scale, args.seed)
    outcome = simulate_user_study(
        data, respondents=args.respondents, seed=args.seed or 2017
    )
    print(outcome.render_text())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="skysr",
        description="Skyline sequenced route queries with semantic hierarchy",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="library and dataset overview")
    _add_preset_args(p_info)
    p_info.set_defaults(func=_cmd_info)

    p_query = sub.add_parser("query", help="run one SkySR query")
    _add_preset_args(p_query)
    p_query.add_argument("--start", type=int, default=None)
    p_query.add_argument("--destination", type=int, default=None)
    p_query.add_argument(
        "--algorithm", default="bssr", choices=list(ALGORITHMS)
    )
    p_query.add_argument("--unordered", action="store_true")
    p_query.add_argument(
        "--topk",
        "-k",
        type=_positive_int,
        default=1,
        help="return up to K ranked alternatives (k-skyband; default 1 "
        "= the plain skyline query)",
    )
    p_query.add_argument(
        "--page",
        type=_positive_int,
        default=None,
        metavar="P",
        help="serve page P of size --topk through a resumable planning "
        "session (each page after the first resumes the checkpointed "
        "search for the next ranks instead of recomputing)",
    )
    p_query.add_argument(
        "--diverse",
        type=float,
        default=0.0,
        metavar="LAMBDA",
        help="MMR diversity re-ranking trade-off in [0, 1] (0 = pure "
        "rank order; penalizes PoI overlap and shared geometry with "
        "higher-ranked alternatives)",
    )
    p_query.add_argument(
        "--categories",
        nargs="+",
        default=None,
        metavar="CATEGORY",
        help="requested category sequence (required unless "
        "--resume-session restores one)",
    )
    p_query.add_argument(
        "--contraction",
        action="store_true",
        help="serve leg distances from the contraction hierarchy "
        "(BSSROptions.use_contraction; preprocessing is memoized per "
        "dataset and reported by --stats)",
    )
    p_query.add_argument(
        "--stats",
        action="store_true",
        help="after the routes, print engine performance counters "
        "(distance-cache traffic, CH preprocessing) and per-query "
        "search stats as JSON",
    )
    p_query.add_argument(
        "--save-session",
        default=None,
        metavar="FILE",
        dest="save_session",
        help="after serving the page, save the checkpointed session "
        "(with dataset provenance) to FILE for --resume-session",
    )
    p_query.add_argument(
        "--resume-session",
        default=None,
        metavar="FILE",
        dest="resume_session",
        help="restore a session saved with --save-session and serve "
        "its next page(s) — --page P serves P further pages; combine "
        "with --save-session to keep paging across invocations",
    )
    p_query.set_defaults(func=_cmd_query)

    p_exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    from repro.experiments.registry import experiment_names

    p_exp.add_argument("name", choices=experiment_names() + ["all"])
    p_exp.add_argument("--dataset-scale", type=float, default=None)
    p_exp.add_argument("--queries", type=int, default=None)
    p_exp.add_argument("--budget", type=float, default=None)
    p_exp.set_defaults(func=_cmd_experiment)

    p_gen = sub.add_parser("generate", help="save a preset dataset to JSON")
    _add_preset_args(p_gen)
    p_gen.add_argument("output")
    p_gen.set_defaults(func=_cmd_generate)

    p_study = sub.add_parser("study", help="run the simulated user study")
    _add_preset_args(p_study)
    p_study.add_argument("--respondents", type=int, default=25)
    p_study.set_defaults(func=_cmd_study)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
