"""In-process session store (a dict of JSON texts).

The default backend for single-process serving and tests: all the TTL,
LRU, and admission policy of :class:`~repro.store.base.SessionStore`
over a plain dict.  Sizes are accounted in serialized-JSON bytes, so a
memory budget means what it says even though the payloads never leave
the process.
"""

from __future__ import annotations

from typing import Iterable

from repro.store.base import SessionStore


class InMemorySessionStore(SessionStore):
    """Session payloads held in process memory."""

    def __init__(self, **kwargs) -> None:
        self._texts: dict[str, str] = {}
        super().__init__(**kwargs)

    def _read(self, session_id: str) -> str:
        return self._texts[session_id]

    def _write(self, session_id: str, text: str) -> None:
        self._texts[session_id] = text

    def _delete(self, session_id: str) -> None:
        self._texts.pop(session_id, None)

    def _scan(self) -> Iterable[tuple[str, int, float]]:
        return ()
