"""Durable session stores (see :mod:`repro.store.base`)."""

from repro.store.base import (
    SessionStore,
    StoreBudget,
    StoreStats,
    validate_session_id,
)
from repro.store.disk import DiskSessionStore
from repro.store.memory import InMemorySessionStore

__all__ = [
    "DiskSessionStore",
    "InMemorySessionStore",
    "SessionStore",
    "StoreBudget",
    "StoreStats",
    "validate_session_id",
]
