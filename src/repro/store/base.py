"""The session-store abstraction: durable payloads with a budget.

A :class:`SessionStore` keeps serialized planning sessions (JSON text
at rest) between requests, so a stateless service tier can restore and
resume them on every call.  The base class owns all *policy* —

* **TTL expiry** — entries older than ``ttl`` seconds are purged lazily
  on access and eagerly on :meth:`expire`; reading one raises the typed
  :class:`~repro.errors.SessionExpiredError` (a not-found subclass, so
  callers that only care about absence handle both the same way);
* **LRU eviction** — under a configurable entry/byte budget
  (``max_entries`` / ``max_bytes``) the least-recently-*used* entries
  are evicted to make room (reads refresh recency);
* **admission control** — with ``evict=False`` (or when a payload can
  never fit) the store refuses new writes with
  :class:`~repro.errors.AdmissionError` instead of silently dropping a
  live user's session: real backpressure, same exception the service's
  per-request caps already use.

Backends implement four text-level primitives (read/write/delete/scan);
:mod:`repro.store.memory` and :mod:`repro.store.disk` are the two
shipped ones.  The ``clock`` is injectable for deterministic TTL tests.
"""

from __future__ import annotations

import itertools
import json
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import (
    AdmissionError,
    QueryError,
    SessionDecodeError,
    SessionExpiredError,
    SessionNotFoundError,
)

#: characters allowed in a session id (doubles as a safe file stem)
_ID_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


def validate_session_id(session_id: str) -> str:
    """Reject ids that are empty, non-string, or unsafe as file stems."""
    if not isinstance(session_id, str) or not session_id:
        raise QueryError(f"session id must be a non-empty string, got {session_id!r}")
    if not set(session_id) <= _ID_CHARS or session_id.startswith("."):
        raise QueryError(
            f"session id {session_id!r} may only contain letters, digits, "
            "'.', '_', '-' and must not start with '.'"
        )
    return session_id


@dataclass
class _Entry:
    """Bookkeeping for one stored payload (the payload itself lives in
    the backend)."""

    size: int
    stored_at: float
    last_used: int  # recency serial, not wall clock (no tie ambiguity)


@dataclass
class StoreStats:
    """Operation counters; ``hit_rate`` feeds the benchmark artifact."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    expirations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "hit_rate": self.hit_rate,
        }


@dataclass
class StoreBudget:
    """Configured capacity of a store (``None`` = unbounded)."""

    max_entries: int | None = None
    max_bytes: int | None = None
    ttl: float | None = None
    evict: bool = True

    def __post_init__(self) -> None:
        if self.max_entries is not None and self.max_entries < 1:
            raise QueryError(
                f"max_entries must be >= 1, got {self.max_entries}"
            )
        if self.max_bytes is not None and self.max_bytes < 1:
            raise QueryError(f"max_bytes must be >= 1, got {self.max_bytes}")
        if self.ttl is not None and self.ttl <= 0:
            raise QueryError(f"ttl must be positive, got {self.ttl}")


class SessionStore(ABC):
    """Abstract durable store for serialized sessions.

    Payloads are dicts in, dicts out; at rest they are JSON text.
    Subclasses provide the text-level primitives; all TTL/LRU/budget
    policy lives here so every backend behaves identically.
    """

    def __init__(
        self,
        *,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        ttl: float | None = None,
        evict: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.budget = StoreBudget(
            max_entries=max_entries,
            max_bytes=max_bytes,
            ttl=ttl,
            evict=evict,
        )
        self.stats = StoreStats()
        self._clock = clock
        self._recency = itertools.count()
        self._entries: dict[str, _Entry] = {}
        for session_id, size, stored_at in self._scan():
            self._entries[session_id] = _Entry(
                size=size,
                stored_at=stored_at,
                last_used=next(self._recency),
            )

    # ------------------------------------------------------------------
    # backend primitives

    @abstractmethod
    def _read(self, session_id: str) -> str:
        """Raw payload text (the entry is known to exist)."""

    @abstractmethod
    def _write(self, session_id: str, text: str) -> None:
        """Persist payload text (create or replace)."""

    @abstractmethod
    def _delete(self, session_id: str) -> None:
        """Remove the payload (the entry is known to exist)."""

    @abstractmethod
    def _scan(self) -> Iterable[tuple[str, int, float]]:
        """Pre-existing entries at construction time:
        ``(session_id, size_bytes, stored_at)`` — lets a disk store
        adopt payloads written by an earlier process."""

    # ------------------------------------------------------------------
    # public API

    def put(self, session_id: str, payload: dict) -> None:
        """Store (or replace) a session payload under ``session_id``.

        Expired entries are purged first; then the write is admitted
        against the budget, evicting least-recently-used entries when
        the policy allows and refusing with
        :class:`~repro.errors.AdmissionError` when it does not.
        """
        validate_session_id(session_id)
        text = json.dumps(payload)
        self.expire()
        self._admit(session_id, len(text))
        self._write(session_id, text)
        self._entries[session_id] = _Entry(
            size=len(text),
            stored_at=self._clock(),
            last_used=next(self._recency),
        )
        self.stats.writes += 1

    def get(self, session_id: str) -> dict:
        """Fetch a payload; refreshes its LRU recency.

        Raises :class:`~repro.errors.SessionNotFoundError` for unknown
        or previously-deleted ids, :class:`~repro.errors.SessionExpiredError`
        for TTL-lapsed ones, and :class:`~repro.errors.SessionDecodeError`
        when the at-rest text is corrupted.
        """
        validate_session_id(session_id)
        entry = self._entries.get(session_id)
        if entry is None:
            self.stats.misses += 1
            raise SessionNotFoundError(
                f"unknown session {session_id!r} (never stored, closed, "
                "or evicted)"
            )
        if self._expired(entry):
            self._drop(session_id, counter="expirations")
            self.stats.misses += 1
            raise SessionExpiredError(
                f"session {session_id!r} expired after "
                f"{self.budget.ttl:g}s of inactivity"
            )
        text = self._read(session_id)
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SessionDecodeError(
                f"stored session {session_id!r} is corrupted: {exc}",
                field="<json>",
            ) from exc
        entry.last_used = next(self._recency)
        self.stats.hits += 1
        return payload

    def delete(self, session_id: str) -> bool:
        """Drop a payload; True if it existed."""
        validate_session_id(session_id)
        if session_id not in self._entries:
            return False
        self._drop(session_id)
        return True

    def expire(self) -> list[str]:
        """Purge every TTL-lapsed entry; returns the purged ids."""
        if self.budget.ttl is None:
            return []
        lapsed = [
            sid
            for sid, entry in self._entries.items()
            if self._expired(entry)
        ]
        for sid in lapsed:
            self._drop(sid, counter="expirations")
        return lapsed

    def touch(self, session_id: str) -> None:
        """Refresh TTL and recency without reading the payload."""
        validate_session_id(session_id)
        entry = self._entries.get(session_id)
        if entry is None or self._expired(entry):
            raise SessionNotFoundError(f"unknown session {session_id!r}")
        entry.stored_at = self._clock()
        entry.last_used = next(self._recency)

    def ids(self) -> list[str]:
        """Live (non-expired) session ids, least recently used first."""
        self.expire()
        return sorted(
            self._entries, key=lambda sid: self._entries[sid].last_used
        )

    @property
    def total_bytes(self) -> int:
        return sum(entry.size for entry in self._entries.values())

    def __contains__(self, session_id: str) -> bool:
        entry = self._entries.get(session_id)
        return entry is not None and not self._expired(entry)

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # policy internals

    def _expired(self, entry: _Entry) -> bool:
        ttl = self.budget.ttl
        return ttl is not None and self._clock() - entry.stored_at > ttl

    def _drop(self, session_id: str, *, counter: str | None = None) -> None:
        self._delete(session_id)
        del self._entries[session_id]
        if counter is not None:
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)

    def _admit(self, session_id: str, size: int) -> None:
        """Budget check for a pending write, evicting LRU if allowed."""
        budget = self.budget
        if budget.max_bytes is not None and size > budget.max_bytes:
            raise AdmissionError(
                f"session payload of {size} bytes can never fit the "
                f"store's max_bytes={budget.max_bytes} budget"
            )

        def over() -> bool:
            entries = len(self._entries) + (
                0 if session_id in self._entries else 1
            )
            used = self.total_bytes + size
            if session_id in self._entries:
                used -= self._entries[session_id].size
            if budget.max_entries is not None and entries > budget.max_entries:
                return True
            return budget.max_bytes is not None and used > budget.max_bytes

        while over():
            victims = [sid for sid in self._entries if sid != session_id]
            if not victims or not budget.evict:
                raise AdmissionError(
                    f"session store budget exhausted "
                    f"({len(self._entries)} entries, {self.total_bytes} "
                    f"bytes) and eviction is "
                    f"{'impossible' if not victims else 'disabled'}; "
                    f"retry later or close a session"
                )
            lru = min(victims, key=lambda sid: self._entries[sid].last_used)
            self._drop(lru, counter="evictions")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({len(self._entries)} sessions, "
            f"{self.total_bytes} bytes)"
        )
