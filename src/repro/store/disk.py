"""On-disk session store: one ``<id>.json`` file per session.

The durable backend: a session saved here survives the process and can
be restored by *another* one — the cross-process statelessness the
service tier builds on.  A fresh :class:`DiskSessionStore` pointed at
an existing directory adopts the payloads it finds (file size and
mtime seed the budget/TTL bookkeeping), so worker restarts do not lose
live sessions.

Writes are atomic (temp file + rename) so a crash mid-write never
leaves a truncated payload where a complete one used to be; a payload
corrupted by outside forces is reported as a typed
:class:`~repro.errors.SessionDecodeError` on read, never a bare JSON
error.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Iterable

from repro.errors import DataError
from repro.store.base import SessionStore


class DiskSessionStore(SessionStore):
    """Session payloads as JSON files under one directory."""

    def __init__(self, directory: str | Path, **kwargs) -> None:
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise DataError(
                f"cannot create session store directory "
                f"{self.directory}: {exc}"
            ) from exc
        # Adopted entries are stamped with file mtimes (wall clock), so
        # TTL math must run on the same clock — not time.monotonic.
        kwargs.setdefault("clock", time.time)
        super().__init__(**kwargs)

    def _path(self, session_id: str) -> Path:
        return self.directory / f"{session_id}.json"

    def _read(self, session_id: str) -> str:
        try:
            return self._path(session_id).read_text(encoding="utf-8")
        except OSError as exc:
            raise DataError(
                f"cannot read stored session {session_id!r}: {exc}"
            ) from exc

    def _write(self, session_id: str, text: str) -> None:
        path = self._path(session_id)
        tmp = path.with_suffix(".json.tmp")
        try:
            tmp.write_text(text, encoding="utf-8")
            os.replace(tmp, path)
        except OSError as exc:
            raise DataError(
                f"cannot persist session {session_id!r} to "
                f"{self.directory}: {exc}"
            ) from exc

    def _delete(self, session_id: str) -> None:
        try:
            self._path(session_id).unlink(missing_ok=True)
        except OSError as exc:
            raise DataError(
                f"cannot delete stored session {session_id!r}: {exc}"
            ) from exc

    def _scan(self) -> Iterable[tuple[str, int, float]]:
        for path in sorted(self.directory.glob("*.json")):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - raced deletion
                continue
            yield path.stem, stat.st_size, stat.st_mtime
