"""repro — Skyline Sequenced Route (SkySR) queries with semantic hierarchy.

A from-scratch reproduction of *"Sequenced Route Query with Semantic
Hierarchy"* (Sasaki, Ishikawa, Fujiwara, Onizuka — EDBT 2018): trip
planning queries that return **all skyline routes** trading route length
against the semantic similarity between visited PoI categories and the
requested category sequence.

Quickstart::

    from repro import SkySREngine, datasets

    data = datasets.mini_city()
    engine = SkySREngine(data.network, data.forest)
    result = engine.query(
        start=data.landmarks["vq"],
        categories=["Asian Restaurant", "Arts & Entertainment", "Gift Shop"],
    )
    print(result.to_table())

The primary algorithm is BSSR (bulk SkySR, Section 5 of the paper) with
all four optimization techniques; the naive baselines ("dij", "pne"),
the brute-force oracle, and every Section 6 extension (destinations,
unordered trip planning, complex predicates, multi-category PoIs,
directed networks) are included, as are dataset generators and the full
experiment harness reproducing every table and figure of the paper.
"""

from repro import (
    baselines,
    datasets,
    experiments,
    extensions,
    graph,
    semantics,
    service,
    store,
)
from repro.core import (
    ALGORITHMS,
    BSSROptions,
    Page,
    PlanningSession,
    SearchState,
    SearchStats,
    SkybandSet,
    SkylineRoute,
    SkylineSet,
    SkySREngine,
    SkySRResult,
    compile_query,
    diversify,
    dominates,
    rank_routes,
    route_similarity,
    run_bssr,
    skyband_filter,
    skyline_filter,
)
from repro.errors import (
    AdmissionError,
    AlgorithmError,
    CategoryError,
    DataError,
    GraphError,
    QueryError,
    ReproError,
    SessionDecodeError,
    SessionEncodeError,
    SessionExpiredError,
    SessionNotFoundError,
)
from repro.graph import PoIIndex, RoadNetwork
from repro.semantics import (
    CategoryForest,
    HierarchyWuPalmer,
    ProductAggregator,
    build_foursquare_forest,
)
from repro.store import (
    DiskSessionStore,
    InMemorySessionStore,
    SessionStore,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # engine
    "SkySREngine",
    "SkySRResult",
    "BSSROptions",
    "ALGORITHMS",
    "run_bssr",
    "compile_query",
    # sessions & diversity
    "PlanningSession",
    "Page",
    "SearchState",
    "diversify",
    "route_similarity",
    # durable session stores
    "SessionStore",
    "InMemorySessionStore",
    "DiskSessionStore",
    # values
    "SkylineRoute",
    "SkylineSet",
    "SkybandSet",
    "SearchStats",
    "dominates",
    "rank_routes",
    "skyline_filter",
    "skyband_filter",
    # substrate
    "RoadNetwork",
    "PoIIndex",
    "CategoryForest",
    "build_foursquare_forest",
    "HierarchyWuPalmer",
    "ProductAggregator",
    # errors
    "ReproError",
    "GraphError",
    "CategoryError",
    "QueryError",
    "AdmissionError",
    "DataError",
    "AlgorithmError",
    "SessionNotFoundError",
    "SessionExpiredError",
    "SessionEncodeError",
    "SessionDecodeError",
    # subpackages
    "graph",
    "semantics",
    "baselines",
    "datasets",
    "extensions",
    "experiments",
    "service",
    "store",
]
