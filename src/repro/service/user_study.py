"""Simulated user study (Section 8, Figure 9).

The paper ran a July-2017 field test in Santander: 25 respondents used
the prototype and answered three questions (Q1 like the service? Q2
recommend it? Q3 good for the city?).  A human panel cannot be
reproduced computationally; this module substitutes a *simulated*
respondent panel that exercises the identical service code path:

* each synthetic respondent carries a walking-budget and a semantic
  tolerance drawn from a seeded distribution;
* the respondent runs a real query through
  :class:`~repro.service.prototype.SkySRService`, inspects the skyline
  cards, and derives a satisfaction score — how much shorter the best
  acceptable skyline route is than the perfect-match route, and whether
  a choice existed at all;
* satisfaction maps to the three answer scales.

The output is a Figure-9-shaped answer-ratio table.  This is a model,
not evidence about humans; see EXPERIMENTS.md for the substitution
rationale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.paper_example import Dataset
from repro.datasets.workloads import generate_workload
from repro.service.prototype import SkySRService

QUESTIONS = {
    "Q1": ("I love it", "I like it", "I do not like it"),
    "Q2": ("Yes", "Maybe", "No"),
    "Q3": ("Yes", "Maybe", "No"),
}


@dataclass
class StudyOutcome:
    """Answer counts per question (index 0 = most positive)."""

    respondents: int
    answers: dict[str, list[int]]
    mean_satisfaction: float

    def ratios(self, question: str) -> list[float]:
        counts = self.answers[question]
        total = sum(counts) or 1
        return [c / total for c in counts]

    def render_text(self) -> str:
        lines = [f"simulated respondents: {self.respondents}"]
        for question, labels in QUESTIONS.items():
            ratios = self.ratios(question)
            rendered = ", ".join(
                f"{label}: {ratio * 100.0:.0f}%"
                for label, ratio in zip(labels, ratios)
            )
            lines.append(f"{question}  {rendered}")
        return "\n".join(lines)


def _satisfaction(service: SkySRService, query, rng: random.Random) -> float:
    """One respondent's satisfaction in [0, 1]."""
    response = service.plan(
        [service.dataset.forest.name_of(c) for c in query.categories],
        start=query.start,
    )
    cards = response.cards
    if not cards:
        return 0.0
    tolerance = rng.uniform(0.2, 0.9)  # semantic fit the user still accepts
    acceptable = [c for c in cards if c.semantic_fit >= tolerance]
    if not acceptable:
        acceptable = [max(cards, key=lambda c: c.semantic_fit)]
    perfect = next((c for c in cards if c.semantic_fit >= 1.0), None)
    best = min(acceptable, key=lambda c: c.distance)
    saving = 0.0
    if perfect is not None and perfect.distance > 0:
        saving = max(0.0, 1.0 - best.distance / perfect.distance)
    choice_bonus = min(len(cards), 4) / 4.0 * 0.3
    return min(1.0, 0.35 + 0.6 * saving + choice_bonus * rng.uniform(0.5, 1.0))


def simulate_user_study(
    dataset: Dataset,
    *,
    respondents: int = 25,
    sequence_size: int = 3,
    seed: int = 2017,
) -> StudyOutcome:
    """Run the simulated panel against a dataset's SkySR service."""
    rng = random.Random(seed)
    service = SkySRService(dataset)
    workload = generate_workload(
        dataset, sequence_size, respondents, seed=seed, leaf_only=False
    )
    answers = {q: [0, 0, 0] for q in QUESTIONS}
    satisfactions = []
    for query in workload:
        satisfaction = _satisfaction(service, query, rng)
        satisfactions.append(satisfaction)
        for question, (hi, mid) in {
            "Q1": (0.75, 0.45),
            "Q2": (0.7, 0.4),
            "Q3": (0.6, 0.35),
        }.items():
            noisy = satisfaction + rng.uniform(-0.08, 0.08)
            if noisy >= hi:
                answers[question][0] += 1
            elif noisy >= mid:
                answers[question][1] += 1
            else:
                answers[question][2] += 1
    mean = sum(satisfactions) / len(satisfactions) if satisfactions else 0.0
    return StudyOutcome(
        respondents=len(satisfactions),
        answers=answers,
        mean_satisfaction=mean,
    )
