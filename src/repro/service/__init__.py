"""Prototype service layer (Section 8): facade, GeoJSON, rendering, study."""

from repro.service.api import (
    API_VERSION,
    ApiResponse,
    PageResource,
    SessionApi,
    SessionResource,
)
from repro.service.geojson import (
    route_feature,
    route_waypoints,
    routes_to_geojson,
)
from repro.service.prototype import RouteCard, ServiceResponse, SkySRService
from repro.service.rendering import render_network, render_route_summary
from repro.service.user_study import (
    QUESTIONS,
    StudyOutcome,
    simulate_user_study,
)

__all__ = [
    "SkySRService",
    "ServiceResponse",
    "RouteCard",
    "SessionApi",
    "SessionResource",
    "PageResource",
    "ApiResponse",
    "API_VERSION",
    "routes_to_geojson",
    "route_feature",
    "route_waypoints",
    "render_network",
    "render_route_summary",
    "simulate_user_study",
    "StudyOutcome",
    "QUESTIONS",
]
