"""ASCII map rendering of networks and routes (Figure 7 stand-in).

Terminal-friendly: the network's bounding box is rasterized onto a
character grid; road vertices are dots, PoIs letters, the start ``S``,
the destination ``D``, and a highlighted route's PoIs digits in
visiting order.  Used by the examples to show where routes go without
any plotting dependency.
"""

from __future__ import annotations

from repro.core.routes import SkylineRoute
from repro.graph.road_network import RoadNetwork
from repro.graph.spatial import bounding_box


def render_network(
    network: RoadNetwork,
    *,
    width: int = 72,
    height: int = 24,
    start: int | None = None,
    destination: int | None = None,
    route: SkylineRoute | None = None,
    poi_char: str = "o",
) -> str:
    """Rasterize the network (and optionally one route) to ASCII art."""
    min_x, min_y, max_x, max_y = bounding_box(network)
    span_x = max(max_x - min_x, 1e-9)
    span_y = max(max_y - min_y, 1e-9)

    def cell(vid: int) -> tuple[int, int] | None:
        coords = network.coords(vid)
        if coords is None:
            return None
        col = int((coords[0] - min_x) / span_x * (width - 1))
        row = int((coords[1] - min_y) / span_y * (height - 1))
        return row, col

    grid = [[" "] * width for _ in range(height)]
    for vid in network.vertices():
        pos = cell(vid)
        if pos is None:
            continue
        row, col = pos
        grid[row][col] = poi_char if network.is_poi(vid) else "."
    if route is not None:
        for order, vid in enumerate(route.pois, start=1):
            pos = cell(vid)
            if pos is not None:
                row, col = pos
                grid[row][col] = str(order % 10)
    if start is not None:
        pos = cell(start)
        if pos is not None:
            grid[pos[0]][pos[1]] = "S"
    if destination is not None:
        pos = cell(destination)
        if pos is not None:
            grid[pos[0]][pos[1]] = "D"
    # y grows upward on maps: print top row last-to-first.
    return "\n".join("".join(row) for row in reversed(grid))


def render_route_summary(
    network: RoadNetwork, route: SkylineRoute, names: list[str] | None = None
) -> str:
    """One-line itinerary: ``S -> Museum -> Jazz Club (total …)``."""
    parts = ["S"]
    for i, vid in enumerate(route.pois):
        parts.append(names[i] if names else str(vid))
    return (
        " -> ".join(parts)
        + f"   (total {route.length:.3f}, semantic {route.semantic:.3f})"
    )
