"""Versioned, stateless REST-style session API.

:class:`~repro.service.prototype.SkySRService` keeps its paging
sessions in process memory — fine for one prototype worker, useless
behind a load balancer.  :class:`SessionApi` is the production shape:
every session lives *only* in a pluggable
:class:`~repro.store.SessionStore` as a versioned JSON payload
(:mod:`repro.core.serialize`), and **every call restores the session
from the store, operates, and writes it back**.  No request depends on
which worker answered the previous one: two ``SessionApi`` instances
sharing a store (or one per process over a
:class:`~repro.store.DiskSessionStore`) serve the same sessions
interchangeably — true HTTP statelessness, proven by the round-trip
test layer.

The surface is version-prefixed (``/v1/...``); payload and API
versions are negotiated independently, and both reject unknown
versions instead of guessing.  Endpoints (see :meth:`SessionApi.dispatch`
for the router form with HTTP-ish status codes):

======  ==============================  ===========================
POST    ``/v1/sessions``                :meth:`SessionApi.create_session`
GET     ``/v1/sessions``                :meth:`SessionApi.list_sessions`
GET     ``/v1/sessions/{id}``           :meth:`SessionApi.get_session`
POST    ``/v1/sessions/{id}/pages``     :meth:`SessionApi.next_page`
DELETE  ``/v1/sessions/{id}``           :meth:`SessionApi.close_session`
GET     ``/v1/stats``                   :meth:`SessionApi.stats`
======  ==============================  ===========================

Typed failures map onto the obvious statuses: malformed requests are
400 (:class:`~repro.errors.QueryError`), unknown/closed sessions 404
(:class:`~repro.errors.SessionNotFoundError`), TTL-lapsed ones 410
(:class:`~repro.errors.SessionExpiredError`), store/admission
backpressure 429 (:class:`~repro.errors.AdmissionError`), and a
corrupted or version-incompatible stored payload is a server-side 500
(:class:`~repro.errors.SessionDecodeError`).
"""

from __future__ import annotations

import uuid
from dataclasses import asdict, dataclass, field
from typing import Callable

from repro.core.session import PlanningSession
from repro.errors import (
    AdmissionError,
    QueryError,
    ReproError,
    SessionDecodeError,
    SessionExpiredError,
    SessionNotFoundError,
)
from repro.service.prototype import SkySRService
from repro.store import SessionStore, validate_session_id

#: the one API version this module speaks
API_VERSION = "v1"


# ----------------------------------------------------------------------
# typed resources


@dataclass
class SessionResource:
    """The client-visible state of one stored session."""

    session_id: str
    categories: list[str]
    start: int
    destination: int | None
    page_size: int
    diversity_lambda: float
    pages_served: int
    routes_served: int
    exhausted: bool

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass
class PageResource:
    """One served page: ranked route cards plus paging metadata."""

    session_id: str
    page: int
    first_rank: int
    routes: list[dict]
    resumed: bool
    exhausted: bool

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass
class ApiResponse:
    """What :meth:`SessionApi.dispatch` answers: a status + JSON body."""

    status: int
    body: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


#: typed error -> HTTP-ish status, most specific first
_ERROR_STATUS: tuple[tuple[type, int], ...] = (
    (AdmissionError, 429),
    (SessionExpiredError, 410),
    (SessionNotFoundError, 404),
    (SessionDecodeError, 500),
    (QueryError, 400),
    (ReproError, 500),
)


def _status_for(exc: ReproError) -> int:
    for kind, status in _ERROR_STATUS:
        if isinstance(exc, kind):
            return status
    return 500  # pragma: no cover - _ERROR_STATUS ends with ReproError


# ----------------------------------------------------------------------


class SessionApi:
    """Stateless session endpoints over a service facade and a store.

    Args:
        service: the engine/dataset facade (its ``max_k`` /
            ``max_session_routes`` admission caps apply here too).
        store: where sessions durably live between calls.  Pass the
            same store to several ``SessionApi`` instances (or a
            :class:`~repro.store.DiskSessionStore` directory to several
            processes) and they serve the same sessions.
        id_factory: session-id generator, injectable for deterministic
            tests (default: random hex).
    """

    def __init__(
        self,
        service: SkySRService,
        store: SessionStore,
        *,
        id_factory: Callable[[], str] | None = None,
    ) -> None:
        self.service = service
        self.store = store
        self._new_id = id_factory or (lambda: f"sess-{uuid.uuid4().hex[:12]}")

    # ------------------------------------------------------------------
    # endpoints

    def create_session(self, request: dict) -> SessionResource:
        """Open a session from a request body and persist it.

        The body mirrors :meth:`SkySRService.create_session` keywords —
        ``categories`` (required), ``start`` or ``near``,
        ``destination``, ``page_size``, ``diversity_lambda`` — plus an
        optional client-chosen ``session_id``.  No search runs yet; the
        serialized newborn session is written straight to the store.
        """
        if not isinstance(request, dict):
            raise QueryError(
                f"create-session body must be an object, got "
                f"{type(request).__name__}"
            )
        body = dict(request)
        session_id = body.pop("session_id", None)
        if session_id is None:
            session_id = self._new_id()
        validate_session_id(session_id)
        if session_id in self.store:
            raise QueryError(f"session {session_id!r} already exists")
        categories = body.pop("categories", None)
        if not categories:
            raise QueryError(
                "create-session body needs a non-empty 'categories' list"
            )
        allowed = {
            "start",
            "near",
            "destination",
            "page_size",
            "diversity_lambda",
        }
        unknown = set(body) - allowed
        if unknown:
            raise QueryError(
                f"unknown create-session field(s): {sorted(unknown)}; "
                f"allowed: {sorted(allowed | {'categories', 'session_id'})}"
            )
        near = body.pop("near", None)
        if near is not None:
            near = tuple(near)
        page_size = body.get("page_size")
        self.service._admit_k(page_size, what="page_size")
        start = self.service._resolve_start(body.pop("start", None), near)
        session = self.service.engine.session(
            start,
            list(categories),
            destination=body.pop("destination", None),
            page_size=page_size,
            diversity_lambda=body.pop("diversity_lambda", None),
        )
        self.store.put(session_id, session.to_dict())
        return self._resource(session_id, session)

    def get_session(self, session_id: str) -> SessionResource:
        """Describe a stored session (restores it; refreshes TTL/LRU)."""
        return self._resource(session_id, self._restore(session_id))

    def list_sessions(self) -> list[str]:
        """Live session ids, least recently used first."""
        return self.store.ids()

    def next_page(
        self, session_id: str, request: dict | None = None
    ) -> PageResource:
        """Serve the next page: restore from the store, advance the
        checkpointed search, write the widened session back.

        The optional body carries ``n``, the page-size override for
        this one call.  Admission caps are enforced exactly as in the
        in-process facade.
        """
        body = dict(request or {})
        n = body.pop("n", None)
        if body:
            raise QueryError(
                f"unknown next-page field(s): {sorted(body)}; allowed: ['n']"
            )
        if n is not None and (isinstance(n, bool) or not isinstance(n, int)):
            raise QueryError(f"page size n must be an integer, got {n!r}")
        session = self._restore(session_id)
        self.service._admit_k(n, what="page size n")
        self.service._admit_session_budget(session, n or session.page_size)
        page = session.next_page(n)
        self.store.put(session_id, session.to_dict())
        result = session.to_result(page)
        cards = self.service._capped(
            self.service._cards(result, first_rank=page.first_rank)
        )
        return PageResource(
            session_id=session_id,
            page=page.number,
            first_rank=page.first_rank,
            routes=[asdict(card) for card in cards],
            resumed=page.resumed,
            exhausted=page.exhausted,
        )

    def stats(self) -> dict:
        """Performance counters of the serving engine (``GET /v1/stats``).

        Exposes the cross-query distance-cache traffic (search and CH
        bucket hits/misses), contraction-hierarchy preprocessing stats
        when one has been built, and the store's session count — the
        numbers an operator watches to size caches and decide whether
        CH preprocessing pays off for the served workload.
        """
        stats = self.service.engine.perf_stats()
        stats["sessions_stored"] = len(self.store.ids())
        return stats

    def close_session(self, session_id: str) -> None:
        """Drop the stored session; later calls get a typed 404.

        Closing an unknown session raises
        :class:`~repro.errors.SessionNotFoundError` (deletes are not
        silently idempotent — a client holding a dead id should know).
        """
        validate_session_id(session_id)
        if not self.store.delete(session_id):
            raise SessionNotFoundError(
                f"unknown session {session_id!r} (never stored, closed, "
                "or evicted)"
            )

    # ------------------------------------------------------------------
    # router

    def dispatch(
        self, method: str, path: str, body: dict | None = None
    ) -> ApiResponse:
        """Route one request; typed errors become status codes.

        ``path`` must be version-prefixed (``/v1/...``); any other
        version is rejected up front with 400 so clients never talk to
        a server that would misread their payloads.
        """
        try:
            return self._route(method.upper(), path, body)
        except ReproError as exc:
            return ApiResponse(
                status=_status_for(exc),
                body={"error": type(exc).__name__, "message": str(exc)},
            )

    def _route(self, method: str, path: str, body: dict | None) -> ApiResponse:
        parts = [part for part in path.split("/") if part]
        if not parts or not (
            parts[0].startswith("v") and parts[0][1:].isdigit()
        ):
            raise QueryError(
                f"path {path!r} must start with an API version prefix "
                f"(supported: /{API_VERSION}/...)"
            )
        if parts[0] != API_VERSION:
            raise QueryError(
                f"unsupported API version {parts[0]!r}; this server "
                f"speaks {API_VERSION!r}"
            )
        parts = parts[1:]
        if parts == ["stats"] and method == "GET":
            return ApiResponse(status=200, body=self.stats())
        if parts == ["sessions"]:
            if method == "POST":
                resource = self.create_session(body or {})
                return ApiResponse(status=201, body=resource.as_dict())
            if method == "GET":
                return ApiResponse(
                    status=200, body={"sessions": self.list_sessions()}
                )
        elif len(parts) == 2 and parts[0] == "sessions":
            session_id = parts[1]
            if method == "GET":
                return ApiResponse(
                    status=200, body=self.get_session(session_id).as_dict()
                )
            if method == "DELETE":
                self.close_session(session_id)
                return ApiResponse(status=204)
        elif (
            len(parts) == 3
            and parts[0] == "sessions"
            and parts[2] == "pages"
            and method == "POST"
        ):
            return ApiResponse(
                status=200, body=self.next_page(parts[1], body).as_dict()
            )
        raise QueryError(f"no endpoint for {method} {path!r}")

    # ------------------------------------------------------------------

    def _restore(self, session_id: str) -> PlanningSession:
        """Store payload -> live session (the stateless core move)."""
        validate_session_id(session_id)
        payload = self.store.get(session_id)
        return PlanningSession.from_dict(self.service.engine, payload)

    def _resource(
        self, session_id: str, session: PlanningSession
    ) -> SessionResource:
        return SessionResource(
            session_id=session_id,
            categories=session.compiled.labels(),
            start=session.compiled.start,
            destination=session.compiled.destination,
            page_size=session.page_size,
            diversity_lambda=session.diversity_lambda,
            pages_served=len(session.pages),
            routes_served=len(session.served),
            exhausted=session.exhausted,
        )
