"""The prototype SkySR service (Section 8).

The paper's prototype (deployed for the Santander municipality on
OpenStreetMap + open PoI data) wraps the SkySR query behind a simple
request/response interface: the user supplies a start location and a
category wish-list; the service answers with the skyline routes, each
presented as a card with distance, a semantic-fit percentage, and the
PoI chain.  :class:`SkySRService` is that facade — examples and the
simulated user study drive it, and :mod:`repro.service.geojson` turns
its answers into map-ready payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import SkySREngine, SkySRResult
from repro.core.options import BSSROptions
from repro.core.routes import SkylineRoute
from repro.datasets.paper_example import Dataset
from repro.errors import QueryError
from repro.graph.spatial import nearest_vertex


@dataclass
class RouteCard:
    """One route as presented to an end user."""

    rank: int
    distance: float
    semantic_fit: float  # 1.0 = perfect category match
    stops: list[dict]
    pois: tuple[int, ...] = ()

    def headline(self) -> str:
        fit = f"{self.semantic_fit * 100.0:.0f}% match"
        stops = " -> ".join(stop["category"] for stop in self.stops)
        return f"#{self.rank}: {self.distance:.3f} ({fit})  {stops}"


@dataclass
class ServiceResponse:
    """A full service answer: cards plus the raw engine result."""

    query: list[str]
    start: int
    cards: list[RouteCard]
    result: SkySRResult = field(repr=False)

    def best(self) -> RouteCard | None:
        return self.cards[0] if self.cards else None

    def render_text(self) -> str:
        lines = [f"Routes for: {' -> '.join(self.query)}"]
        if not self.cards:
            lines.append("  (no feasible route)")
        lines.extend("  " + card.headline() for card in self.cards)
        return "\n".join(lines)


class SkySRService:
    """User-facing facade over one dataset (Section 8 prototype)."""

    def __init__(
        self,
        dataset: Dataset,
        *,
        options: BSSROptions | None = None,
        max_routes: int | None = None,
    ) -> None:
        self.dataset = dataset
        self.engine = SkySREngine(
            dataset.network, dataset.forest, options=options
        )
        self.max_routes = max_routes

    def plan(
        self,
        categories: list[str],
        *,
        start: int | None = None,
        near: tuple[float, float] | None = None,
        destination: int | None = None,
        ordered: bool = True,
    ) -> ServiceResponse:
        """Answer one trip request.

        ``start`` may be a vertex id or a map coordinate (``near``),
        which is snapped to the closest network vertex, as the paper's
        web prototype does with a map click.
        """
        if start is None:
            if near is None:
                raise QueryError("plan() needs a start vertex or a location")
            start = nearest_vertex(self.dataset.network, near)
        result = self.engine.query(
            start,
            list(categories),
            destination=destination,
            ordered=ordered,
        )
        cards = self._cards(result)
        if self.max_routes is not None:
            cards = cards[: self.max_routes]
        return ServiceResponse(
            query=[str(c) for c in categories],
            start=start,
            cards=cards,
            result=result,
        )

    def _cards(self, result: SkySRResult) -> list[RouteCard]:
        cards = []
        for rank, route in enumerate(result.routes, start=1):
            cards.append(
                RouteCard(
                    rank=rank,
                    distance=route.length,
                    semantic_fit=1.0 - route.semantic,
                    stops=self._stops(result, route),
                    pois=route.pois,
                )
            )
        return cards

    def _stops(self, result: SkySRResult, route: SkylineRoute) -> list[dict]:
        network = self.dataset.network
        names = result.poi_category_names(route)
        stops = []
        for vid, name, sim in zip(route.pois, names, route.sims):
            stop = {"poi": vid, "category": name, "similarity": sim}
            coords = network.coords(vid)
            if coords is not None:
                stop["x"], stop["y"] = coords
            stops.append(stop)
        return stops
