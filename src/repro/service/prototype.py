"""The prototype SkySR service (Section 8).

The paper's prototype (deployed for the Santander municipality on
OpenStreetMap + open PoI data) wraps the SkySR query behind a simple
request/response interface: the user supplies a start location and a
category wish-list; the service answers with the skyline routes, each
presented as a card with distance, a semantic-fit percentage, and the
PoI chain.  :class:`SkySRService` is that facade — examples and the
simulated user study drive it, and :mod:`repro.service.geojson` turns
its answers into map-ready payloads.

Production route services return *ranked alternatives*, not a single
answer set, and they page: :meth:`SkySRService.plan` accepts a
per-request ``k`` (top-k alternatives from the k-skyband),
:meth:`SkySRService.create_session` / :meth:`SkySRService.next_page`
expose resumable pagination (ranks ``k+1..2k`` continue the
checkpointed search instead of recomputing — see
:mod:`repro.core.session`), and :meth:`SkySRService.plan_batch` /
:meth:`SkySRService.batch_geojson` answer many requests in one call,
the latter as map-ready GeoJSON — the shape of the prototype's HTTP
batch endpoint.  Batch entries may create or resume sessions inline.

Under load a service must also say *no*: the ``max_k`` /
``max_session_routes`` knobs are per-request admission control —
requests above the caps are rejected with
:class:`~repro.errors.AdmissionError` before any search work is done.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.distcache import DistanceCache
from repro.core.engine import SkySREngine, SkySRResult
from repro.core.options import BSSROptions
from repro.core.routes import SkylineRoute
from repro.core.session import PlanningSession
from repro.datasets.paper_example import Dataset
from repro.errors import AdmissionError, QueryError, SessionNotFoundError
from repro.graph.spatial import nearest_vertex


@dataclass
class RouteCard:
    """One route as presented to an end user."""

    rank: int
    distance: float
    semantic_fit: float  # 1.0 = perfect category match
    stops: list[dict]
    pois: tuple[int, ...] = ()

    def headline(self) -> str:
        fit = f"{self.semantic_fit * 100.0:.0f}% match"
        stops = " -> ".join(stop["category"] for stop in self.stops)
        return f"#{self.rank}: {self.distance:.3f} ({fit})  {stops}"


@dataclass
class ServiceResponse:
    """A full service answer: cards plus the raw engine result.

    Session-backed answers also carry the session id and page number so
    a client can keep paging; ``exhausted`` tells it when to stop.
    """

    query: list[str]
    start: int
    cards: list[RouteCard]
    result: SkySRResult = field(repr=False)
    session_id: str | None = None
    page: int | None = None
    exhausted: bool | None = None

    def best(self) -> RouteCard | None:
        return self.cards[0] if self.cards else None

    def render_text(self) -> str:
        lines = [f"Routes for: {' -> '.join(self.query)}"]
        if self.session_id is not None:
            lines[0] += f"  (session {self.session_id}, page {self.page})"
        if not self.cards:
            lines.append("  (no feasible route)")
        lines.extend("  " + card.headline() for card in self.cards)
        return "\n".join(lines)


class SkySRService:
    """User-facing facade over one dataset (Section 8 prototype).

    Args:
        dataset: the served city.
        options: engine-wide BSSR options.
        max_routes: presentation cap on cards per response.
        max_k: admission cap — any request asking for more than this
            many alternatives at once (``k`` or a session
            ``page_size``) is rejected with
            :class:`~repro.errors.AdmissionError`.
        max_session_routes: admission cap on the *cumulative* routes a
            single session may enumerate across all its pages.
        distance_cache: cross-query Dijkstra cache shared by every
            request this service answers (see
            :mod:`repro.core.distcache`).  The default is a modestly
            budgeted cache — a long-lived service answering repeated
            queries over one city is exactly the workload it targets.
            Pass your own instance to tune budgets, or construct a
            bare :class:`~repro.core.engine.SkySREngine` for
            cache-free (stats-reproducible) experiments.
    """

    #: default cross-query cache budgets for a service instance
    DEFAULT_CACHE_ENTRIES = 512
    DEFAULT_CACHE_BYTES = 64 * 2**20

    def __init__(
        self,
        dataset: Dataset,
        *,
        options: BSSROptions | None = None,
        max_routes: int | None = None,
        max_k: int | None = None,
        max_session_routes: int | None = None,
        distance_cache: DistanceCache | None = None,
    ) -> None:
        self.dataset = dataset
        if distance_cache is None:
            distance_cache = DistanceCache(
                max_entries=self.DEFAULT_CACHE_ENTRIES,
                max_bytes=self.DEFAULT_CACHE_BYTES,
            )
        self.engine = SkySREngine(
            dataset.network,
            dataset.forest,
            options=options,
            distance_cache=distance_cache,
        )
        self.max_routes = max_routes
        self.max_k = max_k
        self.max_session_routes = max_session_routes
        self._sessions: dict[str, PlanningSession] = {}
        self._session_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # admission control

    def _admit_k(self, k: int | None, *, what: str = "k") -> None:
        if k is not None and k < 1:
            raise QueryError(f"{what} must be >= 1, got {k}")
        if self.max_k is not None and k is not None and k > self.max_k:
            raise AdmissionError(
                f"requested {what}={k} exceeds this service's cap of "
                f"{self.max_k} alternatives per request"
            )

    def _admit_session_budget(
        self, session: PlanningSession, n: int
    ) -> None:
        cap = self.max_session_routes
        if cap is not None and len(session.served) + n > cap:
            raise AdmissionError(
                f"session budget exhausted: serving {n} more routes "
                f"would exceed the cap of {cap} per session"
            )

    # ------------------------------------------------------------------
    # one-shot planning

    def plan(
        self,
        categories: list[str],
        *,
        start: int | None = None,
        near: tuple[float, float] | None = None,
        destination: int | None = None,
        ordered: bool = True,
        k: int | None = None,
        diversity_lambda: float | None = None,
    ) -> ServiceResponse:
        """Answer one trip request.

        ``start`` may be a vertex id or a map coordinate (``near``),
        which is snapped to the closest network vertex, as the paper's
        web prototype does with a map click.  ``k`` asks for up to
        ``k`` ranked alternatives (the top-k sequenced route query)
        instead of the plain skyline; ``diversity_lambda`` re-ranks
        them for diversity (see :mod:`repro.core.diversity`).
        """
        self._admit_k(k)
        start = self._resolve_start(start, near)
        options = None
        overrides = {}
        if k is not None:
            overrides["k"] = k
        if diversity_lambda is not None:
            overrides["diversity_lambda"] = diversity_lambda
        if overrides:
            options = (self.engine.options or BSSROptions()).but(**overrides)
        result = self.engine.query(
            start,
            list(categories),
            destination=destination,
            ordered=ordered,
            options=options,
        )
        return ServiceResponse(
            query=[str(c) for c in categories],
            start=start,
            cards=self._capped(self._cards(result)),
            result=result,
        )

    # ------------------------------------------------------------------
    # resumable sessions

    def create_session(
        self,
        categories: list[str],
        *,
        start: int | None = None,
        near: tuple[float, float] | None = None,
        destination: int | None = None,
        page_size: int | None = None,
        diversity_lambda: float | None = None,
    ) -> str:
        """Open a paging session; returns its id (no search runs yet).

        The first :meth:`next_page` call executes the initial search;
        every further call resumes the checkpointed state for the next
        ranks.  ``page_size`` is admission-checked against ``max_k``.
        """
        self._admit_k(page_size, what="page_size")
        start = self._resolve_start(start, near)
        session = self.engine.session(
            start,
            list(categories),
            destination=destination,
            page_size=page_size,
            diversity_lambda=diversity_lambda,
        )
        session_id = f"sess-{next(self._session_ids)}"
        self._sessions[session_id] = session
        return session_id

    def get_session(self, session_id: str) -> PlanningSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionNotFoundError(
                f"unknown session {session_id!r}"
            ) from None

    def next_page(
        self, session_id: str, n: int | None = None
    ) -> ServiceResponse:
        """Serve (and advance to) the next page of a session."""
        session = self.get_session(session_id)
        self._admit_k(n, what="page size n")
        self._admit_session_budget(session, n or session.page_size)
        page = session.next_page(n)
        result = session.to_result(page)
        return ServiceResponse(
            query=session.compiled.labels(),
            start=session.compiled.start,
            cards=self._capped(
                self._cards(result, first_rank=page.first_rank)
            ),
            result=result,
            session_id=session_id,
            page=page.number,
            exhausted=page.exhausted,
        )

    def close_session(self, session_id: str) -> None:
        """Drop a session's checkpointed state."""
        self._sessions.pop(session_id, None)

    # ------------------------------------------------------------------
    # batch endpoints

    def plan_batch(
        self,
        requests: list[dict],
        *,
        k: int | None = None,
    ) -> list[ServiceResponse]:
        """Answer many trip requests in one call (the batch endpoint).

        Each request is a dict of :meth:`plan` keyword arguments plus
        the mandatory ``categories``; a per-request ``k`` overrides the
        batch-wide one.  Two session forms ride along:

        * ``{"session": "sess-3"}`` (optional ``n``) — resume an open
          session and answer with its next page;
        * ``{"categories": [...], "page_size": 3, ...}`` — create a
          session and answer with its first page (the response carries
          the session id for follow-ups).
        """
        responses = []
        for request in requests:
            kwargs = dict(request)
            session_id = kwargs.pop("session", None)
            if session_id is not None:
                responses.append(
                    self.next_page(session_id, kwargs.pop("n", None))
                )
                continue
            page_size = kwargs.pop("page_size", None)
            categories = kwargs.pop("categories")
            if page_size is not None:
                allowed = {"start", "near", "destination", "diversity_lambda"}
                unknown = set(kwargs) - allowed
                if unknown:
                    raise QueryError(
                        "session batch entries (page_size) accept "
                        f"{sorted(allowed)}; got unsupported key(s) "
                        f"{sorted(unknown)} — one-shot options like 'k' "
                        "or 'ordered' do not apply to sessions"
                    )
                sid = self.create_session(
                    categories, page_size=page_size, **kwargs
                )
                responses.append(self.next_page(sid))
                continue
            kwargs.setdefault("k", k)
            responses.append(self.plan(categories, **kwargs))
        return responses

    def batch_geojson(
        self,
        requests: list[dict],
        *,
        k: int | None = None,
        full_geometry: bool = False,
    ) -> dict:
        """Batch answers as map-ready GeoJSON FeatureCollections.

        Returns one entry per request, each carrying the request echo
        and a FeatureCollection of the ranked alternatives (feature
        ``properties.rank`` is the presentation rank).  Session-backed
        entries echo the session id, page number, and global first
        rank so clients can keep paging.
        """
        from repro.service.geojson import routes_to_geojson

        responses = self.plan_batch(requests, k=k)
        batch = []
        for response in responses:
            result = response.result
            # For k > 1 ``routes`` is already the ranked truncation.
            routes = result.routes
            entry = {
                "query": response.query,
                "start": response.start,
                "k": result.k,
                "routes": routes_to_geojson(
                    self.dataset.network,
                    response.start,
                    routes,
                    full_geometry=full_geometry,
                ),
            }
            if response.session_id is not None:
                entry["session"] = response.session_id
                entry["page"] = response.page
                entry["exhausted"] = response.exhausted
                if response.cards:
                    entry["first_rank"] = response.cards[0].rank
            batch.append(entry)
        return {"type": "SkySRBatch", "responses": batch}

    # ------------------------------------------------------------------
    # observability

    def perf_stats(self) -> dict:
        """Service performance counters (the ``/v1/stats`` endpoint).

        Delegates to :meth:`~repro.core.engine.SkySREngine.perf_stats`
        (cross-query cache traffic, CH preprocessing) and adds the
        service-level session census.
        """
        stats = self.engine.perf_stats()
        stats["sessions_open"] = len(self._sessions)
        return stats

    # ------------------------------------------------------------------

    def _resolve_start(
        self, start: int | None, near: tuple[float, float] | None
    ) -> int:
        if start is None:
            if near is None:
                raise QueryError("plan() needs a start vertex or a location")
            start = nearest_vertex(self.dataset.network, near)
        return start

    def _capped(self, cards: list[RouteCard]) -> list[RouteCard]:
        if self.max_routes is not None:
            return cards[: self.max_routes]
        return cards

    def _cards(
        self, result: SkySRResult, *, first_rank: int = 1
    ) -> list[RouteCard]:
        cards = []
        for rank, route in enumerate(result.routes, start=first_rank):
            cards.append(
                RouteCard(
                    rank=rank,
                    distance=route.length,
                    semantic_fit=1.0 - route.semantic,
                    stops=self._stops(result, route),
                    pois=route.pois,
                )
            )
        return cards

    def _stops(self, result: SkySRResult, route: SkylineRoute) -> list[dict]:
        network = self.dataset.network
        names = result.poi_category_names(route)
        stops = []
        for vid, name, sim in zip(route.pois, names, route.sims):
            stop = {"poi": vid, "category": name, "similarity": sim}
            coords = network.coords(vid)
            if coords is not None:
                stop["x"], stop["y"] = coords
            stops.append(stop)
        return stops
