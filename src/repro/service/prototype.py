"""The prototype SkySR service (Section 8).

The paper's prototype (deployed for the Santander municipality on
OpenStreetMap + open PoI data) wraps the SkySR query behind a simple
request/response interface: the user supplies a start location and a
category wish-list; the service answers with the skyline routes, each
presented as a card with distance, a semantic-fit percentage, and the
PoI chain.  :class:`SkySRService` is that facade — examples and the
simulated user study drive it, and :mod:`repro.service.geojson` turns
its answers into map-ready payloads.

Production route services return *ranked alternatives*, not a single
answer set: :meth:`SkySRService.plan` accepts a per-request ``k``
(top-k alternatives from the k-skyband), and
:meth:`SkySRService.plan_batch` / :meth:`SkySRService.batch_geojson`
answer many requests in one call, the latter as map-ready GeoJSON —
the shape of the prototype's HTTP batch endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import SkySREngine, SkySRResult
from repro.core.options import BSSROptions
from repro.core.routes import SkylineRoute
from repro.datasets.paper_example import Dataset
from repro.errors import QueryError
from repro.graph.spatial import nearest_vertex


@dataclass
class RouteCard:
    """One route as presented to an end user."""

    rank: int
    distance: float
    semantic_fit: float  # 1.0 = perfect category match
    stops: list[dict]
    pois: tuple[int, ...] = ()

    def headline(self) -> str:
        fit = f"{self.semantic_fit * 100.0:.0f}% match"
        stops = " -> ".join(stop["category"] for stop in self.stops)
        return f"#{self.rank}: {self.distance:.3f} ({fit})  {stops}"


@dataclass
class ServiceResponse:
    """A full service answer: cards plus the raw engine result."""

    query: list[str]
    start: int
    cards: list[RouteCard]
    result: SkySRResult = field(repr=False)

    def best(self) -> RouteCard | None:
        return self.cards[0] if self.cards else None

    def render_text(self) -> str:
        lines = [f"Routes for: {' -> '.join(self.query)}"]
        if not self.cards:
            lines.append("  (no feasible route)")
        lines.extend("  " + card.headline() for card in self.cards)
        return "\n".join(lines)


class SkySRService:
    """User-facing facade over one dataset (Section 8 prototype)."""

    def __init__(
        self,
        dataset: Dataset,
        *,
        options: BSSROptions | None = None,
        max_routes: int | None = None,
    ) -> None:
        self.dataset = dataset
        self.engine = SkySREngine(
            dataset.network, dataset.forest, options=options
        )
        self.max_routes = max_routes

    def plan(
        self,
        categories: list[str],
        *,
        start: int | None = None,
        near: tuple[float, float] | None = None,
        destination: int | None = None,
        ordered: bool = True,
        k: int | None = None,
    ) -> ServiceResponse:
        """Answer one trip request.

        ``start`` may be a vertex id or a map coordinate (``near``),
        which is snapped to the closest network vertex, as the paper's
        web prototype does with a map click.  ``k`` asks for up to
        ``k`` ranked alternatives (the top-k sequenced route query)
        instead of the plain skyline.
        """
        if start is None:
            if near is None:
                raise QueryError("plan() needs a start vertex or a location")
            start = nearest_vertex(self.dataset.network, near)
        options = None
        if k is not None:
            options = (self.engine.options or BSSROptions()).but(k=k)
        result = self.engine.query(
            start,
            list(categories),
            destination=destination,
            ordered=ordered,
            options=options,
        )
        cards = self._cards(result)
        if self.max_routes is not None:
            cards = cards[: self.max_routes]
        return ServiceResponse(
            query=[str(c) for c in categories],
            start=start,
            cards=cards,
            result=result,
        )

    def plan_batch(
        self,
        requests: list[dict],
        *,
        k: int | None = None,
    ) -> list[ServiceResponse]:
        """Answer many trip requests in one call (the batch endpoint).

        Each request is a dict of :meth:`plan` keyword arguments plus
        the mandatory ``categories``; a per-request ``k`` overrides the
        batch-wide one.
        """
        responses = []
        for request in requests:
            kwargs = dict(request)
            categories = kwargs.pop("categories")
            kwargs.setdefault("k", k)
            responses.append(self.plan(categories, **kwargs))
        return responses

    def batch_geojson(
        self,
        requests: list[dict],
        *,
        k: int | None = None,
        full_geometry: bool = False,
    ) -> dict:
        """Batch answers as map-ready GeoJSON FeatureCollections.

        Returns one entry per request, each carrying the request echo
        and a FeatureCollection of the ranked alternatives (feature
        ``properties.rank`` is the presentation rank).
        """
        from repro.service.geojson import routes_to_geojson

        responses = self.plan_batch(requests, k=k)
        batch = []
        for response in responses:
            result = response.result
            # For k > 1 ``routes`` is already the ranked truncation.
            routes = result.routes
            batch.append(
                {
                    "query": response.query,
                    "start": response.start,
                    "k": result.k,
                    "routes": routes_to_geojson(
                        self.dataset.network,
                        response.start,
                        routes,
                        full_geometry=full_geometry,
                    ),
                }
            )
        return {"type": "SkySRBatch", "responses": batch}

    def _cards(self, result: SkySRResult) -> list[RouteCard]:
        cards = []
        for rank, route in enumerate(result.routes, start=1):
            cards.append(
                RouteCard(
                    rank=rank,
                    distance=route.length,
                    semantic_fit=1.0 - route.semantic,
                    stops=self._stops(result, route),
                    pois=route.pois,
                )
            )
        return cards

    def _stops(self, result: SkySRResult, route: SkylineRoute) -> list[dict]:
        network = self.dataset.network
        names = result.poi_category_names(route)
        stops = []
        for vid, name, sim in zip(route.pois, names, route.sims):
            stop = {"poi": vid, "category": name, "similarity": sim}
            coords = network.coords(vid)
            if coords is not None:
                stop["x"], stop["y"] = coords
            stops.append(stop)
        return stops
