"""GeoJSON export of skyline routes (map rendering, Figure 7/8 style)."""

from __future__ import annotations

import json

from repro.core.routes import SkylineRoute
from repro.graph.dijkstra import dijkstra
from repro.graph.road_network import RoadNetwork


def route_waypoints(
    network: RoadNetwork, start: int, route: SkylineRoute
) -> list[int]:
    """The full vertex path start → p_1 → … → p_n (network geometry)."""
    waypoints: list[int] = [start]
    current = start
    for target in route.pois:
        _, pred = dijkstra(network, current, with_predecessors=True)  # type: ignore[misc]
        if target not in pred and target != current:
            waypoints.append(target)  # disconnected guard: jump
            current = target
            continue
        leg = [target]
        while leg[-1] != current:
            leg.append(pred[leg[-1]])
        waypoints.extend(reversed(leg[:-1]))
        current = target
    return waypoints


def route_feature(
    network: RoadNetwork,
    start: int,
    route: SkylineRoute,
    *,
    rank: int = 1,
    full_geometry: bool = False,
) -> dict:
    """One route as a GeoJSON Feature (LineString + properties)."""
    vertex_chain = (
        route_waypoints(network, start, route)
        if full_geometry
        else [start, *route.pois]
    )
    coordinates = []
    for vid in vertex_chain:
        coords = network.coords(vid)
        if coords is not None:
            coordinates.append([coords[0], coords[1]])
    return {
        "type": "Feature",
        "geometry": {"type": "LineString", "coordinates": coordinates},
        "properties": {
            "rank": rank,
            "length": route.length,
            "semantic": route.semantic,
            "pois": list(route.pois),
        },
    }


def routes_to_geojson(
    network: RoadNetwork,
    start: int,
    routes: list[SkylineRoute],
    *,
    full_geometry: bool = False,
) -> dict:
    """A FeatureCollection with one feature per skyline route."""
    return {
        "type": "FeatureCollection",
        "features": [
            route_feature(
                network,
                start,
                route,
                rank=rank,
                full_geometry=full_geometry,
            )
            for rank, route in enumerate(routes, start=1)
        ],
    }


def dumps(payload: dict) -> str:
    return json.dumps(payload, indent=2)
