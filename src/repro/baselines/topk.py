"""Exhaustive top-k oracle — ground truth for the top-k cross-checks.

Enumerates every sequenced route (via
:func:`repro.baselines.brute_force.enumerate_sequenced_routes`),
reduces the collection to its k-skyband, and ranks it the way the
engine presents alternatives (dominance depth, then length, then
semantic score).  Exponential in the sequence size; usable only on the
small randomized instances the test suite generates, which is
precisely its job.

Like the skyline oracle, it is exact for every similarity measure,
aggregator, and requirement type, because it scores concrete routes
directly, exactly as the problem statement does.
"""

from __future__ import annotations

from repro.baselines.brute_force import enumerate_sequenced_routes
from repro.core.dominance import rank_routes, skyband_filter
from repro.core.routes import SkylineRoute
from repro.core.spec import CompiledQuery
from repro.graph.road_network import RoadNetwork
from repro.semantics.scoring import SemanticAggregator


def brute_force_skyband(
    network: RoadNetwork,
    query: CompiledQuery,
    k: int,
    *,
    aggregator: SemanticAggregator | None = None,
) -> list[SkylineRoute]:
    """The k-skyband of all sequenced routes, length ascending."""
    routes = enumerate_sequenced_routes(network, query, aggregator=aggregator)
    return skyband_filter(routes, k)


def brute_force_topk(
    network: RoadNetwork,
    query: CompiledQuery,
    k: int,
    *,
    aggregator: SemanticAggregator | None = None,
) -> list[SkylineRoute]:
    """The ranked top-k alternatives (the engine's ``topk()`` contract)."""
    band = brute_force_skyband(network, query, k, aggregator=aggregator)
    return rank_routes(band, k)
