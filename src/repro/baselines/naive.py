"""Naive SkySR solutions: iterate exact-match OSRs over all
super-category sequences and skyline-filter the results (Section 4).

These are the paper's comparison algorithms "Dij" and "PNE" (Section
7.1): both enumerate every super-category sequence of the query,
solve one optimal-sequenced-route problem per sequence (with the
Dijkstra-based or PNE OSR solver respectively, candidate sets being the
closure sets ``P_c``), re-derive each found route's true scores from
its actual PoI categories, and keep the skyline.

Exactness of this construction holds for the library's default
similarity (the paper's Eq. 6, where a route's per-position similarity
is determined by the generalization level at which its PoI matches):
every skyline route is then recovered by the super-sequence of its
per-position LCAs.  Exactness for arbitrary user-supplied similarity
measures is *not* guaranteed — BSSR remains the reference algorithm;
the correctness tests compare all three under the default measure.
"""

from __future__ import annotations

from time import perf_counter

from repro.baselines.osr_dijkstra import osr_dijkstra
from repro.baselines.osr_pne import osr_pne
from repro.baselines.supercat import super_sequences
from repro.core.dominance import SkylineSet
from repro.core.routes import SkylineRoute
from repro.core.stats import SearchStats
from repro.graph.dijkstra import dijkstra
from repro.graph.poi import PoIIndex
from repro.graph.road_network import RoadNetwork
from repro.semantics.scoring import DEFAULT_AGGREGATOR, SemanticAggregator
from repro.semantics.similarity import DEFAULT_SIMILARITY, SimilarityMeasure


def naive_skysr(
    network: RoadNetwork,
    index: PoIIndex,
    start: int,
    categories: list[int],
    *,
    method: str = "dijkstra",
    destination: int | None = None,
    similarity: SimilarityMeasure | None = None,
    aggregator: SemanticAggregator | None = None,
    deadline: float | None = None,
) -> tuple[list[SkylineRoute], SearchStats]:
    """Solve a SkySR query naively; returns (skyline routes, stats).

    Args:
        method: ``"dijkstra"`` (the paper's Dij) or ``"pne"``.
        deadline: optional wall-clock budget in seconds; when exceeded
            the enumeration stops early and ``stats.extra["timed_out"]``
            is set (mirroring the paper's "not finished after a month"
            missing bars).  Timed-out results are partial and must not
            be used for correctness comparisons.
    """
    if method not in ("dijkstra", "pne"):
        raise ValueError(f"unknown OSR method: {method!r}")
    similarity = similarity or DEFAULT_SIMILARITY
    aggregator = aggregator or DEFAULT_AGGREGATOR
    forest = index.forest
    stats = SearchStats(algorithm=f"naive-{method}")
    started = perf_counter()

    dest_dist: dict[int, float] | None = None
    if destination is not None:
        dest_dist = dijkstra(network, destination, reverse=True)  # type: ignore[assignment]

    # Per-position similarity of each candidate PoI under the *query*
    # category (the true scores used for the final skyline filter).
    true_sims: list[dict[int, float]] = []
    for cid in categories:
        sims: dict[int, float] = {}
        cache: dict[int, float] = {}
        for vid in index.pois_in_tree(cid):
            best = 0.0
            for poi_cid in network.poi_categories(vid):
                sim = cache.get(poi_cid)
                if sim is None:
                    sim = similarity.similarity(forest, cid, poi_cid)
                    cache[poi_cid] = sim
                best = max(best, sim)
            if best > 0.0:
                sims[vid] = best
        true_sims.append(sims)

    closure_cache: dict[int, frozenset[int]] = {}

    def closure(cid: int) -> frozenset[int]:
        found = closure_cache.get(cid)
        if found is None:
            found = frozenset(index.pois_in_closure(cid))
            closure_cache[cid] = found
        return found

    skyline = SkylineSet()
    n = len(categories)
    for sequence in super_sequences(forest, categories):
        if deadline is not None and perf_counter() - started > deadline:
            stats.extra["timed_out"] = True
            break
        stats.super_sequences += 1
        candidate_sets = [closure(cid) for cid in sequence]
        stats.osr_calls += 1
        if method == "dijkstra":
            found = osr_dijkstra(
                network,
                start,
                candidate_sets,
                destination=destination,
                stats=stats,
            )
        else:
            found = osr_pne(
                network,
                start,
                candidate_sets,
                destination=destination,
                dest_dist=dest_dist,
                stats=stats,
            )
        if found is None:
            continue
        length, pois = found
        if len(set(pois)) != n:
            # State-expanded OSR cannot enforce distinctness; such routes
            # only arise when positions share candidate PoIs and are
            # invalid sequenced routes — drop them.
            continue
        sims = tuple(true_sims[i][vid] for i, vid in enumerate(pois))
        semantic = aggregator.score_of(sims)
        skyline.update(
            SkylineRoute(pois=pois, length=length, semantic=semantic, sims=sims)
        )
    stats.elapsed = perf_counter() - started
    stats.result_size = len(skyline)
    stats.skyline_updates = skyline.updates
    stats.skyline_rejects = skyline.rejects
    return skyline.routes(), stats
