"""Exhaustive SkySR oracle — ground truth for the correctness tests.

Enumerates *every* sequenced route (Definition 3.4: one semantically
matching PoI per position, all PoIs distinct), scores each with exact
shortest-path distances, and skyline-filters.  Exponential in the
sequence size; usable only on the small randomized instances the test
suite generates, which is precisely its job.

Unlike the naive super-sequence baseline this oracle is exact for
*every* similarity measure, aggregator, and requirement type, because
it never reasons about generalization levels — it scores concrete
routes directly, exactly as the problem statement does.
"""

from __future__ import annotations

import math

from repro.core.dominance import skyline_filter
from repro.core.routes import SkylineRoute
from repro.core.spec import CompiledQuery
from repro.graph.dijkstra import dijkstra
from repro.graph.road_network import RoadNetwork
from repro.semantics.scoring import DEFAULT_AGGREGATOR, SemanticAggregator


def brute_force_skysr(
    network: RoadNetwork,
    query: CompiledQuery,
    *,
    aggregator: SemanticAggregator | None = None,
) -> list[SkylineRoute]:
    """All skyline sequenced routes by exhaustive enumeration."""
    aggregator = aggregator or DEFAULT_AGGREGATOR
    n = query.size
    specs = query.specs
    if any(not spec.sim_map for spec in specs):
        return []

    dist_cache: dict[int, dict[int, float]] = {}

    def distances_from(vid: int) -> dict[int, float]:
        found = dist_cache.get(vid)
        if found is None:
            found = dijkstra(network, vid)  # type: ignore[assignment]
            dist_cache[vid] = found  # type: ignore[assignment]
        return found  # type: ignore[return-value]

    dest_dist: dict[int, float] | None = None
    if query.destination is not None:
        dest_dist = dijkstra(network, query.destination, reverse=True)  # type: ignore[assignment]

    routes: list[SkylineRoute] = []

    def recurse(
        position: int,
        last: int | None,
        length: float,
        state,
        pois: tuple[int, ...],
        sims: tuple[float, ...],
    ) -> None:
        if position == n:
            total = length
            if dest_dist is not None:
                leg = dest_dist.get(pois[-1], math.inf)
                if leg == math.inf:
                    return
                total = length + leg
            routes.append(
                SkylineRoute(
                    pois=pois,
                    length=total,
                    semantic=aggregator.score(state),
                    sims=sims,
                )
            )
            return
        source_map = (
            distances_from(query.start) if last is None else distances_from(last)
        )
        for vid, sim in specs[position].sim_map.items():
            if vid in pois:
                continue
            d = source_map.get(vid, math.inf)
            if d == math.inf:
                continue
            recurse(
                position + 1,
                vid,
                length + d,
                aggregator.extend(state, sim),
                pois + (vid,),
                sims + (sim,),
            )

    recurse(0, None, 0.0, aggregator.initial(n), (), ())
    return skyline_filter(routes)


def enumerate_sequenced_routes(
    network: RoadNetwork,
    query: CompiledQuery,
    *,
    aggregator: SemanticAggregator | None = None,
) -> list[SkylineRoute]:
    """All sequenced routes (not just the skyline) — test helper."""
    aggregator = aggregator or DEFAULT_AGGREGATOR
    n = query.size
    specs = query.specs
    if any(not spec.sim_map for spec in specs):
        return []
    dist_cache: dict[int, dict[int, float]] = {}

    def distances_from(vid: int) -> dict[int, float]:
        found = dist_cache.get(vid)
        if found is None:
            found = dijkstra(network, vid)  # type: ignore[assignment]
            dist_cache[vid] = found  # type: ignore[assignment]
        return found  # type: ignore[return-value]

    dest_dist: dict[int, float] | None = None
    if query.destination is not None:
        dest_dist = dijkstra(network, query.destination, reverse=True)  # type: ignore[assignment]
    out: list[SkylineRoute] = []

    def recurse(position, last, length, state, pois, sims) -> None:
        if position == n:
            total = length
            if dest_dist is not None:
                leg = dest_dist.get(pois[-1], math.inf)
                if leg == math.inf:
                    return
                total = length + leg
            out.append(
                SkylineRoute(
                    pois=pois,
                    length=total,
                    semantic=aggregator.score(state),
                    sims=sims,
                )
            )
            return
        source_map = (
            distances_from(query.start) if last is None else distances_from(last)
        )
        for vid, sim in specs[position].sim_map.items():
            if vid in pois:
                continue
            d = source_map.get(vid, math.inf)
            if d == math.inf:
                continue
            recurse(
                position + 1,
                vid,
                length + d,
                aggregator.extend(state, sim),
                pois + (vid,),
                sims + (sim,),
            )

    recurse(0, None, 0.0, aggregator.initial(n), (), ())
    return out
