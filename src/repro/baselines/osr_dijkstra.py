"""The Dijkstra-based OSR solution ("Dij", Sharifzadeh et al. [16]).

Finds the *optimal sequenced route*: the shortest route from a start
vertex visiting one PoI from each candidate set in order.  The search
runs Dijkstra over the *state-expanded* graph whose states are
``(vertex, matched-prefix-length)``: traversing a road edge keeps the
layer, standing on a PoI of the next candidate set may advance it at
zero cost.  The first settled state in the final layer is optimal.

Faithful to the paper's implementation notes, every queue entry carries
its partial *route* (the matched PoI prefix): "as Dij stores many
routes in the priority queue, RSS is significantly larger than those of
the other algorithms" (Section 7.2, Table 6) — this is the memory-heavy
baseline by construction.

Note: like the original OSR formulation, the state expansion does not
track *which* PoIs were used, so a PoI could repeat across positions if
candidate sets overlap.  The SkySR experiments draw positions from
distinct category trees, where overlap is impossible; callers that
allow overlap must filter (``repro.baselines.naive`` does).
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Collection

from repro.core.stats import SearchStats
from repro.graph.road_network import RoadNetwork


def osr_dijkstra(
    network: RoadNetwork,
    start: int,
    candidate_sets: list[Collection[int]],
    *,
    destination: int | None = None,
    stats: SearchStats | None = None,
) -> tuple[float, tuple[int, ...]] | None:
    """Optimal sequenced route via a state-expanded Dijkstra.

    Returns ``(length, pois)`` or ``None`` when no route exists.  When
    ``destination`` is given the returned length includes the final leg
    and optimality is with respect to the total.
    """
    n = len(candidate_sets)
    sets = [
        c if isinstance(c, (set, frozenset)) else set(c)
        for c in candidate_sets
    ]
    if any(not s for s in sets):
        return None
    serial = itertools.count()
    # (distance, tiebreak, vertex, layer, matched PoI route).  Every
    # entry owns its route *by value* (list copy), mirroring the
    # reference implementation's std::vector-in-priority-queue layout —
    # the very reason Table 6 shows Dij as the memory-heavy algorithm.
    heap: list[tuple[float, int, int, int, list[int]]] = [
        (0.0, next(serial), start, 0, [])
    ]
    settled: set[tuple[int, int]] = set()
    while heap:
        d, _, u, layer, route = heapq.heappop(heap)
        state = (u, layer)
        if state in settled:
            continue
        settled.add(state)
        if stats is not None:
            stats.settled += 1
        if layer == n and (destination is None or u == destination):
            return d, tuple(route)
        if layer < n and u in sets[layer]:
            heapq.heappush(
                heap, (d, next(serial), u, layer + 1, route + [u])
            )
        for v, w in network.neighbors(u):
            if stats is not None:
                stats.relaxed += 1
            if (v, layer) not in settled:
                heapq.heappush(
                    heap, (d + w, next(serial), v, layer, list(route))
                )
    return None
