"""Super-category sequence enumeration (Definition 3.1, Section 4).

The naive SkySR solution enumerates every *super-category sequence* of
the query — each position generalized to itself or any of its ancestors
— and solves one exact-match OSR per sequence.  "The number of
super-category sequences increases exponentially as the depth of the
category ... and the size of S_q increase" (Section 4): this module
makes that blow-up explicit and measurable.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator

from repro.semantics.category import CategoryForest


def ancestor_options(
    forest: CategoryForest, category: int | str
) -> list[int]:
    """Generalization choices for one position: self, then ancestors."""
    return forest.ancestors(category, include_self=True)


def super_sequences(
    forest: CategoryForest, categories: list[int]
) -> Iterator[tuple[int, ...]]:
    """All super-category sequences of ``categories`` (Definition 3.1).

    The original sequence is yielded first (all positions at depth 0 of
    generalization); iteration order is deterministic.
    """
    options = [ancestor_options(forest, c) for c in categories]
    return product(*options)


def count_super_sequences(
    forest: CategoryForest, categories: list[int]
) -> int:
    """Π depth(c_i) — the number of OSR calls the naive solution makes."""
    total = 1
    for c in categories:
        total *= forest.depth(c)
    return total
