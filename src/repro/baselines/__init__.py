"""Comparison algorithms: OSR solvers, naive SkySR, brute-force oracle."""

from repro.baselines.brute_force import (
    brute_force_skysr,
    enumerate_sequenced_routes,
)
from repro.baselines.naive import naive_skysr
from repro.baselines.osr_dijkstra import osr_dijkstra
from repro.baselines.osr_pne import osr_pne
from repro.baselines.supercat import (
    ancestor_options,
    count_super_sequences,
    super_sequences,
)
from repro.baselines.topk import brute_force_skyband, brute_force_topk

__all__ = [
    "osr_dijkstra",
    "osr_pne",
    "naive_skysr",
    "brute_force_skysr",
    "brute_force_skyband",
    "brute_force_topk",
    "enumerate_sequenced_routes",
    "super_sequences",
    "ancestor_options",
    "count_super_sequences",
]
