"""The Progressive Neighbor Exploration OSR solution ("PNE", [16]).

PNE grows partial routes with *incremental nearest-neighbor* queries:
a global priority queue holds (partial route, j) pairs keyed by the
length of the route extended with its j-th nearest next-position
candidate.  Popping the key materializes that extension, re-arms the
pair with the (j+1)-th neighbor, and — because every key is an exact
length of a concrete extension and extensions only grow — the first
complete route popped is optimal.

Incremental nearest neighbors over the road network are served by
:class:`~repro.graph.dijkstra.ResumableDijkstra` streams memoized per
(vertex, position), mirroring the paper's description of PNE as the
"nearest neighbor-based" approach.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Collection

from repro.core.stats import SearchStats
from repro.graph.dijkstra import ResumableDijkstra
from repro.graph.road_network import RoadNetwork


class _NeighborStream:
    """Candidates of one position in increasing distance from a vertex."""

    __slots__ = ("_dijkstra", "_members", "_found", "_stats")

    def __init__(
        self,
        network: RoadNetwork,
        source: int,
        members: set[int],
        stats: SearchStats | None,
    ) -> None:
        self._dijkstra = ResumableDijkstra(network, source)
        self._members = members
        self._found: list[tuple[float, int]] = []
        self._stats = stats

    def get(self, j: int) -> tuple[float, int] | None:
        """The j-th nearest candidate ``(distance, vid)``; None if fewer."""
        while len(self._found) <= j:
            step = self._dijkstra.settle_next()
            if step is None:
                return None
            if self._stats is not None:
                self._stats.settled += 1
            d, u = step
            if u in self._members:
                self._found.append((d, u))
        return self._found[j]


def osr_pne(
    network: RoadNetwork,
    start: int,
    candidate_sets: list[Collection[int]],
    *,
    destination: int | None = None,
    dest_dist: dict[int, float] | None = None,
    stats: SearchStats | None = None,
) -> tuple[float, tuple[int, ...]] | None:
    """Optimal sequenced route via progressive neighbor exploration.

    ``dest_dist`` (distances to ``destination``) may be precomputed by
    the caller and shared across OSR invocations; it is derived on
    demand otherwise.
    """
    n = len(candidate_sets)
    sets = [c if isinstance(c, (set, frozenset)) else set(c) for c in candidate_sets]
    if any(not s for s in sets):
        return None
    if destination is not None and dest_dist is None:
        from repro.graph.dijkstra import dijkstra

        dest_dist = dijkstra(network, destination, reverse=True)  # type: ignore[assignment]

    streams: dict[tuple[int, int], _NeighborStream] = {}

    def stream(source: int, position: int) -> _NeighborStream:
        key = (source, position)
        found = streams.get(key)
        if found is None:
            found = _NeighborStream(network, source, sets[position], stats)
            streams[key] = found
        return found

    serial = itertools.count()
    # heap entries: (key, serial#, kind, prefix, prefix_length, j)
    # kind "partial": extend prefix with the j-th neighbor of its end;
    # kind "complete": a finished route (key includes any destination leg).
    heap: list[tuple[float, int, str, tuple[int, ...], float, int]] = []

    def arm(prefix: tuple[int, ...], prefix_length: float, j: int) -> None:
        """Push the (prefix, j) pair keyed by its concrete extension length."""
        source = prefix[-1] if prefix else start
        neighbor = stream(source, len(prefix)).get(j)
        if neighbor is None:
            return
        d, _vid = neighbor
        heapq.heappush(
            heap,
            (prefix_length + d, next(serial), "partial", prefix, prefix_length, j),
        )

    arm((), 0.0, 0)
    while heap:
        key, _, kind, prefix, prefix_length, j = heapq.heappop(heap)
        if kind == "complete":
            return key, prefix
        source = prefix[-1] if prefix else start
        neighbor = stream(source, len(prefix)).get(j)
        assert neighbor is not None  # it was materialized when armed
        d, vid = neighbor
        arm(prefix, prefix_length, j + 1)  # re-arm with the next neighbor
        if vid in prefix:
            continue  # distinctness: skip this extension, keep exploring
        extended = prefix + (vid,)
        length = prefix_length + d
        if len(extended) == n:
            total = length
            if destination is not None:
                leg = dest_dist.get(vid, math.inf) if dest_dist else math.inf
                if leg == math.inf:
                    continue
                total = length + leg
            heapq.heappush(
                heap, (total, next(serial), "complete", extended, total, 0)
            )
        else:
            arm(extended, length, 0)
    return None
