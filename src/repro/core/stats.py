"""Search statistics collected by every algorithm.

The paper's evaluation (Section 7) reports, beyond response time:
visited-vertex counts (Table 8), the first-search "weight sum" radius
(Table 7), the number of modified-Dijkstra executions (Figure 5),
initial-search metrics (Table 7), and memory (Table 6).  Each query
returns a fully populated :class:`SearchStats` so the experiment
harness never needs to instrument algorithm internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SearchStats:
    """Counters for one query execution."""

    algorithm: str = ""
    #: wall-clock seconds for the whole query
    elapsed: float = 0.0

    # graph traversal volume
    settled: int = 0
    relaxed: int = 0
    heap_pushes: int = 0

    # modified-Dijkstra bookkeeping (Figure 5)
    mdijkstra_runs: int = 0
    mdijkstra_resumes: int = 0
    cache_hits: int = 0

    # route queue Q_b (Table 8 / Section 5.3.2)
    routes_enqueued: int = 0
    routes_expanded: int = 0
    routes_pruned_on_pop: int = 0
    routes_pruned_on_insert: int = 0
    #: pruned or budget-truncated routes parked for a later resume
    #: (checkpointable search state) instead of being discarded
    routes_deferred: int = 0
    max_queue_size: int = 0

    # skyline set
    skyline_updates: int = 0
    skyline_rejects: int = 0
    result_size: int = 0

    # initial search (Table 7)
    init_routes: int = 0
    init_time: float = 0.0
    init_length_ratio: float | None = None
    #: radius (max settled distance) of the *first* modified Dijkstra —
    #: the paper's Table 7 "weight sum" search-space proxy
    first_search_radius: float = 0.0

    # lower bounds (Figure 4)
    bounds_time: float = 0.0
    sum_ls: float = 0.0
    sum_lp: float = 0.0

    # baselines
    osr_calls: int = 0
    super_sequences: int = 0

    # memory (Table 6) — filled only when measured explicitly
    peak_memory_bytes: int = 0

    #: free-form extras (experiment-specific)
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Flat dict for table rendering / JSON export."""
        payload = {
            key: value
            for key, value in self.__dict__.items()
            if key != "extra"
        }
        payload.update(self.extra)
        return payload

    def to_dict(self) -> dict:
        """Lossless dict form: unlike :meth:`as_dict` the free-form
        ``extra`` counters stay in their own key, so :meth:`from_dict`
        can reverse the mapping exactly."""
        payload = {
            key: value
            for key, value in self.__dict__.items()
            if key != "extra"
        }
        payload["extra"] = dict(self.extra)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SearchStats":
        """Inverse of :meth:`to_dict` (strict about unknown fields)."""
        stats = cls()
        known = set(stats.__dict__)
        for key, value in payload.items():
            if key == "extra":
                stats.extra.update(value)
            elif key in known:
                setattr(stats, key, value)
            else:
                raise ValueError(f"unknown SearchStats field {key!r}")
        return stats

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another query's counters into this one (sums)."""
        for key in (
            "elapsed",
            "settled",
            "relaxed",
            "heap_pushes",
            "mdijkstra_runs",
            "mdijkstra_resumes",
            "cache_hits",
            "routes_enqueued",
            "routes_expanded",
            "routes_pruned_on_pop",
            "routes_pruned_on_insert",
            "routes_deferred",
            "skyline_updates",
            "skyline_rejects",
            "result_size",
            "init_routes",
            "init_time",
            "first_search_radius",
            "bounds_time",
            "sum_ls",
            "sum_lp",
            "osr_calls",
            "super_sequences",
        ):
            setattr(self, key, getattr(self, key) + getattr(other, key))
        self.max_queue_size = max(self.max_queue_size, other.max_queue_size)
        self.peak_memory_bytes = max(
            self.peak_memory_bytes, other.peak_memory_bytes
        )


def mean_stats(all_stats: list[SearchStats]) -> SearchStats:
    """Average a list of per-query stats (used by the harness)."""
    if not all_stats:
        return SearchStats()
    total = SearchStats(algorithm=all_stats[0].algorithm)
    for stats in all_stats:
        total.merge(stats)
    n = len(all_stats)
    for key in (
        "elapsed",
        "settled",
        "relaxed",
        "heap_pushes",
        "mdijkstra_runs",
        "mdijkstra_resumes",
        "cache_hits",
        "routes_enqueued",
        "routes_expanded",
        "routes_pruned_on_pop",
        "routes_pruned_on_insert",
        "routes_deferred",
        "skyline_updates",
        "skyline_rejects",
        "result_size",
        "init_routes",
        "init_time",
        "first_search_radius",
        "bounds_time",
        "sum_ls",
        "sum_lp",
        "osr_calls",
        "super_sequences",
    ):
        setattr(total, key, getattr(total, key) / n)
    ratios = [
        s.init_length_ratio
        for s in all_stats
        if s.init_length_ratio is not None
    ]
    total.init_length_ratio = (
        sum(ratios) / len(ratios) if ratios else None
    )
    return total
