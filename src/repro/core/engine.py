"""The public query engine.

:class:`SkySREngine` binds a road network to a category forest, a
similarity measure, and a score aggregator, and answers SkySR queries
with a selectable algorithm:

======================  ====================================================
``"bssr"``              the paper's bulk SkySR algorithm, all optimizations
``"bssr-noopt"``        BSSR without the Section 5.3 optimizations
``"dij"``               naive: one Dijkstra-based OSR per super-sequence
``"pne"``               naive: one PNE OSR per super-sequence
``"brute-force"``       exhaustive oracle (tiny instances only)
======================  ====================================================

Example:

>>> from repro import SkySREngine, datasets
>>> data = datasets.mini_city()
>>> engine = SkySREngine(data.network, data.forest)
>>> result = engine.query(
...     start=data.landmarks["station"],
...     categories=["Asian Restaurant", "Museum", "Gift Shop"],
... )
>>> for route in result.routes:
...     print(result.describe_route(route))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from repro.core.bssr import run_bssr
from repro.core.diversity import diversify
from repro.core.dominance import rank_routes
from repro.core.options import BSSROptions
from repro.core.routes import SkylineRoute
from repro.core.spec import CategoryRequirement, CompiledQuery, compile_query
from repro.core.stats import SearchStats
from repro.errors import QueryError
from repro.graph.poi import PoIIndex
from repro.graph.road_network import RoadNetwork
from repro.semantics.category import CategoryForest
from repro.semantics.scoring import DEFAULT_AGGREGATOR, SemanticAggregator
from repro.semantics.similarity import DEFAULT_SIMILARITY, SimilarityMeasure

#: algorithm registry names
ALGORITHMS = ("bssr", "bssr-noopt", "dij", "pne", "brute-force")


@dataclass
class SkySRResult:
    """Outcome of one SkySR query.

    For a plain skyline query (``k = 1``, the default) ``routes`` is
    the minimal skyline set sorted by length ascending (semantic score
    descending).  For a top-k query (``BSSROptions.k > 1``) ``routes``
    is the *ranked* list of up to ``k`` alternatives (dominance depth,
    then length — rank 1 is always the skyline's shortest route) and
    ``skyband`` retains every route the search proved to be in the
    k-skyband.  ``stats`` carries the full counter set of the executing
    algorithm.
    """

    routes: list[SkylineRoute]
    stats: SearchStats
    start: int
    labels: list[str]
    algorithm: str
    destination: int | None = None
    k: int = 1
    skyband: list[SkylineRoute] = field(default_factory=list)
    _network: RoadNetwork | None = field(default=None, repr=False)
    _forest: CategoryForest | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.skyband:
            self.skyband = list(self.routes)

    def __len__(self) -> int:
        return len(self.routes)

    def __iter__(self):
        return iter(self.routes)

    @property
    def shortest(self) -> SkylineRoute | None:
        """The shortest route (largest semantic deviation)."""
        return self.routes[0] if self.routes else None

    @property
    def perfect(self) -> SkylineRoute | None:
        """The best semantic-score-0 route, if any was found.

        Scans the full skyband: a top-k query may rank the perfect
        route below the ``k`` cut, but it is never dropped from the
        skyband (depth 0 at semantic 0 is undominatable on that axis).
        """
        for route in self.skyband:  # length-ascending: first hit is best
            if route.is_perfect():
                return route
        return None

    def topk(self, k: int | None = None) -> list[SkylineRoute]:
        """Up to ``k`` ranked alternatives from the skyband.

        Ranked by dominance depth, then length, then semantic score
        (ties broken deterministically by lexicographic PoI ids), so
        the first entry is always the skyline's shortest route — for
        ``k = 1`` this is exactly ``[self.shortest]``.  ``k`` defaults
        to the ``k`` the query was answered with; ask for less, or (up
        to the skyband size) more.
        """
        return rank_routes(self.skyband, self.k if k is None else k)

    def diversified(
        self, k: int | None = None, *, diversity_lambda: float = 0.5
    ) -> list[SkylineRoute]:
        """Up to ``k`` alternatives, MMR-re-ranked for diversity.

        Greedy selection over the *entire* retained skyband (not just
        the top-k truncation — a lower-ranked but disjoint alternative
        can displace a near-duplicate of rank 1), penalizing PoI
        overlap and shared geometry with already-picked routes (see
        :mod:`repro.core.diversity`).  ``diversity_lambda = 0`` returns
        :meth:`topk` unchanged.
        """
        return diversify(
            rank_routes(self.skyband),
            k if k is not None else self.k,
            diversity_lambda=diversity_lambda,
            start=self.start,
        )

    def poi_category_names(self, route: SkylineRoute) -> list[str]:
        """Own-category names of the route's PoIs (first category each)."""
        if self._network is None or self._forest is None:
            raise QueryError("result was built without network context")
        names = []
        for vid in route.pois:
            cats = self._network.poi_categories(vid)
            names.append(self._forest.name_of(cats[0]) if cats else "?")
        return names

    def describe_route(self, route: SkylineRoute) -> str:
        """Paper-Table-1 style line: distance + category chain."""
        chain = " -> ".join(self.poi_category_names(route))
        return f"{route.length:10.4f}  [s={route.semantic:.4f}]  {chain}"

    def to_table(self) -> str:
        """All routes in Table-1 form (shortest first)."""
        header = f"{'distance':>10}  {'semantic':>10}  route"
        lines = [header]
        for route in self.routes:
            chain = " -> ".join(self.poi_category_names(route))
            lines.append(
                f"{route.length:>10.4f}  {route.semantic:>10.4f}  {chain}"
            )
        return "\n".join(lines)

    def to_ranked_table(self, k: int | None = None) -> str:
        """Ranked-alternatives rendering of :meth:`topk`."""
        return self._ranked_lines(self.topk(k), first_rank=1)

    def to_page_table(self, first_rank: int = 1) -> str:
        """Render ``routes`` as-is with global ranks (session pages)."""
        return self._ranked_lines(self.routes, first_rank=first_rank)

    def _ranked_lines(
        self, routes: list[SkylineRoute], *, first_rank: int
    ) -> str:
        header = f"{'rank':>4}  {'distance':>10}  {'semantic':>10}  route"
        lines = [header]
        for rank, route in enumerate(routes, start=first_rank):
            chain = " -> ".join(self.poi_category_names(route))
            lines.append(
                f"{rank:>4}  {route.length:>10.4f}  "
                f"{route.semantic:>10.4f}  {chain}"
            )
        return "\n".join(lines)


class SkySREngine:
    """Reusable query engine for one (network, forest) pair."""

    def __init__(
        self,
        network: RoadNetwork,
        forest: CategoryForest,
        *,
        similarity: SimilarityMeasure | None = None,
        aggregator: SemanticAggregator | None = None,
        options: BSSROptions | None = None,
        preprocessing: bool = False,
        distance_cache=None,
    ) -> None:
        self.network = network
        self.forest = forest
        self.similarity = similarity or DEFAULT_SIMILARITY
        self.aggregator = aggregator or DEFAULT_AGGREGATOR
        self.options = options or BSSROptions()
        #: build a tree-pair distance index once and serve Algorithm 4's
        #: lower bounds from it (the paper's future-work preprocessing)
        self.preprocessing = preprocessing
        #: optional cross-query :class:`~repro.core.distcache.DistanceCache`
        #: shared by every BSSR query this engine answers; ``None``
        #: (default) keeps queries fully independent, which is what the
        #: stats-sensitive experiments expect
        self.distance_cache = distance_cache
        self._index: PoIIndex | None = None
        self._tree_index = None

    @property
    def index(self) -> PoIIndex:
        """Lazily built PoI index; call :meth:`refresh_index` after
        mutating the network's PoIs."""
        if self._index is None:
            self._index = PoIIndex(self.network, self.forest)
        return self._index

    def refresh_index(self) -> None:
        self._index = None
        self._tree_index = None

    @property
    def tree_index(self):
        """The preprocessing index (built lazily on first use)."""
        if self._tree_index is None:
            from repro.extensions.preprocessing import TreePairDistanceIndex

            self._tree_index = TreePairDistanceIndex(self.network, self.index)
        return self._tree_index

    # ------------------------------------------------------------------

    def compile(
        self,
        start: int,
        categories: list,
        *,
        destination: int | None = None,
    ) -> CompiledQuery:
        """Compile a query for repeated execution or inspection."""
        return compile_query(
            start,
            categories,
            self.index,
            self.similarity,
            destination=destination,
        )

    def query(
        self,
        start: int,
        categories: list,
        *,
        destination: int | None = None,
        algorithm: str = "bssr",
        ordered: bool = True,
        options: BSSROptions | None = None,
        deadline: float | None = None,
    ) -> SkySRResult:
        """Answer a SkySR query.

        Args:
            start: start vertex id (the paper's ``v_q``).
            categories: the category sequence ``S_q`` — names, ids, or
                requirement objects (predicates).
            destination: optional final vertex (Section 6).
            algorithm: one of :data:`ALGORITHMS`.
            ordered: ``False`` runs the unordered skyline trip-planning
                variant (Section 6; BSSR-based only).
            options: per-query BSSR option override.
            deadline: wall-clock budget for the naive baselines.
        """
        # Late imports: baselines and extensions import core machinery,
        # so binding them at module import time would be circular.
        from repro.baselines.brute_force import brute_force_skysr
        from repro.baselines.naive import naive_skysr
        from repro.baselines.topk import brute_force_skyband
        from repro.extensions.unordered import run_unordered_skysr

        compiled = self.compile(start, categories, destination=destination)
        opts = options or self.options
        k = opts.k
        if not ordered:
            if algorithm not in ("bssr", "bssr-noopt"):
                raise QueryError(
                    "unordered queries are answered by the BSSR variant only"
                )
            if destination is not None:
                raise QueryError(
                    "unordered queries with destinations are not supported"
                )
            if k > 1:
                raise QueryError(
                    "top-k (k > 1) is not supported for unordered queries"
                )
            routes, stats = run_unordered_skysr(
                self.network, compiled, aggregator=self.aggregator
            )
            return self._result(routes, stats, compiled, "unordered-bssr")

        if algorithm == "bssr" or algorithm == "bssr-noopt":
            if algorithm == "bssr-noopt":
                # Keep the non-optimization knobs (k, safety valve)
                # while disabling every Section 5.3 technique.
                opts = BSSROptions.without_optimizations().but(
                    k=opts.k, max_routes_expanded=opts.max_routes_expanded
                )
            precomputed = None
            if self.preprocessing and opts.lower_bounds:
                precomputed = self.tree_index.bounds_for(compiled)
            routes, stats = run_bssr(
                self.network,
                compiled,
                aggregator=self.aggregator,
                options=opts,
                precomputed_bounds=precomputed,
                distance_cache=self.distance_cache,
            )
        elif algorithm in ("dij", "pne"):
            if k > 1:
                raise QueryError(
                    "top-k (k > 1) is answered by the bssr/bssr-noopt/"
                    "brute-force algorithms only"
                )
            cids = self._plain_category_ids(categories)
            routes, stats = naive_skysr(
                self.network,
                self.index,
                start,
                cids,
                method="dijkstra" if algorithm == "dij" else "pne",
                destination=destination,
                similarity=self.similarity,
                aggregator=self.aggregator,
                deadline=deadline,
            )
        elif algorithm == "brute-force":
            started = perf_counter()
            if k > 1:
                routes = brute_force_skyband(
                    self.network, compiled, k, aggregator=self.aggregator
                )
            else:
                routes = brute_force_skysr(
                    self.network, compiled, aggregator=self.aggregator
                )
            stats = SearchStats(
                algorithm="brute-force", elapsed=perf_counter() - started
            )
            stats.result_size = len(routes)
        else:
            raise QueryError(
                f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
            )
        return self._result(
            routes,
            stats,
            compiled,
            algorithm,
            k=k,
            diversity_lambda=opts.diversity_lambda,
        )

    def session(
        self,
        start: int,
        categories: list,
        *,
        destination: int | None = None,
        page_size: int | None = None,
        diversity_lambda: float | None = None,
        options: BSSROptions | None = None,
    ):
        """Open a resumable :class:`~repro.core.session.PlanningSession`.

        The session pages through ranked alternatives by checkpointing
        and resuming the k-skyband search (see
        :mod:`repro.core.session`) instead of recomputing per page.
        """
        from repro.core.session import PlanningSession

        return PlanningSession(
            self,
            start,
            categories,
            destination=destination,
            page_size=page_size,
            diversity_lambda=diversity_lambda,
            options=options,
        )

    # ------------------------------------------------------------------

    def perf_stats(self) -> dict:
        """Engine-level performance counters (service/CLI ``stats``).

        Reports the cross-query :class:`~repro.core.distcache.DistanceCache`
        (search hits/misses plus CH bucket traffic) and, when a
        contraction hierarchy has been built for this network, its
        preprocessing stats.  Purely observational — never builds an
        index, so calling it on a cold engine is free.
        """
        out: dict = {}
        cache = self.distance_cache
        if cache is not None:
            out["distance_cache"] = {
                "entries": len(cache),
                "bytes": cache.total_bytes,
                **cache.stats.as_dict(),
            }
        ch = getattr(self.network, "_ch_index", None)
        if ch is not None:
            out["contraction"] = ch.stats.as_dict()
        return out

    def _plain_category_ids(self, categories: list) -> list[int]:
        """The naive baselines need a plain category sequence."""
        cids: list[int] = []
        for item in categories:
            if isinstance(item, (int, str)):
                cids.append(self.forest.resolve(item))
            elif isinstance(item, CategoryRequirement):
                cids.append(item.category)
            else:
                raise QueryError(
                    "the naive baselines support plain category sequences "
                    f"only, got {item!r}"
                )
        return cids

    def _result(
        self,
        routes: list[SkylineRoute],
        stats: SearchStats,
        compiled: CompiledQuery,
        algorithm: str,
        *,
        k: int = 1,
        diversity_lambda: float = 0.0,
    ) -> SkySRResult:
        # ``routes`` arrives length-sorted from the algorithms.  A plain
        # skyline query returns it as-is; a top-k query presents the
        # ranked truncation (MMR-diversified when requested) and keeps
        # the full skyband alongside.
        skyband = list(routes)
        if k > 1:
            if diversity_lambda > 0.0:
                # MMR selects from the whole retained skyband so a
                # lower-ranked but disjoint route can make the cut.
                routes = diversify(
                    rank_routes(skyband),
                    k,
                    diversity_lambda=diversity_lambda,
                    start=compiled.start,
                )
            else:
                routes = rank_routes(skyband, k)
        return SkySRResult(
            routes=routes,
            stats=stats,
            start=compiled.start,
            labels=compiled.labels(),
            algorithm=algorithm,
            destination=compiled.destination,
            k=k,
            skyband=skyband,
            _network=self.network,
            _forest=self.forest,
        )
