"""Core SkySR machinery: skyline set, BSSR, options, engine."""

from repro.core.bounds import LowerBounds, compute_lower_bounds
from repro.core.bssr import BSSRSearch, SearchState, run_bssr
from repro.core.diversity import (
    diversify,
    poi_jaccard,
    route_similarity,
    segment_jaccard,
)
from repro.core.dominance import (
    SkybandSet,
    SkylineSet,
    dominance_depths,
    dominates,
    equivalent,
    rank_routes,
    skyband_filter,
    skyline_filter,
)
from repro.core.engine import ALGORITHMS, SkySREngine, SkySRResult
from repro.core.nninit import nninit
from repro.core.options import BSSROptions
from repro.core.routes import PartialRoute, SkylineRoute
from repro.core.search import PoICandidateSearch
from repro.core.session import Page, PlanningSession
from repro.core.spec import (
    CategoryRequirement,
    CompiledQuery,
    PositionSpec,
    Requirement,
    compile_query,
)
from repro.core.stats import SearchStats, mean_stats

__all__ = [
    "SkySREngine",
    "SkySRResult",
    "ALGORITHMS",
    "BSSROptions",
    "run_bssr",
    "BSSRSearch",
    "SearchState",
    "PlanningSession",
    "Page",
    "diversify",
    "poi_jaccard",
    "segment_jaccard",
    "route_similarity",
    "SkylineRoute",
    "PartialRoute",
    "SkylineSet",
    "SkybandSet",
    "dominates",
    "equivalent",
    "dominance_depths",
    "rank_routes",
    "skyline_filter",
    "skyband_filter",
    "SearchStats",
    "mean_stats",
    "CompiledQuery",
    "PositionSpec",
    "CategoryRequirement",
    "Requirement",
    "compile_query",
    "PoICandidateSearch",
    "nninit",
    "LowerBounds",
    "compute_lower_bounds",
]
