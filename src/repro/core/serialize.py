"""Versioned (de)serialization of checkpointed searches and sessions.

PR 2 made the BSSR search loop an explicit, checkpointable
:class:`~repro.core.bssr.SearchState`; this module makes that state
*durable*.  A :class:`~repro.core.session.PlanningSession` — compiled
query, served pages, and the full search checkpoint (skyband archive,
deferred work, priority queue, lower bounds, modified-Dijkstra caches)
— round-trips through plain JSON-compatible dicts, so a session can be
persisted by a :mod:`repro.store` backend, restored in a *different
process*, and resumed as if nothing happened.

Exactness is the contract, and the test layer
(``tests/test_session_store.py``) holds it to byte-identical output:

* floats survive unchanged (:func:`json.dumps` emits Python's
  shortest-round-trip ``repr``);
* a partial route's incremental aggregator state is *rebuilt* by
  replaying its similarity vector through the aggregator — the same
  ``extend`` sequence BSSR originally executed, hence bit-identical;
* queue priorities are recomputed from the configured policy and the
  unique serial tiebreak, so the restored heap pops in the original
  order;
* the skyband is restored member-for-member (not re-derived), so even
  equal-score representatives are preserved.

Schema versioning is strict: every payload carries ``format`` and
``version`` fields, and :func:`session_from_dict` rejects unknown
versions and malformed fields with a typed
:class:`~repro.errors.SessionDecodeError` naming the offending field —
never a bare ``KeyError``/``TypeError``.  Forward compatibility is
rejection, not guessing: a payload written by a newer schema is refused
instead of half-read.

What is deliberately *not* serialized:

* the road network / category forest — a payload is restored *against*
  an engine serving the same dataset (the caller owns dataset
  provenance; the CLI wrapper records preset/scale/seed);
* reverse distances to a destination (``dest_dist``) — recomputed on
  restore by the same deterministic Dijkstra, keeping payloads lean.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Callable

from repro.core.bounds import LowerBounds
from repro.core.options import BSSROptions
from repro.core.routes import PartialRoute, SkylineRoute
from repro.core.search import PoICandidateSearch
from repro.core.stats import SearchStats
from repro.errors import (
    QueryError,
    SessionDecodeError,
    SessionEncodeError,
)
from repro.graph.contraction import ch_enabled
from repro.semantics.scoring import SemanticAggregator

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.core.bssr import BSSRSearch
    from repro.core.engine import SkySREngine
    from repro.core.session import PlanningSession
    from repro.core.spec import CompiledQuery
    from repro.graph.road_network import RoadNetwork

#: payload self-identification (the ``format`` field)
SESSION_FORMAT = "repro-skysr-session"

#: current schema version; bump on any incompatible payload change
SCHEMA_VERSION = 1

_MISSING = object()


# ---------------------------------------------------------------------------
# strict field access


def _require(payload: dict, field: str, kinds, *, where: str = "payload"):
    """Fetch ``payload[field]`` with presence and type validation.

    ``kinds`` is a type or tuple of types; ``bool`` is only accepted
    when explicitly listed (it is an ``int`` subclass, and a ``true``
    where a count belongs is corruption, not a number).
    """
    if not isinstance(payload, dict):
        raise SessionDecodeError(
            f"{where} must be a JSON object, got {type(payload).__name__}",
            field=where,
        )
    value = payload.get(field, _MISSING)
    if value is _MISSING:
        raise SessionDecodeError(
            f"{where} is missing required field {field!r}", field=field
        )
    if kinds is not None:
        if not isinstance(value, kinds):
            raise SessionDecodeError(
                f"field {field!r} must be "
                f"{getattr(kinds, '__name__', kinds)}, got "
                f"{type(value).__name__}",
                field=field,
            )
        kind_tuple = kinds if isinstance(kinds, tuple) else (kinds,)
        if isinstance(value, bool) and bool not in kind_tuple:
            raise SessionDecodeError(
                f"field {field!r} must not be a boolean", field=field
            )
    return value


def _decoding(field: str, rebuild: Callable):
    """Run ``rebuild()``, converting stray errors into a typed
    :class:`SessionDecodeError` naming the enclosing field."""
    try:
        return rebuild()
    except SessionDecodeError:
        raise
    except (KeyError, IndexError, TypeError, ValueError, QueryError) as exc:
        raise SessionDecodeError(
            f"field {field!r} is malformed: {exc}", field=field
        ) from exc


# ---------------------------------------------------------------------------
# routes


def route_to_dict(route: SkylineRoute) -> dict:
    """JSON-compatible form of a finished route."""
    return {
        "pois": list(route.pois),
        "length": route.length,
        "semantic": route.semantic,
        "sims": list(route.sims),
    }


def route_from_dict(payload: dict, *, where: str = "route") -> SkylineRoute:
    """Inverse of :func:`route_to_dict` (strict)."""
    return _decoding(
        where,
        lambda: SkylineRoute(
            pois=tuple(int(p) for p in payload["pois"]),
            length=float(payload["length"]),
            semantic=float(payload["semantic"]),
            sims=tuple(float(s) for s in payload["sims"]),
        ),
    )


def _partial_to_dict(route: PartialRoute) -> dict:
    # ``sem_state`` is omitted: it is a pure function of the similarity
    # vector and the aggregator, and is replayed bit-exactly on restore.
    return {
        "pois": list(route.pois),
        "length": route.length,
        "semantic": route.semantic,
        "sims": list(route.sims),
        "serial": route.serial,
    }


def _replay_sem_state(
    aggregator: SemanticAggregator, n: int, sims: tuple[float, ...]
):
    state = aggregator.initial(n)
    for sim in sims:
        state = aggregator.extend(state, sim)
    return state


def _partial_from_dict(
    payload: dict,
    aggregator: SemanticAggregator,
    n: int,
    *,
    where: str = "partial",
) -> PartialRoute:
    def rebuild() -> PartialRoute:
        sims = tuple(float(s) for s in payload["sims"])
        return PartialRoute(
            pois=tuple(int(p) for p in payload["pois"]),
            length=float(payload["length"]),
            semantic=float(payload["semantic"]),
            sem_state=_replay_sem_state(aggregator, n, sims),
            sims=sims,
            serial=int(payload["serial"]),
        )

    return _decoding(where, rebuild)


# ---------------------------------------------------------------------------
# lower bounds


def bounds_to_dict(bounds: LowerBounds | None) -> dict | None:
    """JSON form of the Section 5.3.3 bounds (``None`` passes through).

    Infinite leg distances (no qualifying target) survive via Python's
    JSON ``Infinity`` extension — payloads are read back by this module,
    which accepts it.
    """
    if bounds is None:
        return None
    return {
        "suffix_ls": list(bounds.suffix_ls),
        "suffix_lp": list(bounds.suffix_lp),
        "remaining_best_np": list(bounds.remaining_best_np),
        "dest_min": bounds.dest_min,
        "legs_ls": list(bounds.legs_ls),
        "legs_lp": list(bounds.legs_lp),
    }


def bounds_from_dict(payload: dict | None) -> LowerBounds | None:
    """Inverse of :func:`bounds_to_dict`."""
    if payload is None:
        return None

    def rebuild() -> LowerBounds:
        return LowerBounds(
            suffix_ls=[float(x) for x in payload["suffix_ls"]],
            suffix_lp=[float(x) for x in payload["suffix_lp"]],
            remaining_best_np=[
                None if x is None else float(x)
                for x in payload["remaining_best_np"]
            ],
            dest_min=float(payload["dest_min"]),
            legs_ls=[float(x) for x in payload["legs_ls"]],
            legs_lp=[float(x) for x in payload["legs_lp"]],
        )

    return _decoding("search.state.bounds", rebuild)


# ---------------------------------------------------------------------------
# the checkpointed search


def search_to_dict(search: "BSSRSearch") -> dict:
    """Serialize a checkpointable :class:`~repro.core.bssr.BSSRSearch`."""
    if not search.checkpointable:
        raise SessionEncodeError(
            "one-shot searches (checkpointable=False) carry no resumable "
            "state and cannot be serialized"
        )
    state = search.state
    return {
        "options": search.options.to_dict(),
        "started": search._started,
        "first_radius_recorded": search._first_radius_recorded,
        "state": {
            "k": state.k,
            "serial": state.serial,
            "resumes": state.resumes,
            "archive": [route_to_dict(r) for r in state.archive.values()],
            "skyband": [route_to_dict(r) for r in state.skyband.routes()],
            "deferred": [
                {"route": _partial_to_dict(d.route), "consumed": d.consumed}
                for d in state.deferred
            ],
            "queue": [
                {
                    "serial": serial,
                    "route": _partial_to_dict(route),
                    "consumed": consumed,
                }
                for (_priority, serial, route, consumed) in state.queue
            ],
            "bounds": bounds_to_dict(state.bounds),
            "cache": [
                {"source": source, "position": position, "search": cs.to_dict()}
                for (source, position), cs in state.cache.items()
            ],
        },
    }


def search_from_dict(
    network: "RoadNetwork",
    query: "CompiledQuery",
    aggregator: SemanticAggregator,
    payload: dict,
) -> "BSSRSearch":
    """Rebuild a resumable search against ``(network, query)``.

    The restored object is behaviourally identical to the original at
    its last checkpoint: same skyband members, same deferred work and
    queue pop order, same bounds, same warm Dijkstra caches.
    """
    import heapq

    from repro.core.bssr import BSSRSearch, _ArchivingSkyband, _Deferred

    options = _decoding(
        "search.options",
        lambda: BSSROptions.from_dict(
            _require(payload, "options", dict, where="search")
        ),
    )
    if options.use_contraction and not ch_enabled():
        # CH candidate streams order (and superset) the final position's
        # stream differently from the modified Dijkstra; consumed
        # offsets in the payload address that stream, so restoring with
        # CH disabled would silently misalign them.
        raise SessionDecodeError(
            "session was checkpointed with contraction-hierarchy "
            "candidate streams (use_contraction=true) but CH is "
            "disabled in this process (REPRO_DISABLE_CH / "
            "set_ch_enabled); stream offsets would not line up",
            field="options",
        )
    search = BSSRSearch(
        network, query, aggregator, options, checkpointable=True
    )
    state_payload = _require(payload, "state", dict, where="search")
    state = search.state
    n = query.size

    state.k = _require(state_payload, "k", int, where="search.state")
    state.serial = _require(state_payload, "serial", int, where="search.state")
    state.resumes = _require(
        state_payload, "resumes", int, where="search.state"
    )

    archive_routes = [
        route_from_dict(entry, where="search.state.archive")
        for entry in _require(
            state_payload, "archive", list, where="search.state"
        )
    ]
    state.archive = {route.pois: route for route in archive_routes}

    # Restore the skyband member-for-member (in its stored length-sorted
    # order) instead of re-deriving it from the archive: replaying the
    # final member list through update() reproduces the exact internal
    # entry list, including equal-score representatives.
    band = _ArchivingSkyband(state.k, state.archive)
    for entry in _require(state_payload, "skyband", list, where="search.state"):
        band.update(route_from_dict(entry, where="search.state.skyband"))
    band.updates = 0
    band.rejects = 0
    state.skyband = band

    state.deferred = [
        _Deferred(
            route=_partial_from_dict(
                _require(entry, "route", dict, where="search.state.deferred"),
                aggregator,
                n,
                where="search.state.deferred",
            ),
            consumed=_require(
                entry, "consumed", int, where="search.state.deferred"
            ),
        )
        for entry in _require(
            state_payload, "deferred", list, where="search.state"
        )
    ]

    # Queue priorities are a pure function of the route under the
    # configured policy; the serial tiebreak makes the heap order total,
    # so recomputing them restores the exact pop sequence.
    queue = []
    for entry in _require(state_payload, "queue", list, where="search.state"):
        route = _partial_from_dict(
            _require(entry, "route", dict, where="search.state.queue"),
            aggregator,
            n,
            where="search.state.queue",
        )
        queue.append(
            (
                search._priority(route),
                _require(entry, "serial", int, where="search.state.queue"),
                route,
                _require(entry, "consumed", int, where="search.state.queue"),
            )
        )
    heapq.heapify(queue)
    state.queue = queue

    bounds_payload = state_payload.get("bounds", _MISSING)
    if bounds_payload is _MISSING:
        raise SessionDecodeError(
            "search.state is missing required field 'bounds'", field="bounds"
        )
    state.bounds = bounds_from_dict(bounds_payload)
    if state.bounds is not None:
        search.bounds = state.bounds

    cache: dict[tuple[int, int], PoICandidateSearch] = {}
    for entry in _require(state_payload, "cache", list, where="search.state"):
        source = _require(entry, "source", int, where="search.state.cache")
        position = _require(
            entry, "position", int, where="search.state.cache"
        )

        def rebuild(entry=entry, position=position):
            return PoICandidateSearch.from_dict(
                entry["search"],
                network,
                query.specs[position],
                stats=search.stats,
            )

        cache[(source, position)] = _decoding("search.state.cache", rebuild)
    state.cache = cache

    search._started = _require(payload, "started", bool, where="search")
    search._first_radius_recorded = _require(
        payload, "first_radius_recorded", bool, where="search"
    )
    # Reverse distances to the destination are deterministic, so they
    # are recomputed instead of shipped (run() computes them itself for
    # a not-yet-started search).  _make_dest_dist keeps the oracle type
    # (eager dict vs lazy CH oracle) matching a live search's.
    if search._started and query.destination is not None:
        state.dest_dist = search._make_dest_dist()
    return search


# ---------------------------------------------------------------------------
# planning sessions


def _serializable_categories(categories: list) -> list:
    out = []
    for item in categories:
        if isinstance(item, bool) or not isinstance(item, (int, str)):
            raise SessionEncodeError(
                "only sessions over plain category sequences (names or "
                f"ids) are serializable; got {item!r} — predicate "
                "requirements have no JSON form"
            )
        out.append(item)
    return out


def _page_to_dict(page) -> dict:
    return {
        "number": page.number,
        "first_rank": page.first_rank,
        "resumed": page.resumed,
        "exhausted": page.exhausted,
        "routes": [route_to_dict(r) for r in page.routes],
        "stats": page.stats.to_dict(),
    }


def _page_from_dict(payload: dict):
    from repro.core.session import Page

    return Page(
        number=_require(payload, "number", int, where="pages"),
        routes=[
            route_from_dict(entry, where="pages.routes")
            for entry in _require(payload, "routes", list, where="pages")
        ],
        first_rank=_require(payload, "first_rank", int, where="pages"),
        stats=_decoding(
            "pages.stats",
            lambda: SearchStats.from_dict(
                _require(payload, "stats", dict, where="pages")
            ),
        ),
        resumed=_require(payload, "resumed", bool, where="pages"),
        exhausted=_require(payload, "exhausted", bool, where="pages"),
    )


def session_to_dict(session: "PlanningSession") -> dict:
    """Serialize a session to a versioned JSON-compatible dict."""
    destination = session.compiled.destination
    return {
        "format": SESSION_FORMAT,
        "version": SCHEMA_VERSION,
        "aggregator": session.engine.aggregator.name,
        "query": {
            "start": session.compiled.start,
            "categories": _serializable_categories(session.categories),
            "destination": destination,
        },
        "page_size": session.page_size,
        "diversity_lambda": session.diversity_lambda,
        "horizon": session._horizon,
        "served": [route_to_dict(r) for r in session._served],
        "pages": [_page_to_dict(page) for page in session.pages],
        "search": search_to_dict(session._search),
    }


def session_from_dict(
    engine: "SkySREngine", payload: dict
) -> "PlanningSession":
    """Restore a session against ``engine`` (strict, versioned).

    ``engine`` must serve the same dataset (network + forest) and
    aggregator the session was created over; dataset provenance is the
    caller's contract (the CLI records preset/scale/seed alongside the
    payload).  Raises :class:`~repro.errors.SessionDecodeError` naming
    the offending field for any malformed or version-incompatible
    payload.
    """
    from repro.core.diversity import validate_lambda
    from repro.core.session import PlanningSession

    fmt = _require(payload, "format", str)
    if fmt != SESSION_FORMAT:
        raise SessionDecodeError(
            f"payload format {fmt!r} is not {SESSION_FORMAT!r}",
            field="format",
        )
    version = _require(payload, "version", int)
    if version != SCHEMA_VERSION:
        raise SessionDecodeError(
            f"unsupported session schema version {version}; this library "
            f"reads version {SCHEMA_VERSION} only (forward-compatible "
            "payloads are rejected, not guessed at)",
            field="version",
        )
    aggregator_name = _require(payload, "aggregator", str)
    if aggregator_name != engine.aggregator.name:
        raise SessionDecodeError(
            f"session was recorded under aggregator {aggregator_name!r} "
            f"but the engine uses {engine.aggregator.name!r}",
            field="aggregator",
        )

    query = _require(payload, "query", dict)
    start = _require(query, "start", int, where="query")
    categories_payload = _require(query, "categories", list, where="query")
    categories: list = []
    for item in categories_payload:
        if isinstance(item, bool) or not isinstance(item, (int, str)):
            raise SessionDecodeError(
                f"query.categories entries must be names or ids, got "
                f"{item!r}",
                field="categories",
            )
        categories.append(item)
    destination = _require(query, "destination", (int, type(None)), where="query")

    page_size = _require(payload, "page_size", int)
    if page_size < 1:
        raise SessionDecodeError(
            f"page_size must be >= 1, got {page_size}", field="page_size"
        )
    diversity_lambda = _require(payload, "diversity_lambda", (int, float))
    _decoding(
        "diversity_lambda", lambda: validate_lambda(float(diversity_lambda))
    )

    session = object.__new__(PlanningSession)
    session.engine = engine
    session.page_size = page_size
    session.diversity_lambda = float(diversity_lambda)
    session.categories = categories
    session.compiled = engine.compile(
        start, categories, destination=destination
    )
    session._search = search_from_dict(
        engine.network,
        session.compiled,
        engine.aggregator,
        _require(payload, "search", dict),
    )
    # Rejoin the engine's cross-query cache (never serialized — cache
    # membership is a property of the serving engine, not the session).
    session._search.shared_cache = engine.distance_cache
    session.pages = [
        _page_from_dict(entry)
        for entry in _require(payload, "pages", list)
    ]
    session._served = [
        route_from_dict(entry, where="served")
        for entry in _require(payload, "served", list)
    ]
    session._served_scores = {r.scores() for r in session._served}
    session._horizon = _require(payload, "horizon", int)
    return session


# ---------------------------------------------------------------------------
# JSON text round-trip


def dumps_session(session: "PlanningSession", *, indent: int | None = None) -> str:
    """Session → JSON text (the at-rest form of :mod:`repro.store`)."""
    return json.dumps(session_to_dict(session), indent=indent)


def loads_session(engine: "SkySREngine", text: str) -> "PlanningSession":
    """JSON text → session, with corrupted/truncated input reported as
    a typed :class:`~repro.errors.SessionDecodeError` (field
    ``"<json>"``), never a bare ``json.JSONDecodeError``."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SessionDecodeError(
            f"corrupted session payload: not valid JSON ({exc})",
            field="<json>",
        ) from exc
    if not isinstance(payload, dict):
        raise SessionDecodeError(
            "session payload must be a JSON object, got "
            f"{type(payload).__name__}",
            field="<json>",
        )
    return session_from_dict(engine, payload)
