"""The modified Dijkstra algorithm (Algorithm 2) as a resumable search.

:class:`PoICandidateSearch` expands the road network outward from a
source vertex and *emits candidates*: PoI vertices that semantically
match one position spec and survive Lemma 5.5's two filters —

* (i) a PoI reached through another usable PoI of greater-or-equal
  similarity is suppressed (the route through it is dominated by the
  substitution route);
* (ii) traversal never continues *through* a usable perfect match
  (anything beyond is dominated by the route using that PoI).

"Usable" means not excluded — a PoI already on the route being extended
can neither be emitted nor justify a substitution (Definition 3.4
requires distinct PoIs), so excluded PoIs are transparent to both
filters.

The search is *resumable*: it settles vertices in distance order and
pauses when the consumer's budget (Lemma 5.3's threshold, re-evaluated
continuously as the skyline set improves) is reached.  BSSR's
on-the-fly cache (Section 5.3.4) keeps one instance per
``(source, position)`` and simply resumes it when a later route needs a
larger radius — reuse never sacrifices exactness.  Route-independent
caching is only used when query positions draw candidates from disjoint
category trees; otherwise BSSR builds throw-away instances with
per-route exclusions (still exact, no reuse).
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Iterator

from repro.core.spec import PositionSpec
from repro.core.stats import SearchStats
from repro.graph.road_network import RoadNetwork


class PoICandidateSearch:
    """Resumable modified Dijkstra toward one position's candidates."""

    __slots__ = (
        "_network",
        "_spec",
        "source",
        "_exclude",
        "_stats",
        "_dist",
        "_path_sim",
        "_settled",
        "_heap",
        "candidates",
        "radius",
    )

    def __init__(
        self,
        network: RoadNetwork,
        spec: PositionSpec,
        source: int,
        *,
        exclude: frozenset[int] = frozenset(),
        stats: SearchStats | None = None,
    ) -> None:
        self._network = network
        self._spec = spec
        self.source = source
        self._exclude = exclude
        self._stats = stats
        self._dist: dict[int, float] = {source: 0.0}
        # max similarity of any usable PoI strictly on the recorded
        # shortest path from the source (Lemma 5.5 i)
        self._path_sim: dict[int, float] = {source: 0.0}
        self._settled: set[int] = set()
        self._heap: list[tuple[float, int]] = [(0.0, source)]
        #: emitted candidates ``(distance, vid, similarity)`` in distance order
        self.candidates: list[tuple[float, int, float]] = []
        #: largest settled distance (the Table 7 "weight sum" proxy)
        self.radius = 0.0

    # ------------------------------------------------------------------
    # low-level stepping
    # ------------------------------------------------------------------

    def _skim(self) -> None:
        heap = self._heap
        settled = self._settled
        while heap and heap[0][1] in settled:
            heapq.heappop(heap)

    def next_distance(self) -> float:
        """Distance of the next settle (inf when exhausted)."""
        self._skim()
        return self._heap[0][0] if self._heap else math.inf

    @property
    def exhausted(self) -> bool:
        return self.next_distance() == math.inf

    def _settle_one(self) -> None:
        """Settle the next vertex: emit, maybe stop-through, relax.

        Per-vertex state (tentative distance, path similarity) is
        released once a vertex settles — cached searches live for a
        whole BSSR run (Section 5.3.4), so they keep only what a resume
        can still read: the frontier and the emitted candidates.
        """
        d, u = heapq.heappop(self._heap)
        settled = self._settled
        settled.add(u)
        self._dist.pop(u, None)
        path_sim = self._path_sim.pop(u, 0.0)
        self.radius = d
        stats = self._stats
        if stats is not None:
            stats.settled += 1
        sim = self._spec.sim_map.get(u)
        usable = sim is not None and u not in self._exclude
        if usable and sim > path_sim:  # type: ignore[operator]
            self.candidates.append((d, u, sim))  # type: ignore[arg-type]
        if usable and sim >= 1.0:  # type: ignore[operator]
            return  # Lemma 5.5 (ii): never traverse through a perfect match
        through = path_sim
        if usable and sim > through:  # type: ignore[operator]
            through = sim  # type: ignore[assignment]
        dist = self._dist
        heap = self._heap
        path_sims = self._path_sim
        for v, w in self._network.neighbors(u):
            if stats is not None:
                stats.relaxed += 1
            if v in settled:
                continue
            nd = d + w
            old = dist.get(v, math.inf)
            if nd < old:
                dist[v] = nd
                path_sims[v] = through
                heapq.heappush(heap, (nd, v))
                if stats is not None:
                    stats.heap_pushes += 1
            elif nd == old and through < path_sims.get(v, 0.0):
                # Equal-length tie: remember the cleanest path so fewer
                # candidates are suppressed (either choice is exact).
                path_sims[v] = through

    # ------------------------------------------------------------------
    # consumer interface
    # ------------------------------------------------------------------

    def candidates_until(
        self, budget: Callable[[], float] | float, *, start: int = 0
    ) -> Iterator[tuple[float, int, float]]:
        """Yield candidates with distance < budget, expanding on demand.

        ``budget`` may be a callable: BSSR's threshold tightens while
        the search runs (skyline updates shrink it), and a cached search
        serves consumers with different budgets.  Already-discovered
        candidates are replayed first; the underlying Dijkstra resumes
        only when the budget allows settling farther vertices.

        ``start`` skips the first ``start`` candidates of the stream —
        a consumer that previously stopped after consuming that many
        (the checkpoint/resume machinery of
        :class:`~repro.core.bssr.SearchState`) continues exactly where
        it left off.  Candidate order is deterministic (distance, then
        the heap's vertex-id tie-break), so the offset is meaningful
        even on a freshly rebuilt search instance.
        """
        budget_fn: Callable[[], float] = (
            budget if callable(budget) else (lambda: budget)  # type: ignore[assignment]
        )
        i = start
        while True:
            while i < len(self.candidates):
                entry = self.candidates[i]
                if entry[0] >= budget_fn():
                    return
                yield entry
                i += 1
            nxt = self.next_distance()
            if nxt == math.inf or nxt >= budget_fn():
                return
            self._settle_one()

    def expand_fully(self) -> None:
        """Exhaust the search (used by tests and ablations)."""
        while not self.exhausted:
            self._settle_one()

    # ------------------------------------------------------------------
    # durable checkpoints
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-compatible snapshot of a *cached* search.

        Only route-independent instances are cacheable (BSSR builds
        throw-away searches for per-route exclusions), so an exclusion
        set here means the caller is serializing something that should
        never have reached a durable checkpoint.
        """
        from repro.errors import SessionEncodeError

        if self._exclude:
            raise SessionEncodeError(
                "candidate searches with per-route exclusions are "
                "route-local and cannot be checkpointed"
            )
        return {
            "source": self.source,
            "dist": [[v, d] for v, d in self._dist.items()],
            "path_sim": [[v, s] for v, s in self._path_sim.items()],
            "settled": sorted(self._settled),
            "heap": [[d, v] for d, v in self._heap],
            "candidates": [[d, v, s] for d, v, s in self.candidates],
            "radius": self.radius,
        }

    @classmethod
    def from_dict(
        cls,
        payload: dict,
        network: RoadNetwork,
        spec: PositionSpec,
        *,
        stats: SearchStats | None = None,
    ) -> "PoICandidateSearch":
        """Rebuild a cached search exactly: same frontier, same settled
        set, same emitted candidate stream (hence the same deterministic
        ``candidates_until`` replay offsets)."""
        search = cls(network, spec, int(payload["source"]), stats=stats)
        search._dist = {int(v): float(d) for v, d in payload["dist"]}
        search._path_sim = {
            int(v): float(s) for v, s in payload["path_sim"]
        }
        search._settled = {int(v) for v in payload["settled"]}
        search._heap = [(float(d), int(v)) for d, v in payload["heap"]]
        heapq.heapify(search._heap)
        search.candidates = [
            (float(d), int(v), float(s)) for d, v, s in payload["candidates"]
        ]
        search.radius = float(payload["radius"])
        return search
