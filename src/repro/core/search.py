"""The modified Dijkstra algorithm (Algorithm 2) as a resumable search.

:class:`PoICandidateSearch` expands the road network outward from a
source vertex and *emits candidates*: PoI vertices that semantically
match one position spec and survive Lemma 5.5's two filters —

* (i) a PoI reached through another usable PoI of greater-or-equal
  similarity is suppressed (the route through it is dominated by the
  substitution route);
* (ii) traversal never continues *through* a usable perfect match
  (anything beyond is dominated by the route using that PoI).

"Usable" means not excluded — a PoI already on the route being extended
can neither be emitted nor justify a substitution (Definition 3.4
requires distinct PoIs), so excluded PoIs are transparent to both
filters.

The search is *resumable*: it settles vertices in distance order and
pauses when the consumer's budget (Lemma 5.3's threshold, re-evaluated
continuously as the skyline set improves) is reached.  BSSR's
on-the-fly cache (Section 5.3.4) keeps one instance per
``(source, position)`` and simply resumes it when a later route needs a
larger radius — reuse never sacrifices exactness.  Route-independent
caching is only used when query positions draw candidates from disjoint
category trees; otherwise BSSR builds throw-away instances with
per-route exclusions (still exact, no reuse).

Like the plain Dijkstra flavors, the expansion loop has two backends:
the original dict-based one and a CSR kernel over flat adjacency
arrays (:mod:`repro.graph.csr`), selected at construction time.  Both
relax edges in the same order and count stats identically, so emitted
candidate streams — and serialized checkpoints — are bit-identical
(``tests/test_csr.py`` pins this).
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Iterator

from repro.core.spec import PositionSpec
from repro.core.stats import SearchStats
from repro.graph.csr import flat_adjacency
from repro.graph.road_network import RoadNetwork


class CHCandidateStream:
    """A final-position candidate stream served from a CH label row.

    With contraction hierarchies enabled, the *last* position's
    expansion does not need the modified Dijkstra at all: the exact
    one-to-many row from the route's endpoint to the position's full
    candidate set (one memoized label scan) is emitted sorted by
    ``(distance, vertex)`` — the heap's own tie-break.  No road-graph
    vertex is settled, so final-leg expansion cost stops scaling with
    the settle radius.

    Exactness: Lemma 5.5's filters only ever suppress *dominated*
    candidates, so emitting the unfiltered superset is skyline-exact —
    suppressed completions now lose inside the skyband instead of never
    being scored.  Distances are true shortest-path values (a
    modified-Dijkstra distance can exceed them when the shortest path
    runs through a perfect match; either way the completion is
    dominated by the route using that match, which is also scored).
    With ``k`` > 1 the relaxed skyband may therefore retain an
    alternative the substitution filters would have collapsed — the
    skyline level is identical, the alternatives are equivalent
    substitutions.

    The interface mirrors the consumer-facing subset of
    :class:`PoICandidateSearch` (``scored_until`` / ``candidates`` /
    ``exhausted`` / ``radius``), and ``start`` offsets address this
    stream's deterministic order — checkpoints written over CH streams
    are only restorable with CH enabled (serialization guards this).
    """

    __slots__ = ("candidates", "radius")

    #: the row is complete by construction; only budgets cut it short
    exhausted = True

    def __init__(self, entries: list[tuple[float, int, float]]) -> None:
        self.candidates = entries
        self.radius = entries[-1][0] if entries else 0.0

    def scored_until(
        self,
        budget: Callable[[], float] | float,
        *,
        start: int = 0,
        leg=None,
    ) -> Iterator[tuple[float, int, float, float]]:
        budget_fn: Callable[[], float] = (
            budget if callable(budget) else (lambda: budget)  # type: ignore[assignment]
        )
        get = leg.get if leg is not None else None
        candidates = self.candidates
        for i in range(start, len(candidates)):
            d, vid, sim = candidates[i]
            if d >= budget_fn():
                return
            yield d, vid, sim, 0.0 if get is None else get(vid, math.inf)


class PoICandidateSearch:
    """Resumable modified Dijkstra toward one position's candidates."""

    __slots__ = (
        "_network",
        "_spec",
        "source",
        "_exclude",
        "_stats",
        "_flat",
        "_dist",
        "_path_sim",
        "_settled",
        "_touched",
        "_heap",
        "candidates",
        "radius",
    )

    def __init__(
        self,
        network: RoadNetwork,
        spec: PositionSpec,
        source: int,
        *,
        exclude: frozenset[int] = frozenset(),
        stats: SearchStats | None = None,
    ) -> None:
        self._network = network
        self._spec = spec
        self.source = source
        self._exclude = exclude
        self._stats = stats
        self._flat = flat_adjacency(network)
        if self._flat is not None:
            n = self._flat[0]
            self._dist: list[float] | dict[int, float] = [math.inf] * n
            self._dist[source] = 0.0
            # max similarity of any usable PoI strictly on the recorded
            # shortest path from the source (Lemma 5.5 i)
            self._path_sim: list[float] | dict[int, float] = [0.0] * n
            self._settled: bytearray | set[int] = bytearray(n)
            # vertices whose labels went finite, in discovery order;
            # settled ones are filtered out at serialization time to
            # match the dict backend (which pops labels on settle)
            self._touched: list[int] | None = [source]
        else:
            self._dist = {source: 0.0}
            self._path_sim = {source: 0.0}
            self._settled = set()
            self._touched = None
        self._heap: list[tuple[float, int]] = [(0.0, source)]
        #: emitted candidates ``(distance, vid, similarity)`` in distance order
        self.candidates: list[tuple[float, int, float]] = []
        #: largest settled distance (the Table 7 "weight sum" proxy)
        self.radius = 0.0

    def adopt_stats(self, stats: SearchStats | None) -> None:
        """Re-point instrumentation at a different stats sink.

        A search shared across queries (:mod:`repro.core.distcache`)
        charges its work to whichever consumer is currently driving it.
        """
        self._stats = stats

    # ------------------------------------------------------------------
    # low-level stepping
    # ------------------------------------------------------------------

    def _skim(self) -> None:
        heap = self._heap
        settled = self._settled
        if self._flat is not None:
            while heap and settled[heap[0][1]]:
                heapq.heappop(heap)
        else:
            while heap and heap[0][1] in settled:
                heapq.heappop(heap)

    def next_distance(self) -> float:
        """Distance of the next settle (inf when exhausted)."""
        self._skim()
        return self._heap[0][0] if self._heap else math.inf

    @property
    def exhausted(self) -> bool:
        return self.next_distance() == math.inf

    def _settle_one(self) -> None:
        """Settle the next vertex: emit, maybe stop-through, relax.

        In the dict backend, per-vertex state (tentative distance, path
        similarity) is released once a vertex settles — cached searches
        live for a whole BSSR run (Section 5.3.4), so they keep only
        what a resume can still read: the frontier and the emitted
        candidates.  The flat backend keeps O(|V|) arrays instead and
        filters settled entries out at checkpoint time.
        """
        d, u = heapq.heappop(self._heap)
        self.radius = d
        stats = self._stats
        if stats is not None:
            stats.settled += 1
        if self._flat is not None:
            _, indptr, indices, weights = self._flat
            settled = self._settled
            settled[u] = 1
            path_sim = self._path_sim[u]
            sim = self._spec.sim_map.get(u)
            usable = sim is not None and u not in self._exclude
            if usable and sim > path_sim:  # type: ignore[operator]
                self.candidates.append((d, u, sim))  # type: ignore[arg-type]
            if usable and sim >= 1.0:  # type: ignore[operator]
                return  # Lemma 5.5 (ii): never traverse through a perfect match
            through = path_sim
            if usable and sim > through:  # type: ignore[operator]
                through = sim  # type: ignore[assignment]
            dist = self._dist
            heap = self._heap
            path_sims = self._path_sim
            touched = self._touched
            push = heapq.heappush
            inf = math.inf
            for i in range(indptr[u], indptr[u + 1]):
                if stats is not None:
                    stats.relaxed += 1
                v = indices[i]
                if settled[v]:
                    continue
                nd = d + weights[i]
                old = dist[v]
                if nd < old:
                    if old == inf:
                        touched.append(v)  # type: ignore[union-attr]
                    dist[v] = nd
                    path_sims[v] = through
                    push(heap, (nd, v))
                    if stats is not None:
                        stats.heap_pushes += 1
                elif nd == old and through < path_sims[v]:
                    # Equal-length tie: remember the cleanest path so
                    # fewer candidates are suppressed (either choice is
                    # exact).
                    path_sims[v] = through
            return
        settled = self._settled
        settled.add(u)
        self._dist.pop(u, None)
        path_sim = self._path_sim.pop(u, 0.0)
        sim = self._spec.sim_map.get(u)
        usable = sim is not None and u not in self._exclude
        if usable and sim > path_sim:  # type: ignore[operator]
            self.candidates.append((d, u, sim))  # type: ignore[arg-type]
        if usable and sim >= 1.0:  # type: ignore[operator]
            return  # Lemma 5.5 (ii): never traverse through a perfect match
        through = path_sim
        if usable and sim > through:  # type: ignore[operator]
            through = sim  # type: ignore[assignment]
        dist = self._dist
        heap = self._heap
        path_sims = self._path_sim
        for v, w in self._network.neighbors(u):
            if stats is not None:
                stats.relaxed += 1
            if v in settled:
                continue
            nd = d + w
            old = dist.get(v, math.inf)
            if nd < old:
                dist[v] = nd
                path_sims[v] = through
                heapq.heappush(heap, (nd, v))
                if stats is not None:
                    stats.heap_pushes += 1
            elif nd == old and through < path_sims.get(v, 0.0):
                # Equal-length tie: remember the cleanest path so fewer
                # candidates are suppressed (either choice is exact).
                path_sims[v] = through

    # ------------------------------------------------------------------
    # consumer interface
    # ------------------------------------------------------------------

    def candidates_until(
        self, budget: Callable[[], float] | float, *, start: int = 0
    ) -> Iterator[tuple[float, int, float]]:
        """Yield candidates with distance < budget, expanding on demand.

        ``budget`` may be a callable: BSSR's threshold tightens while
        the search runs (skyline updates shrink it), and a cached search
        serves consumers with different budgets.  Already-discovered
        candidates are replayed first; the underlying Dijkstra resumes
        only when the budget allows settling farther vertices.

        ``start`` skips the first ``start`` candidates of the stream —
        a consumer that previously stopped after consuming that many
        (the checkpoint/resume machinery of
        :class:`~repro.core.bssr.SearchState`) continues exactly where
        it left off.  Candidate order is deterministic (distance, then
        the heap's vertex-id tie-break), so the offset is meaningful
        even on a freshly rebuilt search instance.
        """
        budget_fn: Callable[[], float] = (
            budget if callable(budget) else (lambda: budget)  # type: ignore[assignment]
        )
        if self._flat is not None:
            yield from self._candidates_until_flat(budget_fn, start)
            return
        i = start
        while True:
            while i < len(self.candidates):
                entry = self.candidates[i]
                if entry[0] >= budget_fn():
                    return
                yield entry
                i += 1
            nxt = self.next_distance()
            if nxt == math.inf or nxt >= budget_fn():
                return
            self._settle_one()

    def scored_until(
        self,
        budget: Callable[[], float] | float,
        *,
        start: int = 0,
        leg=None,
    ) -> Iterator[tuple[float, int, float, float]]:
        """:meth:`candidates_until` plus the consumer's extra-leg score.

        Yields ``(distance, vid, path_sim, extra)`` where ``extra`` is
        ``leg.get(vid, inf)`` — the final-position destination leg of
        BSSR's expansion, from any ``.get``-able mapping (an eager
        Dijkstra dict or the lazy
        :class:`~repro.graph.contraction.CHDistanceOracle`) — or ``0.0``
        without a ``leg``.  Centralizing the lookup keeps candidate
        scoring behind one seam; the stream and its budget/offset
        semantics are untouched (pop-identical).
        """
        if leg is None:
            for d, vid, sim in self.candidates_until(budget, start=start):
                yield d, vid, sim, 0.0
        else:
            get = leg.get
            for d, vid, sim in self.candidates_until(budget, start=start):
                yield d, vid, sim, get(vid, math.inf)

    def _candidates_until_flat(
        self, budget_fn: Callable[[], float], start: int
    ) -> Iterator[tuple[float, int, float]]:
        """The CSR fast path of :meth:`candidates_until`.

        Semantically identical to the generic loop (same settles, same
        stats, same stream), but the settle machinery runs inline with
        every array in a local.  The budget is re-evaluated only at
        yield points: between two yields this generator is the only
        code running, so nothing can tighten the threshold mid-segment.
        Stats are flushed before every yield and return, so a consumer
        (or an abandoned generator) never observes partial counts.
        """
        _, indptr, indices, weights = self._flat  # type: ignore[misc]
        sim_of = self._spec.sim_map.get
        exclude = self._exclude
        dist = self._dist
        path_sims = self._path_sim
        settled = self._settled
        heap = self._heap
        touched = self._touched
        candidates = self.candidates
        push = heapq.heappush
        pop = heapq.heappop
        inf = math.inf
        i = start
        while True:
            limit = budget_fn()
            while i < len(candidates):
                entry = candidates[i]
                if entry[0] >= limit:
                    return
                yield entry
                i += 1
                limit = budget_fn()
            # settle until a new candidate is emitted (each settle can
            # emit at most the vertex it settles) or the budget is hit
            stats = self._stats  # adopt_stats only happens between yields
            settled_n = relaxed_n = pushes_n = 0
            emitted = False
            while True:
                while heap and settled[heap[0][1]]:
                    pop(heap)
                if not heap or heap[0][0] >= limit:
                    if stats is not None:
                        stats.settled += settled_n
                        stats.relaxed += relaxed_n
                        stats.heap_pushes += pushes_n
                    return
                d, u = pop(heap)
                settled[u] = 1
                settled_n += 1
                self.radius = d
                path_sim = path_sims[u]
                sim = sim_of(u)
                if sim is not None and u not in exclude:
                    if sim > path_sim:
                        candidates.append((d, u, sim))
                        emitted = True
                    if sim >= 1.0:
                        if emitted:
                            break
                        continue  # Lemma 5.5 (ii): no traversal through
                    through = sim if sim > path_sim else path_sim
                else:
                    through = path_sim
                lo = indptr[u]
                hi = indptr[u + 1]
                relaxed_n += hi - lo
                for j in range(lo, hi):
                    v = indices[j]
                    if settled[v]:
                        continue
                    nd = d + weights[j]
                    old = dist[v]
                    if nd < old:
                        if old == inf:
                            touched.append(v)  # type: ignore[union-attr]
                        dist[v] = nd
                        path_sims[v] = through
                        push(heap, (nd, v))
                        pushes_n += 1
                    elif nd == old and through < path_sims[v]:
                        path_sims[v] = through
                if emitted:
                    break
            if stats is not None:
                stats.settled += settled_n
                stats.relaxed += relaxed_n
                stats.heap_pushes += pushes_n

    def expand_fully(self) -> None:
        """Exhaust the search (used by tests and ablations)."""
        while not self.exhausted:
            self._settle_one()

    # ------------------------------------------------------------------
    # durable checkpoints
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-compatible snapshot of a *cached* search.

        Only route-independent instances are cacheable (BSSR builds
        throw-away searches for per-route exclusions), so an exclusion
        set here means the caller is serializing something that should
        never have reached a durable checkpoint.

        Label entries are emitted sorted by vertex id, so the payload is
        identical whichever backend produced it — a checkpoint written
        under CSR restores bit-exactly on the dict backend and vice
        versa.
        """
        from repro.errors import SessionEncodeError

        if self._exclude:
            raise SessionEncodeError(
                "candidate searches with per-route exclusions are "
                "route-local and cannot be checkpointed"
            )
        if self._flat is not None:
            assert self._touched is not None
            live = sorted(
                v for v in self._touched if not self._settled[v]
            )
            dist_rows = [[v, self._dist[v]] for v in live]
            sim_rows = [[v, self._path_sim[v]] for v in live]
            settled_rows = sorted(
                v for v in self._touched if self._settled[v]
            )
        else:
            dist_rows = [[v, self._dist[v]] for v in sorted(self._dist)]
            sim_rows = [
                [v, self._path_sim[v]] for v in sorted(self._path_sim)
            ]
            settled_rows = sorted(self._settled)
        return {
            "source": self.source,
            "dist": dist_rows,
            "path_sim": sim_rows,
            "settled": settled_rows,
            "heap": [[d, v] for d, v in self._heap],
            "candidates": [[d, v, s] for d, v, s in self.candidates],
            "radius": self.radius,
        }

    @classmethod
    def from_dict(
        cls,
        payload: dict,
        network: RoadNetwork,
        spec: PositionSpec,
        *,
        stats: SearchStats | None = None,
    ) -> "PoICandidateSearch":
        """Rebuild a cached search exactly: same frontier, same settled
        set, same emitted candidate stream (hence the same deterministic
        ``candidates_until`` replay offsets)."""
        search = cls(network, spec, int(payload["source"]), stats=stats)
        if search._flat is not None:
            n = search._flat[0]
            dist = [math.inf] * n
            path_sim = [0.0] * n
            settled = bytearray(n)
            touched: list[int] = []
            for v, d in payload["dist"]:
                v = int(v)
                dist[v] = float(d)
                touched.append(v)
            for v, s in payload["path_sim"]:
                path_sim[int(v)] = float(s)
            for v in payload["settled"]:
                # settled labels were dropped at checkpoint time; the
                # settled flag alone is what resumes consult
                v = int(v)
                settled[v] = 1
                touched.append(v)
            search._dist = dist
            search._path_sim = path_sim
            search._settled = settled
            search._touched = touched
        else:
            search._dist = {int(v): float(d) for v, d in payload["dist"]}
            search._path_sim = {
                int(v): float(s) for v, s in payload["path_sim"]
            }
            search._settled = {int(v) for v in payload["settled"]}
        search._heap = [(float(d), int(v)) for d, v in payload["heap"]]
        heapq.heapify(search._heap)
        search.candidates = [
            (float(d), int(v), float(s)) for d, v, s in payload["candidates"]
        ]
        search.radius = float(payload["radius"])
        return search
