"""Skyline / k-skyband dominance and the sequenced-route result sets.

Implements Definition 4.1 (dominance / equivalence), Definition 4.2
(the minimal set ``S``), and Definition 5.4 (the length-score threshold
``l̄(R)`` used by the branch-and-bound pruning of Lemma 5.3).

For the top-k subsystem the skyline is generalized to the **k-skyband**
(routes dominated by fewer than ``k`` other routes, exact score
duplicates collapsed): :class:`SkybandSet` maintains it incrementally,
and :class:`SkylineSet` is exactly the ``k = 1`` instance — the
evolving minimal set of the paper.  The generalized threshold (the
``k``-th smallest length among members at or below a semantic level)
keeps every BSSR pruning rule sound: a partial route is discarded only
when *all* of its completions would be rejected by :meth:`update`.

Both sets are tiny in practice (the paper measures skylines of ≤ 8
routes, Figure 6; the skyband is at most ~k× that), so sorted lists
with linear scans are both simple and fast.  Entries are kept sorted by
length ascending, semantic ascending; for ``k = 1`` the skyline
property makes semantic scores strictly descending across entries.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterator, Sequence

from repro.core.routes import SkylineRoute


def dominates(a: tuple[float, float], b: tuple[float, float]) -> bool:
    """Does score pair ``a = (l, s)`` dominate ``b`` (Definition 4.1)?

    True iff ``a`` is no worse on both axes and strictly better on one.
    """
    return a[0] <= b[0] and a[1] <= b[1] and (a[0] < b[0] or a[1] < b[1])


def equivalent(a: tuple[float, float], b: tuple[float, float]) -> bool:
    """Score-equivalent routes (same length and semantic score)."""
    return a[0] == b[0] and a[1] == b[1]


def skyline_filter(routes: list[SkylineRoute]) -> list[SkylineRoute]:
    """Minimal skyline set of an arbitrary route collection.

    Equivalent routes are collapsed to the one with lexicographically
    smallest PoI ids (the minimal-set rule of Definition 4.1, made
    deterministic).  Returns routes sorted by length ascending.
    """
    result = SkylineSet()
    for route in routes:
        result.update(route)
    return result.routes()


def skyband_filter(routes: list[SkylineRoute], k: int) -> list[SkylineRoute]:
    """The k-skyband of an arbitrary route collection, length ascending."""
    result = SkybandSet(k)
    for route in routes:
        result.update(route)
    return result.routes()


def dominance_depths(routes: Sequence[SkylineRoute]) -> list[int]:
    """Per-route count of other routes in the collection dominating it.

    Depth 0 is the skyline layer; a k-skyband contains exactly the
    routes of depth < k.  Quadratic, intended for the small result sets
    SkySR queries produce.
    """
    scores = [route.scores() for route in routes]
    return [
        sum(1 for other in scores if other is not mine and dominates(other, mine))
        for mine in scores
    ]


def rank_routes(
    routes: Sequence[SkylineRoute], k: int | None = None
) -> list[SkylineRoute]:
    """Rank alternatives: dominance depth, then length, then semantic,
    then lexicographic PoI ids.

    Rank 1 is therefore always the globally shortest route (nothing can
    dominate the minimum-length member), matching the single-answer
    BSSR presentation; deeper layers supply the "next best"
    alternatives.  ``k`` truncates the ranked list.

    The final ``pois`` component makes the order *total and
    deterministic*: equal-score routes (which can only coexist in the
    input when it was not dominance-collapsed) are presented in
    lexicographic PoI-id order, so ranked output never depends on
    enumeration order.  Because dominance depth is preserved under
    skyband widening (a dominator always has strictly smaller depth),
    this order is also *prefix-stable*: the top-k of a (k')-skyband
    ranking, k ≤ k', equals the full ranking of the k-skyband — the
    contract resumable pagination relies on.
    """
    depths = dominance_depths(routes)
    order = sorted(
        range(len(routes)),
        key=lambda i: (
            depths[i],
            routes[i].length,
            routes[i].semantic,
            routes[i].pois,
        ),
    )
    ranked = [routes[i] for i in order]
    return ranked if k is None else ranked[:k]


class SkybandSet:
    """The evolving k-skyband ``S_k`` of sequenced routes.

    A route is a member iff fewer than ``k`` members dominate it; exact
    score duplicates are collapsed to the lexicographically smallest
    PoI sequence, mirroring the minimal-set rule of Definition 4.1 with
    a deterministic, insertion-order-independent representative.
    ``k = 1`` reduces to the paper's skyline set (see
    :class:`SkylineSet`).

    Supports the three operations BSSR needs:

    * :meth:`update` — insert a candidate, dropping it if equivalent to
      a member or dominated by ``k`` of them, and evicting members the
      insertion pushes past ``k`` dominators (the Lemma 5.1 rule,
      generalized);
    * :meth:`threshold` — Definition 5.4's ``l̄``, generalized: the
      ``k``-th smallest length among members whose semantic score is ≤
      the probe's;
    * :meth:`dominated_or_equal` — Lemma 5.3's pruning test.
    """

    def __init__(self, k: int = 1) -> None:
        if k < 1:
            raise ValueError(f"skyband k must be >= 1, got {k}")
        self.k = k
        self._keys: list[tuple[float, float]] = []
        self._entries: list[SkylineRoute] = []
        #: number of successful insertions (for SearchStats)
        self.updates = 0
        #: number of rejected candidates
        self.rejects = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[SkylineRoute]:
        return iter(self._entries)

    def routes(self) -> list[SkylineRoute]:
        """Members sorted by length ascending (semantic ascending)."""
        return list(self._entries)

    def ranked(self, k: int | None = None) -> list[SkylineRoute]:
        """Members ranked for presentation (see :func:`rank_routes`)."""
        return rank_routes(self._entries, k)

    def update(self, route: SkylineRoute) -> bool:
        """Insert ``route`` unless equivalent to a member or dominated
        by ``k`` of them; True if kept.

        Equivalence collapse is deterministic: among equal-score
        routes the member with the lexicographically smallest ``pois``
        tuple is retained, so the surviving representative never
        depends on the order routes were discovered in.
        """
        key = (route.length, route.semantic)
        idx = bisect.bisect_left(self._keys, key)
        if idx < len(self._keys) and self._keys[idx] == key:
            # Equivalent member found: keep the lexicographically
            # smallest PoI sequence (deterministic tie-break), but the
            # candidate never *joins* the set.
            if route.pois < self._entries[idx].pois:
                self._entries[idx] = route
            self.rejects += 1
            return False
        if self.dominated_or_equal(route.length, route.semantic):
            self.rejects += 1
            return False
        self._keys.insert(idx, key)
        self._entries.insert(idx, route)
        # Only the newcomer gained anyone a dominator: recount members
        # it dominates and evict those now at >= k (scan is cheap: the
        # set stays tiny).
        evict = [
            i
            for i, other in enumerate(self._keys)
            if dominates(key, other) and self._dominator_count(i) >= self.k
        ]
        for i in reversed(evict):
            del self._keys[i]
            del self._entries[i]
        self.updates += 1
        return True

    def _dominator_count(self, idx: int) -> int:
        mine = self._keys[idx]
        return sum(
            1
            for i, other in enumerate(self._keys)
            if i != idx and dominates(other, mine)
        )

    def dominated_or_equal(self, length: float, semantic: float) -> bool:
        """Would :meth:`update` reject this score pair?

        True iff a member has exactly these scores (equivalence
        collapse) or ``k`` members dominate it.
        """
        dominators = 0
        for (other_l, other_s) in self._keys:
            if other_l > length:
                break  # sorted by length: nothing further can qualify
            if other_s > semantic:
                continue
            if other_l == length and other_s == semantic:
                return True
            dominators += 1
            if dominators >= self.k:
                return True
        return False

    def threshold(self, semantic: float) -> float:
        """Definition 5.4, generalized: the ``k``-th smallest length
        among members with ``s ≤ semantic``.

        A candidate at this length or more (and this semantic score or
        worse) is rejected by :meth:`update` — it is equivalent to or
        dominated by ``k`` members.  ``inf`` when fewer than ``k``
        members qualify (nothing can be pruned yet).
        """
        need = self.k
        for (length, other_s) in self._keys:
            if other_s <= semantic:
                need -= 1
                if need == 0:
                    return length
        return math.inf

    def perfect_route_length(self) -> float:
        """``l̄(ϕ)``: threshold at semantic score 0 (Algorithm 4 line 3)."""
        return self.threshold(0.0)

    def as_score_set(self) -> set[tuple[float, float]]:
        """Score pairs of all members (order-free comparison in tests)."""
        return set(self._keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(k={self.k}, {len(self._entries)} routes)"


class SkylineSet(SkybandSet):
    """The evolving minimal set ``S`` (Definition 4.2): the 1-skyband."""

    def __init__(self) -> None:
        super().__init__(1)
