"""Skyline dominance and the minimal sequenced-route set.

Implements Definition 4.1 (dominance / equivalence), Definition 4.2
(the minimal set ``S``), and Definition 5.4 (the length-score threshold
``l̄(R)`` used by the branch-and-bound pruning of Lemma 5.3).

The skyline set is tiny in practice (the paper measures ≤ 8 routes,
Figure 6), so a sorted list with linear scans is both simple and fast.
Entries are kept sorted by length ascending; because the set is a
skyline, semantic scores are then strictly descending.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterator

from repro.core.routes import SkylineRoute


def dominates(a: tuple[float, float], b: tuple[float, float]) -> bool:
    """Does score pair ``a = (l, s)`` dominate ``b`` (Definition 4.1)?

    True iff ``a`` is no worse on both axes and strictly better on one.
    """
    return a[0] <= b[0] and a[1] <= b[1] and (a[0] < b[0] or a[1] < b[1])


def equivalent(a: tuple[float, float], b: tuple[float, float]) -> bool:
    """Score-equivalent routes (same length and semantic score)."""
    return a[0] == b[0] and a[1] == b[1]


def skyline_filter(routes: list[SkylineRoute]) -> list[SkylineRoute]:
    """Minimal skyline set of an arbitrary route collection.

    Equivalent routes are collapsed to the first encountered (the
    minimal-set rule of Definition 4.1).  Returns routes sorted by
    length ascending.
    """
    result = SkylineSet()
    for route in routes:
        result.update(route)
    return result.routes()


class SkylineSet:
    """The evolving minimal set ``S`` of sequenced routes.

    Supports the three operations BSSR needs:

    * :meth:`update` — insert a candidate, dropping it if dominated or
      equivalent, and evicting members it dominates (Lemma 5.1);
    * :meth:`threshold` — Definition 5.4's ``l̄``: the smallest length
      among members whose semantic score is ≤ the probe's;
    * :meth:`dominated_or_equal` — Lemma 5.3's pruning test.
    """

    def __init__(self) -> None:
        self._lengths: list[float] = []
        self._entries: list[SkylineRoute] = []
        #: number of successful insertions (for SearchStats)
        self.updates = 0
        #: number of rejected candidates
        self.rejects = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[SkylineRoute]:
        return iter(self._entries)

    def routes(self) -> list[SkylineRoute]:
        """Members sorted by length ascending (semantic descending)."""
        return list(self._entries)

    def update(self, route: SkylineRoute) -> bool:
        """Insert ``route`` if it is not dominated/equivalent; True if kept."""
        if self.dominated_or_equal(route.length, route.semantic):
            self.rejects += 1
            return False
        # Evict members the new route dominates.  Members with smaller
        # length cannot be dominated (skyline ⇒ their semantic is larger
        # only if ours is... scan is cheap: the set stays tiny).
        keep_l: list[float] = []
        keep_e: list[SkylineRoute] = []
        for length, entry in zip(self._lengths, self._entries):
            if route.length <= length and route.semantic <= entry.semantic:
                continue  # dominated by the newcomer (equivalence was ruled out)
            keep_l.append(length)
            keep_e.append(entry)
        idx = bisect.bisect_left(keep_l, route.length)
        keep_l.insert(idx, route.length)
        keep_e.insert(idx, route)
        self._lengths, self._entries = keep_l, keep_e
        self.updates += 1
        return True

    def dominated_or_equal(self, length: float, semantic: float) -> bool:
        """Is the score pair dominated by or equivalent to a member?"""
        return self.threshold(semantic) <= length

    def threshold(self, semantic: float) -> float:
        """Definition 5.4: min length among members with ``s ≤ semantic``.

        ``inf`` when no such member exists (nothing can be pruned yet).
        Entries are sorted by length ascending, so the first entry with a
        small-enough semantic score is the minimum.
        """
        for length, entry in zip(self._lengths, self._entries):
            if entry.semantic <= semantic:
                return length
        return math.inf

    def perfect_route_length(self) -> float:
        """``l̄(ϕ)``: threshold at semantic score 0 (Algorithm 4 line 3)."""
        return self.threshold(0.0)

    def as_score_set(self) -> set[tuple[float, float]]:
        """Score pairs of all members (order-free comparison in tests)."""
        return {(r.length, r.semantic) for r in self._entries}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SkylineSet({len(self._entries)} routes)"
