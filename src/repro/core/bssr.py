"""The bulk SkySR algorithm — BSSR (Section 5, Algorithm 1).

BSSR finds all skyline sequenced routes in a single bulk search: a
priority queue ``Q_b`` of partial routes is repeatedly popped, and the
popped route is extended by every next-position candidate discovered by
the modified Dijkstra (Algorithm 2), under branch-and-bound pruning:

* **upper bounds** come from the evolving skyline set ``S`` (Lemma 5.1)
  — Definition 5.4's threshold ``l̄``;
* **lower bounds** come from Lemma 5.2 (monotone scores) plus the
  optional per-leg minimum distances of Section 5.3.3;
* Lemma 5.3 justifies discarding any route whose bounds cross.

All four optimizations of Section 5.3 are integrated and individually
toggleable via :class:`~repro.core.options.BSSROptions`:
NNinit seeding, the proposed queue priority, ``l_s``/``l_p`` lower
bounds with Lemma 5.8's perfect-match rule, and on-the-fly caching of
modified-Dijkstra expansions.

The implementation is exact for directed and undirected networks,
multi-category PoIs, arbitrary position requirements (predicates), any
similarity measure / aggregator pair satisfying the documented
monotonicity contracts, and optional destinations.

With :attr:`BSSROptions.k` > 1 the same search answers the **top-k**
sequenced route query (after Liu et al., *Finding Top-k Optimal
Sequenced Routes*, 2018): the evolving set ``S`` becomes the k-skyband
and every pruning threshold the k-th-smallest qualifying length, which
relaxes the bounds exactly enough to retain k ranked alternatives per
skyline level while preserving all Section 5.3 optimizations.

Checkpoint / resume
-------------------

The search state is explicit: :class:`SearchState` owns everything a
paused search needs to continue — the route queue, the evolving
skyband, an *archive* of every completed route ever scored, the
*deferred* list (routes pruned or budget-truncated under the current
``k``), the lower bounds, and the modified-Dijkstra cache.  Instead of
silently discarding work the current thresholds reject,
:class:`BSSRSearch` parks it in ``deferred``; :meth:`BSSRSearch.resume`
widens the skyband to a larger ``k'``, recomputes the (now looser)
lower bounds, re-enqueues the deferred work, and drains the queue
again.  Resume is exact: every route of the fresh ``k'`` search is
either already archived, still deferred, or reachable by re-expanding a
deferred prefix — so pagination (ranks ``k+1 .. k'``) never recomputes
the routes the first pass already settled.  This is what
:class:`~repro.core.session.PlanningSession` builds on.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from time import perf_counter

from repro.core.bounds import LowerBounds, compute_lower_bounds
from repro.core.distcache import DistanceCache
from repro.core.dominance import SkybandSet
from repro.core.nninit import nninit
from repro.core.options import BSSROptions
from repro.core.priority import policy_for
from repro.core.routes import PartialRoute, SkylineRoute
from repro.core.search import CHCandidateStream, PoICandidateSearch
from repro.core.spec import CompiledQuery
from repro.core.stats import SearchStats
from repro.errors import AlgorithmError, QueryError
from repro.graph.contraction import (
    CHDistanceOracle,
    ch_enabled,
    contraction_for,
    shared_bucket,
)
from repro.graph.dijkstra import dijkstra
from repro.graph.landmarks import _shaved, landmarks_for
from repro.graph.road_network import RoadNetwork
from repro.semantics.scoring import DEFAULT_AGGREGATOR, SemanticAggregator


def run_bssr(
    network: RoadNetwork,
    query: CompiledQuery,
    *,
    aggregator: SemanticAggregator | None = None,
    options: BSSROptions | None = None,
    precomputed_bounds: LowerBounds | None = None,
    distance_cache: DistanceCache | None = None,
) -> tuple[list[SkylineRoute], SearchStats]:
    """Execute a SkySR query with BSSR; returns (skyline routes, stats).

    ``precomputed_bounds`` (e.g. from
    :class:`repro.extensions.preprocessing.TreePairDistanceIndex`)
    replaces the per-query Algorithm-4 computation with index lookups;
    destination queries ignore it, since the destination leg bound is
    query-specific.

    ``distance_cache`` shares modified-Dijkstra expansions *across*
    queries (see :mod:`repro.core.distcache`); it is only consulted
    under the same disjoint-trees condition as the per-run cache.
    """
    # One-shot callers never resume, so skip the checkpoint machinery:
    # no route archive, no deferred-work retention.
    runner = BSSRSearch(
        network,
        query,
        aggregator,
        options,
        checkpointable=False,
        shared_cache=distance_cache,
    )
    runner.precomputed_bounds = precomputed_bounds
    return runner.run()


class _ArchivingSkyband(SkybandSet):
    """A k-skyband that remembers every route ever offered to it.

    The archive (keyed by the PoI tuple, which fully determines a
    route's scores) is what makes resume exact: rejected and evicted
    routes may re-qualify under a larger ``k``, so the skyband of any
    future ``k'`` can be rebuilt from the archive without re-searching.
    """

    def __init__(self, k: int, archive: dict[tuple[int, ...], SkylineRoute]):
        super().__init__(k)
        self.archive = archive

    def update(self, route: SkylineRoute) -> bool:
        self.archive.setdefault(route.pois, route)
        return super().update(route)


@dataclass
class _Deferred:
    """One unit of parked work: a route prefix plus how far into its
    candidate stream the previous pass got before pruning/truncation."""

    route: PartialRoute
    consumed: int = 0


@dataclass
class SearchState:
    """Explicit, checkpointable state of one BSSR search.

    A drained search (queue empty) checkpoints to exactly this object;
    :meth:`BSSRSearch.resume` continues from it with a larger ``k``.
    Fields:

    Attributes:
        k: the skyband parameter the state is currently settled for.
        skyband: the evolving k-skyband ``S_k`` (the archiving variant
            for checkpointable searches, a plain set otherwise).
        archive: every completed route ever scored, keyed by PoI tuple —
            a superset of any future skyband up to the routes searched
            so far.
        deferred: work the current thresholds rejected — pruned partial
            routes and budget-truncated expansions — kept instead of
            discarded so a wider ``k`` can take it up again.
        queue: the route priority queue ``Q_b`` (empty at a checkpoint).
        bounds: the Section 5.3.3 lower bounds for the current ``k``
            (the ``l̄(ϕ)`` ball grows with ``k``, so resume recomputes
            them).
        dest_dist: reverse distances to the destination, if any.
        cache: the on-the-fly modified-Dijkstra cache (Section 5.3.4) —
            shared across resumes, which is a large part of why resuming
            beats recomputing.
        serial: the queue tie-break counter.
        resumes: how many times this state has been widened.
    """

    k: int
    skyband: SkybandSet
    archive: dict[tuple[int, ...], SkylineRoute]
    deferred: list[_Deferred] = field(default_factory=list)
    queue: list[tuple[tuple, int, PartialRoute, int]] = field(
        default_factory=list
    )
    bounds: LowerBounds | None = None
    dest_dist: dict[int, float] | None = None
    cache: dict[tuple[int, int], PoICandidateSearch] = field(
        default_factory=dict
    )
    serial: int = 0
    resumes: int = 0

    @property
    def exhausted(self) -> bool:
        """No route outside the skyband exists anywhere in the search
        space: a k-skyband smaller than ``k`` proves every sequenced
        route (up to score-equivalence) is already a member, so no
        resume can surface anything new."""
        return len(self.skyband) < self.k

    def next_serial(self) -> int:
        value = self.serial
        self.serial += 1
        return value


class BSSRSearch:
    """One BSSR search (Algorithm 1 plus Section 5.3 optimizations),
    resumable to larger ``k`` via its explicit :class:`SearchState`.

    ``checkpointable=False`` (the :func:`run_bssr` one-shot path) skips
    the resume machinery — no completed-route archive, no deferred-work
    retention — restoring the seed's O(queue + skyband) footprint;
    :meth:`resume` then refuses to run.
    """

    def __init__(
        self,
        network: RoadNetwork,
        query: CompiledQuery,
        aggregator: SemanticAggregator | None = None,
        options: BSSROptions | None = None,
        *,
        checkpointable: bool = True,
        shared_cache: DistanceCache | None = None,
    ) -> None:
        self.network = network
        self.query = query
        self.aggregator = aggregator or DEFAULT_AGGREGATOR
        self.options = options or BSSROptions()
        self.checkpointable = checkpointable
        self.shared_cache = shared_cache
        self.stats = SearchStats(algorithm="bssr")
        # Top-k generalization: with k > 1 the evolving set is the
        # k-skyband and every threshold below becomes the k-th-smallest
        # length, so the search keeps expanding until k routes per
        # score level are complete.  k = 1 is exactly the paper's BSSR.
        archive: dict[tuple[int, ...], SkylineRoute] = {}
        self.state = SearchState(
            k=self.options.k,
            skyband=(
                _ArchivingSkyband(self.options.k, archive)
                if checkpointable
                else SkybandSet(self.options.k)
            ),
            archive=archive,
        )
        if self.options.k > 1:
            self.stats.extra["k"] = self.options.k
        self.n = query.size
        self.bounds = LowerBounds.disabled(self.n)
        self._priority = policy_for(self.options.priority_queue)
        self._use_cache = self.options.caching and query.disjoint_trees
        self._first_radius_recorded = False
        self._started = False
        self.precomputed_bounds: LowerBounds | None = None
        # ALT index, bound lazily by _compute_bounds (memoized per
        # network, so repeated searches pay the table build once)
        self._landmarks = None
        # CH leg oracle: options flag AND the global gate, decided at
        # construction (restored searches re-evaluate the gate then)
        self._use_ch = self.options.use_contraction and ch_enabled()
        self._ch = None
        # final-position CH candidate streams, keyed (source, position);
        # transient — deterministic, rebuilt lazily after a restore
        self._ch_streams: dict[tuple[int, int], CHCandidateStream] = {}

    # Durable checkpoints ----------------------------------------------

    def to_dict(self) -> dict:
        """Serialize the checkpointed state (see
        :mod:`repro.core.serialize`).  One-shot searches
        (``checkpointable=False``) refuse with a typed
        :class:`~repro.errors.SessionEncodeError`."""
        from repro.core.serialize import search_to_dict

        return search_to_dict(self)

    @classmethod
    def from_dict(
        cls,
        network: RoadNetwork,
        query: CompiledQuery,
        aggregator: SemanticAggregator | None,
        payload: dict,
    ) -> "BSSRSearch":
        """Restore a checkpointed search against the same dataset."""
        from repro.core.serialize import search_from_dict

        return search_from_dict(
            network, query, aggregator or DEFAULT_AGGREGATOR, payload
        )

    # Convenience views over the state ---------------------------------

    @property
    def skyline(self) -> SkybandSet:
        return self.state.skyband

    @property
    def dest_dist(self) -> dict[int, float] | None:
        return self.state.dest_dist

    # ------------------------------------------------------------------

    def run(self) -> tuple[list[SkylineRoute], SearchStats]:
        """Execute the search for ``options.k``; checkpoint at the end."""
        if self._started:
            raise AlgorithmError("BSSRSearch.run() may only be called once")
        self._started = True
        started = perf_counter()
        if any(spec.num_candidates == 0 for spec in self.query.specs):
            # Some position admits no PoI at all: no sequenced route exists.
            self._finish(started)
            return [], self.stats

        if self.query.destination is not None:
            self.state.dest_dist = self._make_dest_dist()  # type: ignore[assignment]

        if self.options.initial_search:
            init_start = perf_counter()
            nninit(
                self.network,
                self.query,
                self.aggregator,
                self.skyline,
                self.stats,
                dest_dist=self.dest_dist,
                landmarks=(
                    landmarks_for(self.network)
                    if self.options.use_landmarks
                    else None
                ),
                ch=self._ch_index() if self._use_ch else None,
            )
            self.stats.init_time = perf_counter() - init_start
            self.stats.extra["init_perfect_length"] = (
                self.skyline.perfect_route_length()
            )

        if (
            self.precomputed_bounds is not None
            and self.options.lower_bounds
            and self.dest_dist is None
        ):
            self.bounds = self.precomputed_bounds
            self.stats.sum_ls = self.bounds.suffix_ls[1]
            self.stats.sum_lp = self.bounds.suffix_lp[1]
            self.stats.extra["preprocessed_bounds"] = True
        else:
            self._compute_bounds()
        self.state.bounds = self.bounds

        empty = PartialRoute(
            pois=(),
            length=0.0,
            semantic=0.0,
            sem_state=self.aggregator.initial(self.n),
            sims=(),
        )
        self._expand(empty, 0)
        self._drain()
        self._finish(started)
        return self.skyline.routes(), self.stats

    def resume(self, k: int) -> tuple[list[SkylineRoute], SearchStats]:
        """Widen the checkpointed search to ``k`` and continue.

        Rebuilds the skyband from the archive at the larger ``k``,
        recomputes the lower bounds (the ``l̄(ϕ)`` ball grows with the
        k-th perfect length), re-enqueues every deferred route, and
        drains the queue under the relaxed thresholds.  Returns the full
        widened skyband plus the stats of *this leg only*, so callers
        can compare resume cost against a from-scratch run.
        """
        if not self.checkpointable:
            raise AlgorithmError(
                "this search was run without checkpointing "
                "(checkpointable=False); it cannot resume"
            )
        if not self._started:
            raise AlgorithmError("resume() requires a completed run() first")
        if k < self.state.k:
            raise QueryError(
                f"cannot narrow a checkpointed search from k="
                f"{self.state.k} to k={k}"
            )
        started = perf_counter()
        state = self.state
        state.resumes += 1
        self.stats = SearchStats(algorithm="bssr")
        self.stats.extra["k"] = k
        self.stats.extra["resumed_from_k"] = state.k
        self.stats.extra["resumes"] = state.resumes
        if k == state.k or state.exhausted:
            # Nothing can change: same thresholds, or the archive
            # already holds every route in existence.
            state.k = k
            state.skyband = self._rebuild_skyband(k)
            self._finish(started)
            return self.skyline.routes(), self.stats
        state.k = k
        state.skyband = self._rebuild_skyband(k)
        # The ball radius l̄(ϕ) grew with k: pass-1 bounds may overprune
        # routes that only the wider skyband admits, so recompute.
        if self.state.bounds is not None and not self.options.lower_bounds:
            self.bounds = self.state.bounds  # disabled bounds stay valid
        else:
            self._compute_bounds()
        self.state.bounds = self.bounds
        deferred, state.deferred = state.deferred, []
        for item in deferred:
            self._push(item.route, item.consumed)
        self.stats.extra["deferred_replayed"] = len(deferred)
        self._drain()
        self._finish(started)
        return self.skyline.routes(), self.stats

    # ------------------------------------------------------------------

    def _ch_index(self):
        """The network's (memoized) contraction hierarchy, bound lazily."""
        if self._ch is None:
            self._ch = contraction_for(self.network)
        return self._ch

    def _bucket_cache(self) -> DistanceCache | None:
        """The cross-query home for CH target buckets.

        Buckets are exact query-independent distances, so unlike shared
        *searches* they need no disjoint-trees condition — only the
        ``caching`` flag gates them."""
        if not self._use_ch or not self.options.caching:
            return None
        return self.shared_cache

    def _make_dest_dist(self):
        """Distances *to* the destination for the final-leg scoring.

        The lazy :class:`CHDistanceOracle` under ``use_contraction``
        (its bucket rides the cross-query cache, keyed by destination),
        the eager full reverse Dijkstra otherwise.  Checkpoint restore
        goes through this same seam so restored sessions carry the same
        oracle type as live ones.
        """
        destination = self.query.destination
        assert destination is not None
        if self._use_ch:
            ch = self._ch_index()
            bucket = shared_bucket(
                ch,
                self.network,
                self._bucket_cache(),
                "dest",
                (destination,),
                (destination,),
            )
            return CHDistanceOracle(ch, destination, bucket)
        return dijkstra(self.network, destination, reverse=True)

    def _compute_bounds(self) -> None:
        if self.options.use_landmarks and self.options.lower_bounds:
            self._landmarks = landmarks_for(self.network)
        self.bounds = compute_lower_bounds(
            self.network,
            self.query,
            self.skyline,
            enabled=self.options.lower_bounds,
            perfect_enabled=self.options.effective_perfect_bound(),
            dest_dist=self.dest_dist,
            stats=self.stats,
            landmarks=self._landmarks,
            ch=self._ch_index() if self._use_ch else None,
            shared_cache=self._bucket_cache(),
        )

    def _rebuild_skyband(self, k: int) -> _ArchivingSkyband:
        """The k-skyband of everything completed so far.

        Order-independent thanks to the deterministic equivalence
        collapse, so iterating the archive in any order is exact.
        """
        band = _ArchivingSkyband(k, self.state.archive)
        for route in sorted(
            list(self.state.archive.values()),
            key=lambda r: (r.length, r.semantic, r.pois),
        ):
            band.update(route)
        return band

    def _drain(self) -> None:
        """The main loop: pop, prune-or-expand, until the queue empties."""
        queue = self.state.queue
        limit = self.options.max_routes_expanded
        while queue:
            _, _, route, consumed = heapq.heappop(queue)
            last = route.pois[-1] if route.pois else self.query.start
            if self._prunable(
                route.length, route.semantic, route.sem_state, route.size, last
            ):
                self.stats.routes_pruned_on_pop += 1
                self._defer(route, consumed)
                continue
            self.stats.routes_expanded += 1
            if limit is not None and self.stats.routes_expanded > limit:
                raise AlgorithmError(
                    f"BSSR exceeded max_routes_expanded={limit}"
                )
            self._expand(route, consumed)

    def _finish(self, started: float) -> None:
        self.stats.elapsed = perf_counter() - started
        self.stats.result_size = len(self.skyline)
        self.stats.skyline_updates = self.skyline.updates
        self.stats.skyline_rejects = self.skyline.rejects
        if self._ch is not None:
            self.stats.extra["ch"] = self._ch.stats.as_dict()

    # ------------------------------------------------------------------

    def _prunable(
        self, length: float, semantic: float, sem_state, size: int, last: int
    ) -> bool:
        """Lemma 5.3 (with Section 5.3.3 suffixes) + Lemma 5.8.

        ``last`` is the route's current endpoint (the start vertex for
        an empty route); with ALT enabled it anchors a route-specific
        next-leg floor that replaces the generic per-leg minimum when
        sharper — and covers the start → position-0 leg the generic
        family omits entirely.
        """
        skyline = self.skyline
        bounds = self.bounds
        floor = length + bounds.suffix_ls[size] + bounds.dest_min
        if size < self.n:
            # legs_ls is empty when lower bounds are disabled (or n==1);
            # the generic per-leg minimum is 0 then, and the anchored
            # floors below simply add on top.
            generic = (
                bounds.legs_ls[size - 1] if size and bounds.legs_ls else 0.0
            )
            anchored = 0.0
            landmarks = self._landmarks
            if landmarks is not None:
                profiles = bounds.position_profiles
                if profiles is not None:
                    anchored = landmarks.min_from_vertex(
                        last, profiles[size]
                    )
            if self._use_ch and self.options.lower_bounds:
                # Exact next-leg distance from the concrete endpoint to
                # the next position's full candidate set — memoized per
                # (vertex, category) on the hierarchy, so after the
                # first probe the floor is a dict lookup.  Exact-over-
                # full and ALT-over-restricted are incomparable; take
                # the max (eps-shaved like every CH sum).
                spec = self.query.specs[size]
                if spec.share_key is not None:
                    exact = _shaved(
                        self._ch_index().vertex_min(
                            "cands", spec.share_key, last, spec.sim_map
                        ),
                        0.0,
                    )
                    if exact > anchored:
                        anchored = exact
            if anchored > generic:
                floor += anchored - generic
        if floor >= skyline.threshold(semantic):
            return True
        if (
            self.options.effective_perfect_bound()
            and len(skyline)
            and size < self.n
        ):
            delta = self.aggregator.min_increment(
                sem_state, bounds.remaining_best_np[size]
            )
            if delta > 0.0:
                cond_a = skyline.threshold(semantic + delta) <= length
                cond_b = (
                    skyline.threshold(semantic)
                    <= length + bounds.suffix_lp[size] + bounds.dest_min
                )
                if cond_a and cond_b:
                    return True
        return False

    def _defer(self, route: PartialRoute, consumed: int = 0) -> None:
        """Park rejected work for a potential future resume (dropped
        outright when the search is not checkpointable)."""
        if not self.checkpointable:
            return
        self.state.deferred.append(_Deferred(route, consumed))
        self.stats.routes_deferred += 1

    def _push(self, route: PartialRoute, consumed: int = 0) -> None:
        heapq.heappush(
            self.state.queue,
            (self._priority(route), self.state.next_serial(), route, consumed),
        )
        self.stats.routes_enqueued += 1
        if len(self.state.queue) > self.stats.max_queue_size:
            self.stats.max_queue_size = len(self.state.queue)

    def _candidate_search(
        self, route: PartialRoute, position: int
    ) -> PoICandidateSearch:
        source = route.pois[-1] if route.pois else self.query.start
        spec = self.query.specs[position]
        if self._use_cache:
            key = (source, position)
            search = self.state.cache.get(key)
            if search is not None:
                self.stats.cache_hits += 1
                self.stats.mdijkstra_resumes += 1
                return search
            shared = self.shared_cache
            if shared is not None:
                # Cross-query reuse rides the same disjoint-trees gate
                # as the per-run cache: shared searches are exclusion-
                # free, and their candidate streams are append-only, so
                # adopting one warm is exact (its expansion cost is
                # simply already paid).
                cached = shared.lookup(
                    self.network, source, spec, stats=self.stats
                )
                if cached is not None:
                    self.state.cache[key] = cached
                    self.stats.mdijkstra_resumes += 1
                    self.stats.extra["shared_cache_hits"] = (
                        self.stats.extra.get("shared_cache_hits", 0) + 1
                    )
                    return cached
            search = PoICandidateSearch(
                self.network, spec, source, stats=self.stats
            )
            self.state.cache[key] = search
            self.stats.mdijkstra_runs += 1
            if shared is not None:
                shared.admit(self.network, source, spec, search)
            return search
        search = PoICandidateSearch(
            self.network,
            spec,
            source,
            exclude=frozenset(route.pois),
            stats=self.stats,
        )
        self.stats.mdijkstra_runs += 1
        return search

    def _ch_stream(
        self, route: PartialRoute, position: int
    ) -> CHCandidateStream:
        """The final position's CH label-row stream (see
        :class:`~repro.core.search.CHCandidateStream`): exact distances
        to the full candidate set, sorted, no road-graph settles.
        Streams carry no suppression state, so they are shareable
        across routes unconditionally — distinctness is enforced by the
        caller's ``vid in route.pois`` filter either way."""
        source = route.pois[-1] if route.pois else self.query.start
        key = (source, position)
        stream = self._ch_streams.get(key)
        if stream is None:
            spec = self.query.specs[position]
            ch = self._ch_index()
            if spec.share_key is not None:
                entries = ch.memo_stream(
                    spec.share_key, source, spec.sim_map
                )
            else:
                bucket = shared_bucket(
                    ch,
                    self.network,
                    self._bucket_cache(),
                    "cands",
                    spec.share_key,
                    spec.sim_map,
                )
                row = ch.distances_from(source, bucket)
                sim_of = spec.sim_map.__getitem__
                entries = sorted(
                    (d, vid, sim_of(vid)) for vid, d in row.items()
                )
            stream = CHCandidateStream(entries)
            self._ch_streams[key] = stream
        return stream

    def _expand(self, route: PartialRoute, consumed: int = 0) -> None:
        """Algorithm 1 lines 7–9: extend ``route`` at its next position.

        ``consumed`` skips candidates a previous pass already processed
        (deterministic stream order makes the offset exact).  If the
        budget cuts the stream short, the route is deferred with its
        new offset so a resumed search picks up the remainder.
        """
        position = route.size
        new_size = position + 1
        aggregator = self.aggregator
        skyline = self.skyline
        suffix_next = self.bounds.suffix_ls[new_size] + self.bounds.dest_min

        def budget() -> float:
            # Lemma 5.3 break: settle only while a candidate at this
            # distance could still beat the threshold at the route's
            # (minimum possible) semantic score.
            return (
                skyline.threshold(route.semantic)
                - route.length
                - suffix_next
            )

        is_final = new_size == self.n
        leg_map = self.dest_dist if is_final else None
        if is_final and self._use_ch:
            search = self._ch_stream(route, position)
        else:
            search = self._candidate_search(route, position)
        index = consumed
        for d, vid, sim, extra in search.scored_until(
            budget, start=consumed, leg=leg_map
        ):
            index += 1
            if vid in route.pois:
                continue  # distinctness (Definition 3.4 iii)
            state = aggregator.extend(route.sem_state, sim)
            semantic = aggregator.score(state)
            length = route.length + d
            sims = route.sims + (sim,)
            pois = route.pois + (vid,)
            if is_final:
                total = length
                if leg_map is not None:
                    if extra == math.inf:
                        continue
                    total = length + extra
                skyline.update(
                    SkylineRoute(
                        pois=pois, length=total, semantic=semantic, sims=sims
                    )
                )
            else:
                child = PartialRoute(
                    pois=pois,
                    length=length,
                    semantic=semantic,
                    sem_state=state,
                    sims=sims,
                    serial=self.state.next_serial(),
                )
                if self._prunable(length, semantic, state, new_size, vid):
                    self.stats.routes_pruned_on_insert += 1
                    self._defer(child)
                else:
                    self._push(child)
        if index < len(search.candidates) or not search.exhausted:
            # The budget cut the stream: park the prefix so a wider
            # search can resume it exactly where this pass stopped.
            self._defer(route, index)
        if not self._first_radius_recorded:
            self.stats.first_search_radius = search.radius
            self._first_radius_recorded = True


#: backwards-compatible alias (pre-refactor internal name)
_BSSRRun = BSSRSearch
