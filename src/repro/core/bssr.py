"""The bulk SkySR algorithm — BSSR (Section 5, Algorithm 1).

BSSR finds all skyline sequenced routes in a single bulk search: a
priority queue ``Q_b`` of partial routes is repeatedly popped, and the
popped route is extended by every next-position candidate discovered by
the modified Dijkstra (Algorithm 2), under branch-and-bound pruning:

* **upper bounds** come from the evolving skyline set ``S`` (Lemma 5.1)
  — Definition 5.4's threshold ``l̄``;
* **lower bounds** come from Lemma 5.2 (monotone scores) plus the
  optional per-leg minimum distances of Section 5.3.3;
* Lemma 5.3 justifies discarding any route whose bounds cross.

All four optimizations of Section 5.3 are integrated and individually
toggleable via :class:`~repro.core.options.BSSROptions`:
NNinit seeding, the proposed queue priority, ``l_s``/``l_p`` lower
bounds with Lemma 5.8's perfect-match rule, and on-the-fly caching of
modified-Dijkstra expansions.

The implementation is exact for directed and undirected networks,
multi-category PoIs, arbitrary position requirements (predicates), any
similarity measure / aggregator pair satisfying the documented
monotonicity contracts, and optional destinations.

With :attr:`BSSROptions.k` > 1 the same search answers the **top-k**
sequenced route query (after Liu et al., *Finding Top-k Optimal
Sequenced Routes*, 2018): the evolving set ``S`` becomes the k-skyband
and every pruning threshold the k-th-smallest qualifying length, which
relaxes the bounds exactly enough to retain k ranked alternatives per
skyline level while preserving all Section 5.3 optimizations.
"""

from __future__ import annotations

import heapq
import itertools
import math
from time import perf_counter

from repro.core.bounds import LowerBounds, compute_lower_bounds
from repro.core.dominance import SkybandSet
from repro.core.nninit import nninit
from repro.core.options import BSSROptions
from repro.core.priority import policy_for
from repro.core.routes import PartialRoute, SkylineRoute
from repro.core.search import PoICandidateSearch
from repro.core.spec import CompiledQuery
from repro.core.stats import SearchStats
from repro.errors import AlgorithmError
from repro.graph.dijkstra import dijkstra
from repro.graph.road_network import RoadNetwork
from repro.semantics.scoring import DEFAULT_AGGREGATOR, SemanticAggregator


def run_bssr(
    network: RoadNetwork,
    query: CompiledQuery,
    *,
    aggregator: SemanticAggregator | None = None,
    options: BSSROptions | None = None,
    precomputed_bounds: LowerBounds | None = None,
) -> tuple[list[SkylineRoute], SearchStats]:
    """Execute a SkySR query with BSSR; returns (skyline routes, stats).

    ``precomputed_bounds`` (e.g. from
    :class:`repro.extensions.preprocessing.TreePairDistanceIndex`)
    replaces the per-query Algorithm-4 computation with index lookups;
    destination queries ignore it, since the destination leg bound is
    query-specific.
    """
    runner = _BSSRRun(network, query, aggregator, options)
    runner.precomputed_bounds = precomputed_bounds
    return runner.execute()


class _BSSRRun:
    """One BSSR execution (Algorithm 1 plus Section 5.3 optimizations)."""

    def __init__(
        self,
        network: RoadNetwork,
        query: CompiledQuery,
        aggregator: SemanticAggregator | None,
        options: BSSROptions | None,
    ) -> None:
        self.network = network
        self.query = query
        self.aggregator = aggregator or DEFAULT_AGGREGATOR
        self.options = options or BSSROptions()
        self.stats = SearchStats(algorithm="bssr")
        # Top-k generalization: with k > 1 the evolving set is the
        # k-skyband and every threshold below becomes the k-th-smallest
        # length, so the search keeps expanding until k routes per
        # score level are complete.  k = 1 is exactly the paper's BSSR.
        self.skyline = SkybandSet(self.options.k)
        if self.options.k > 1:
            self.stats.extra["k"] = self.options.k
        self.n = query.size
        self.bounds = LowerBounds.disabled(self.n)
        self.dest_dist: dict[int, float] | None = None
        self._qb: list[tuple[tuple, int, PartialRoute]] = []
        self._serial = itertools.count()
        self._priority = policy_for(self.options.priority_queue)
        self._cache: dict[tuple[int, int], PoICandidateSearch] = {}
        self._use_cache = self.options.caching and query.disjoint_trees
        self._first_radius_recorded = False
        self.precomputed_bounds: LowerBounds | None = None

    # ------------------------------------------------------------------

    def execute(self) -> tuple[list[SkylineRoute], SearchStats]:
        started = perf_counter()
        if any(spec.num_candidates == 0 for spec in self.query.specs):
            # Some position admits no PoI at all: no sequenced route exists.
            self._finish(started)
            return [], self.stats

        if self.query.destination is not None:
            self.dest_dist = dijkstra(
                self.network, self.query.destination, reverse=True
            )  # type: ignore[assignment]

        if self.options.initial_search:
            init_start = perf_counter()
            nninit(
                self.network,
                self.query,
                self.aggregator,
                self.skyline,
                self.stats,
                dest_dist=self.dest_dist,
            )
            self.stats.init_time = perf_counter() - init_start
            self.stats.extra["init_perfect_length"] = (
                self.skyline.perfect_route_length()
            )

        if (
            self.precomputed_bounds is not None
            and self.options.lower_bounds
            and self.dest_dist is None
        ):
            self.bounds = self.precomputed_bounds
            self.stats.sum_ls = self.bounds.suffix_ls[1]
            self.stats.sum_lp = self.bounds.suffix_lp[1]
            self.stats.extra["preprocessed_bounds"] = True
        else:
            self.bounds = compute_lower_bounds(
                self.network,
                self.query,
                self.skyline,
                enabled=self.options.lower_bounds,
                perfect_enabled=self.options.effective_perfect_bound(),
                dest_dist=self.dest_dist,
                stats=self.stats,
            )

        empty = PartialRoute(
            pois=(),
            length=0.0,
            semantic=0.0,
            sem_state=self.aggregator.initial(self.n),
            sims=(),
        )
        self._expand(empty)
        limit = self.options.max_routes_expanded
        while self._qb:
            _, _, route = heapq.heappop(self._qb)
            if self._prunable(
                route.length, route.semantic, route.sem_state, route.size
            ):
                self.stats.routes_pruned_on_pop += 1
                continue
            self.stats.routes_expanded += 1
            if limit is not None and self.stats.routes_expanded > limit:
                raise AlgorithmError(
                    f"BSSR exceeded max_routes_expanded={limit}"
                )
            self._expand(route)
        self._finish(started)
        return self.skyline.routes(), self.stats

    def _finish(self, started: float) -> None:
        self.stats.elapsed = perf_counter() - started
        self.stats.result_size = len(self.skyline)
        self.stats.skyline_updates = self.skyline.updates
        self.stats.skyline_rejects = self.skyline.rejects

    # ------------------------------------------------------------------

    def _prunable(
        self, length: float, semantic: float, sem_state, size: int
    ) -> bool:
        """Lemma 5.3 (with Section 5.3.3 suffixes) + Lemma 5.8."""
        skyline = self.skyline
        bounds = self.bounds
        floor = length + bounds.suffix_ls[size] + bounds.dest_min
        if floor >= skyline.threshold(semantic):
            return True
        if (
            self.options.effective_perfect_bound()
            and len(skyline)
            and size < self.n
        ):
            delta = self.aggregator.min_increment(
                sem_state, bounds.remaining_best_np[size]
            )
            if delta > 0.0:
                cond_a = skyline.threshold(semantic + delta) <= length
                cond_b = (
                    skyline.threshold(semantic)
                    <= length + bounds.suffix_lp[size] + bounds.dest_min
                )
                if cond_a and cond_b:
                    return True
        return False

    def _push(self, route: PartialRoute) -> None:
        heapq.heappush(
            self._qb, (self._priority(route), next(self._serial), route)
        )
        self.stats.routes_enqueued += 1
        if len(self._qb) > self.stats.max_queue_size:
            self.stats.max_queue_size = len(self._qb)

    def _candidate_search(
        self, route: PartialRoute, position: int
    ) -> PoICandidateSearch:
        source = route.pois[-1] if route.pois else self.query.start
        spec = self.query.specs[position]
        if self._use_cache:
            key = (source, position)
            search = self._cache.get(key)
            if search is not None:
                self.stats.cache_hits += 1
                self.stats.mdijkstra_resumes += 1
                return search
            search = PoICandidateSearch(
                self.network, spec, source, stats=self.stats
            )
            self._cache[key] = search
            self.stats.mdijkstra_runs += 1
            return search
        search = PoICandidateSearch(
            self.network,
            spec,
            source,
            exclude=frozenset(route.pois),
            stats=self.stats,
        )
        self.stats.mdijkstra_runs += 1
        return search

    def _expand(self, route: PartialRoute) -> None:
        """Algorithm 1 lines 7–9: extend ``route`` at its next position."""
        position = route.size
        search = self._candidate_search(route, position)
        new_size = position + 1
        aggregator = self.aggregator
        skyline = self.skyline
        suffix_next = self.bounds.suffix_ls[new_size] + self.bounds.dest_min

        def budget() -> float:
            # Lemma 5.3 break: settle only while a candidate at this
            # distance could still beat the threshold at the route's
            # (minimum possible) semantic score.
            return (
                skyline.threshold(route.semantic)
                - route.length
                - suffix_next
            )

        for d, vid, sim in search.candidates_until(budget):
            if vid in route.pois:
                continue  # distinctness (Definition 3.4 iii)
            state = aggregator.extend(route.sem_state, sim)
            semantic = aggregator.score(state)
            length = route.length + d
            sims = route.sims + (sim,)
            pois = route.pois + (vid,)
            if new_size == self.n:
                total = length
                if self.dest_dist is not None:
                    leg = self.dest_dist.get(vid, math.inf)
                    if leg == math.inf:
                        continue
                    total = length + leg
                skyline.update(
                    SkylineRoute(
                        pois=pois, length=total, semantic=semantic, sims=sims
                    )
                )
            elif self._prunable(length, semantic, state, new_size):
                self.stats.routes_pruned_on_insert += 1
            else:
                self._push(
                    PartialRoute(
                        pois=pois,
                        length=length,
                        semantic=semantic,
                        sem_state=state,
                        sims=sims,
                        serial=next(self._serial),
                    )
                )
        if not self._first_radius_recorded:
            self.stats.first_search_radius = search.radius
            self._first_radius_recorded = True
