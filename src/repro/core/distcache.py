"""Cross-query cache of modified-Dijkstra expansions.

Section 5.3.4's on-the-fly cache is per-run: every query re-expands
its ``(source, position)`` searches from scratch, even when a fleet of
users asks about the same hotspots over the same city all day.
:class:`DistanceCache` promotes those expansions to a bounded,
LRU-evicting cache shared *across* queries, keyed by
``(source, share_key)`` — where
:attr:`~repro.core.spec.PositionSpec.share_key` names the position's
matching model independently of where in a sequence it appears (for
plain categories: the category id).

Exactness rests on the same conditions as the per-run cache, plus one:

* shared searches are **exclusion-free** — BSSR only consults a cache
  when the query's positions draw candidates from disjoint trees
  (``CompiledQuery.disjoint_trees``), the condition under which
  route-independent reuse is exact, and builds route-local throw-away
  searches otherwise;
* a search's candidate stream is **append-only and deterministic** —
  consumers address it by replay offsets, so it does not matter which
  query (or how many, interleaved) drove the expansion forward;
* specs with equal ``share_key`` compile identically under one engine
  (same forest, similarity, PoI index) — the cache belongs to an
  engine and must never be shared across engines serving different
  datasets; :meth:`DistanceCache.lookup` asserts network identity.

Budgets follow the :mod:`repro.store` idiom: entry and byte caps with
LRU eviction (recency serials, no wall-clock ties).  Byte accounting
is a documented estimate of a live search's footprint, not an exact
measurement — the point is a stable knob, not forensic accounting.
Hit/miss/eviction counters feed ``BENCH_core_query.json``'s warm-cache
scenario.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.search import PoICandidateSearch
from repro.core.spec import PositionSpec
from repro.core.stats import SearchStats
from repro.errors import QueryError
from repro.graph.road_network import RoadNetwork

#: rough per-label bytes of a flat-backend search (three float cells +
#: settled flag across |V|), used by the footprint estimate below
_FLAT_CELL_BYTES = 25

#: rough bytes per dict entry / heap tuple / candidate triple
_DICT_ENTRY_BYTES = 72


@dataclass
class CacheStats:
    """Operation counters (shape mirrors ``repro.store.StoreStats``).

    ``bucket_hits``/``bucket_misses`` count the CH target-bucket side
    (:meth:`DistanceCache.lookup_bucket`) separately from the search
    side — a warm bucket hit is a skipped set of downward sweeps, not a
    skipped modified Dijkstra, and the benchmarks report both.
    """

    hits: int = 0
    misses: int = 0
    admissions: int = 0
    evictions: int = 0
    unshareable: int = 0
    bucket_hits: int = 0
    bucket_misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "admissions": self.admissions,
            "evictions": self.evictions,
            "unshareable": self.unshareable,
            "bucket_hits": self.bucket_hits,
            "bucket_misses": self.bucket_misses,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry:
    value: object  # a live PoICandidateSearch or a CH target bucket
    size: int
    last_used: int


def _estimate_bytes(search: PoICandidateSearch) -> int:
    """Documented footprint estimate of a live search (see module doc)."""
    base = len(search._heap) + len(search.candidates)
    if search._flat is not None:
        return search._flat[0] * _FLAT_CELL_BYTES + base * _DICT_ENTRY_BYTES
    return (
        len(search._dist) + len(search._path_sim) + len(search._settled) + base
    ) * _DICT_ENTRY_BYTES


class DistanceCache:
    """Bounded LRU cache of :class:`PoICandidateSearch` instances,
    shared across queries of one engine.

    A hit hands the *same live instance* to the consumer (after
    re-pointing its stats sink via
    :meth:`PoICandidateSearch.adopt_stats`), so every vertex it ever
    settled stays settled for all future queries.  Interleaved
    consumers are safe: expansion is append-only and each consumer
    replays the stream from its own offset.  Not thread-safe — one
    cache per worker process.
    """

    def __init__(
        self,
        *,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise QueryError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise QueryError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._entries: dict[tuple, _Entry] = {}
        self._recency = itertools.count()
        self._network: RoadNetwork | None = None

    # ------------------------------------------------------------------

    def _key(self, source: int, spec: PositionSpec) -> tuple | None:
        if spec.share_key is None:
            return None
        return (source, spec.share_key)

    def _bind(self, network: RoadNetwork) -> None:
        if self._network is None:
            self._network = network
        elif self._network is not network:
            raise QueryError(
                "a DistanceCache serves exactly one network; create one "
                "cache per engine/dataset"
            )

    def lookup(
        self,
        network: RoadNetwork,
        source: int,
        spec: PositionSpec,
        *,
        stats: SearchStats | None = None,
    ) -> PoICandidateSearch | None:
        """The cached search for ``(source, spec)``, or ``None``.

        A hit refreshes recency and re-points the search's stats sink
        at ``stats`` so subsequent expansion work is charged to the
        consumer that triggers it.
        """
        self._bind(network)
        key = self._key(source, spec)
        if key is None:
            self.stats.unshareable += 1
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        entry.last_used = next(self._recency)
        self.stats.hits += 1
        search = entry.value
        assert isinstance(search, PoICandidateSearch)
        search.adopt_stats(stats)
        return search

    def admit(
        self,
        network: RoadNetwork,
        source: int,
        spec: PositionSpec,
        search: PoICandidateSearch,
    ) -> bool:
        """Offer a freshly built search for future queries.

        Returns False (and caches nothing) for unshareable specs or a
        search that can never fit the byte budget; otherwise evicts
        least-recently-used entries as needed and stores the instance.
        """
        self._bind(network)
        key = self._key(source, spec)
        if key is None:
            return False
        size = _estimate_bytes(search)
        if self.max_bytes is not None and size > self.max_bytes:
            return False
        self._entries[key] = _Entry(
            value=search, size=size, last_used=next(self._recency)
        )
        self.stats.admissions += 1
        self._evict_over_budget(keep=key)
        return True

    # ------------------------------------------------------------------
    # CH target buckets (see repro.graph.contraction.shared_bucket)

    def lookup_bucket(self, network: RoadNetwork, key: tuple):
        """The cached CH target bucket under ``key``, or ``None``.

        Buckets depend only on (network, target set) — the caller
        builds keys from the hierarchy token plus a ``share_key``, so a
        hit makes a warm query skip every backward (downward-serving)
        sweep for that target set."""
        self._bind(network)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.bucket_misses += 1
            return None
        entry.last_used = next(self._recency)
        self.stats.bucket_hits += 1
        return entry.value

    def admit_bucket(self, network: RoadNetwork, key: tuple, bucket) -> bool:
        """Offer a freshly built CH target bucket for future queries."""
        self._bind(network)
        pairs = bucket.pairs
        size = _DICT_ENTRY_BYTES * (
            2 * len(pairs) + sum(len(row) for row in pairs.values())
        )
        if self.max_bytes is not None and size > self.max_bytes:
            return False
        self._entries[key] = _Entry(
            value=bucket, size=size, last_used=next(self._recency)
        )
        self.stats.admissions += 1
        self._evict_over_budget(keep=key)
        return True

    # ------------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return sum(entry.size for entry in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def _evict_over_budget(self, *, keep: tuple) -> None:
        def over() -> bool:
            if (
                self.max_entries is not None
                and len(self._entries) > self.max_entries
            ):
                return True
            return (
                self.max_bytes is not None
                and self.total_bytes > self.max_bytes
            )

        while over():
            victims = [k for k in self._entries if k != keep]
            if not victims:
                # the kept entry alone exceeds the budget; admit()
                # screened per-entry size, so only entry-count budgets
                # of 0 could land here — and those are rejected upfront
                break
            lru = min(victims, key=lambda k: self._entries[k].last_used)
            del self._entries[lru]
            self.stats.evictions += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistanceCache({len(self._entries)} entries, "
            f"{self.total_bytes} bytes, hit_rate={self.stats.hit_rate:.2f})"
        )
