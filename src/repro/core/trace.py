"""Execution tracing for BSSR — the paper's Table 4 running example.

Section 5.5 walks through BSSR step by step, showing the contents of
the route queue ``Q_b`` and the skyline set ``S`` after every
expansion.  :func:`trace_bssr` replays that presentation for any small
query: it returns one :class:`TraceStep` per main-loop iteration with
snapshots of both structures, which :func:`render_trace` formats like
the paper's table.

Tracing snapshots the queue at every step, so it is meant for small,
didactic instances (examples, debugging, tests) — production queries
should use :func:`repro.core.bssr.run_bssr` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bssr import BSSRSearch
from repro.core.options import BSSROptions
from repro.core.routes import SkylineRoute
from repro.core.spec import CompiledQuery
from repro.core.stats import SearchStats
from repro.graph.road_network import RoadNetwork
from repro.semantics.scoring import SemanticAggregator


@dataclass
class TraceStep:
    """State after one BSSR main-loop iteration (Table 4 row)."""

    step: int
    action: str  # "init", "expand", or "prune"
    route: tuple[int, ...]
    queue: list[tuple[int, ...]] = field(default_factory=list)
    skyline: list[SkylineRoute] = field(default_factory=list)

    def describe(self) -> str:
        queue = ", ".join(_chain(r) for r in self.queue) or "(empty)"
        skyline = (
            ", ".join(
                f"{_chain(r.pois)}[l={r.length:g},s={r.semantic:.3g}]"
                for r in self.skyline
            )
            or "(empty)"
        )
        return (
            f"{self.step:>3}  {self.action:<7} {_chain(self.route):<18} "
            f"Qb: {queue}\n{'':>32}S:  {skyline}"
        )


def _chain(pois: tuple[int, ...]) -> str:
    return "⟨" + ",".join(str(p) for p in pois) + "⟩"


class _TracingRun(BSSRSearch):
    """A BSSR run that records a TraceStep per queue pop."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.steps: list[TraceStep] = []
        self._step_counter = 0

    def _snapshot(self, action: str, route: tuple[int, ...]) -> None:
        self._step_counter += 1
        self.steps.append(
            TraceStep(
                step=self._step_counter,
                action=action,
                route=route,
                queue=[
                    entry[2].pois
                    for entry in sorted(self.state.queue, key=lambda e: e[:2])
                ],
                skyline=self.skyline.routes(),
            )
        )

    def _expand(self, route, consumed: int = 0) -> None:  # type: ignore[override]
        super()._expand(route, consumed)
        self._snapshot("init" if not route.pois else "expand", route.pois)


def trace_bssr(
    network: RoadNetwork,
    query: CompiledQuery,
    *,
    aggregator: SemanticAggregator | None = None,
    options: BSSROptions | None = None,
) -> tuple[list[SkylineRoute], SearchStats, list[TraceStep]]:
    """Run BSSR and record a Table-4-style step trace."""
    runner = _TracingRun(network, query, aggregator, options)
    routes, stats = runner.run()
    return routes, stats, runner.steps


def render_trace(steps: list[TraceStep]) -> str:
    """Format a trace the way the paper's Table 4 lays out its steps."""
    return "\n".join(step.describe() for step in steps)
