"""Priority policies for BSSR's route queue ``Q_b`` (Section 5.3.2).

The paper proposes ordering partial routes by (size descending,
semantic score ascending, length ascending) so that near-complete,
semantically good routes are finished first, tightening the upper bound
early.  The conventional alternative — distance only — is kept both as
the ablation baseline of Table 8 and as the ``BSSR w/o Opt`` behaviour.
"""

from __future__ import annotations

from typing import Callable

from repro.core.routes import PartialRoute

#: a priority policy maps a route to a heap key (smaller pops first)
PriorityKey = Callable[[PartialRoute], tuple]


def proposed_priority(route: PartialRoute) -> tuple:
    """Section 5.3.2: size ↓, then semantic ↑, then length ↑."""
    return (-route.size, route.semantic, route.length)


def distance_priority(route: PartialRoute) -> tuple:
    """Conventional distance-based order (ablation baseline)."""
    return (route.length,)


def policy_for(use_proposed: bool) -> PriorityKey:
    return proposed_priority if use_proposed else distance_priority
