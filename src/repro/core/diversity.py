"""Diversity re-ranking of top-k route alternatives.

Route recommendation lists are only useful when the alternatives are
*different* — PathRec (Chen et al.) observes that near-duplicates of
rank 1 carry almost no extra information for the user.  The k-skyband
retained by a top-k query holds everything needed to fix this after
the fact: this module re-orders a ranked alternative list with a
greedy MMR-style (maximal marginal relevance) selection that trades
the original rank order against dissimilarity to the routes already
picked.

Two route-overlap signals feed the penalty:

* **PoI overlap** — Jaccard similarity of the PoI id sets (two routes
  visiting the same stops are near-duplicates no matter the geometry);
* **shared geometry** — Jaccard similarity of the directed leg sets
  (consecutive PoI pairs, plus the start leg), a cheap proxy for "the
  user walks the same streets".

The combined similarity is a convex mix of the two.  Selection scores
are the classic MMR form

    score(r) = (1 - λ) · relevance(r) − λ · max_{s ∈ selected} sim(r, s)

with ``relevance`` strictly decreasing in the input rank.  Two
contracts the property tests pin down:

* ``λ = 0`` is the **identity permutation** — relevance alone decides,
  so the input order is returned unchanged;
* the output is always a subset of the input (re-ranking never invents
  routes, so it can never leave the skyband it was fed from).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.routes import SkylineRoute
from repro.errors import QueryError

#: default trade-off between original rank and diversity
DEFAULT_LAMBDA = 0.5

#: default mix between shared-geometry and PoI-overlap similarity
DEFAULT_GEOMETRY_WEIGHT = 0.5


def validate_lambda(diversity_lambda: float) -> float:
    """Validate an MMR trade-off value (``0 ≤ λ ≤ 1``)."""
    if not 0.0 <= diversity_lambda <= 1.0:
        raise QueryError(
            f"diversity_lambda must be within [0, 1], got {diversity_lambda}"
        )
    return diversity_lambda


def _jaccard(a: frozenset, b: frozenset) -> float:
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 1.0


def poi_jaccard(a: SkylineRoute, b: SkylineRoute) -> float:
    """Jaccard similarity of the two routes' PoI id sets."""
    return _jaccard(frozenset(a.pois), frozenset(b.pois))


def _legs(route: SkylineRoute, start: int | None) -> frozenset:
    chain = route.pois if start is None else (start, *route.pois)
    return frozenset(zip(chain, chain[1:]))


def segment_jaccard(
    a: SkylineRoute, b: SkylineRoute, *, start: int | None = None
) -> float:
    """Jaccard similarity of the directed leg sets (shared geometry).

    A leg is a consecutive PoI pair; passing ``start`` includes the
    common first leg from the query origin, matching what a user sees
    drawn on the map.
    """
    return _jaccard(_legs(a, start), _legs(b, start))


def route_similarity(
    a: SkylineRoute,
    b: SkylineRoute,
    *,
    start: int | None = None,
    geometry_weight: float = DEFAULT_GEOMETRY_WEIGHT,
) -> float:
    """Combined route similarity in ``[0, 1]``.

    A convex mix of shared geometry (weight ``geometry_weight``) and
    PoI overlap (the remainder).  1.0 means indistinguishable
    alternatives; 0.0 means fully disjoint stops and legs.
    """
    return geometry_weight * segment_jaccard(a, b, start=start) + (
        1.0 - geometry_weight
    ) * poi_jaccard(a, b)


def diversify(
    candidates: Sequence[SkylineRoute],
    k: int | None = None,
    *,
    diversity_lambda: float = DEFAULT_LAMBDA,
    selected: Sequence[SkylineRoute] = (),
    start: int | None = None,
    geometry_weight: float = DEFAULT_GEOMETRY_WEIGHT,
) -> list[SkylineRoute]:
    """Greedy MMR selection of up to ``k`` diverse routes.

    ``candidates`` must already be in relevance order (the
    :func:`~repro.core.dominance.rank_routes` presentation); the first
    entry therefore has the highest relevance and — with nothing
    selected yet — always opens the output, so the skyline's shortest
    route keeps rank 1 at every λ.

    ``selected`` carries routes chosen by *earlier* pages of a
    paginated session: the new page diversifies against what the user
    has already seen without re-emitting it.

    ``λ = 0`` returns ``candidates[:k]`` unchanged (identity
    permutation); ``λ = 1`` ignores relevance beyond tie-breaks and
    maximizes dissimilarity.  The output is always a permutation of a
    subset of ``candidates`` — never a route from anywhere else.
    """
    validate_lambda(diversity_lambda)
    pool = list(candidates)
    k = len(pool) if k is None else min(k, len(pool))
    if k <= 0:
        return []
    if diversity_lambda == 0.0:
        return pool[:k]
    chosen_ctx = list(selected)
    out: list[SkylineRoute] = []
    remaining = list(enumerate(pool))  # (original rank index, route)
    denom = max(len(pool), 1)
    while remaining and len(out) < k:
        best_pos = 0
        best_score = -float("inf")
        for pos, (rank, route) in enumerate(remaining):
            relevance = 1.0 - rank / denom  # strictly decreasing in rank
            penalty = max(
                (
                    route_similarity(
                        route,
                        other,
                        start=start,
                        geometry_weight=geometry_weight,
                    )
                    for other in chosen_ctx
                ),
                default=0.0,
            )
            score = (1.0 - diversity_lambda) * relevance - (
                diversity_lambda * penalty
            )
            if score > best_score:  # ties keep the earliest (best rank)
                best_score = score
                best_pos = pos
        _, route = remaining.pop(best_pos)
        out.append(route)
        chosen_ctx.append(route)
    return out
