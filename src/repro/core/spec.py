"""Position specifications: the compiled per-position matching model.

A SkySR query names one *requirement* per sequence position (a plain
category in the paper's base setting; a boolean predicate over
categories in the Section 6 "complex category requirement" variation).
Before searching, the engine compiles each requirement against the
concrete (network, forest, similarity) triple into a
:class:`PositionSpec`, which answers in O(1):

* is PoI ``p`` a semantic-match candidate here, and at what similarity
  ``h_i`` (Definition 3.3/3.4)?
* is it a *perfect* match (``h_i = 1`` — Lemma 5.5's traversal stop)?
* what is the best non-perfect similarity any candidate offers (the
  minimum semantic increment ``δ`` of Lemma 5.8)?

Compiling once per query keeps the hot search loops free of tree walks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.errors import QueryError
from repro.graph.poi import PoIIndex
from repro.semantics.category import CategoryForest
from repro.semantics.similarity import SimilarityMeasure


@runtime_checkable
class Requirement(Protocol):
    """Anything that can be compiled into a :class:`PositionSpec`.

    Plain categories satisfy this through :class:`CategoryRequirement`;
    the boolean predicates of :mod:`repro.extensions.predicates`
    implement it directly.
    """

    def compile(
        self,
        index: PoIIndex,
        similarity: SimilarityMeasure,
        position: int,
    ) -> "PositionSpec":
        """Build the concrete spec for this requirement."""
        ...

    def describe(self, forest: CategoryForest) -> str:
        """Human-readable label for results and error messages."""
        ...


@dataclass
class PositionSpec:
    """Concrete matching data for one sequence position.

    Attributes:
        index: 0-based position in the query sequence.
        label: human-readable requirement description.
        sim_map: PoI vertex id → similarity (only candidates, sim > 0).
        perfect: PoI vertex ids with similarity exactly 1.
        tree_ids: category trees the candidates are drawn from — used to
            decide whether the on-the-fly cache is route-independent
            (safe) for this query.
        best_nonperfect: largest candidate similarity strictly below 1,
            or ``None`` when every candidate is perfect.
        share_key: identity of this spec's matching model *independent
            of query position* — two specs with equal ``share_key``
            compile to the same ``sim_map``/``perfect`` under the same
            engine, so a modified-Dijkstra expansion computed for one
            can serve the other (the cross-query
            :class:`~repro.core.distcache.DistanceCache`).  ``None``
            (e.g. predicate requirements) means not shareable.
    """

    index: int
    label: str
    sim_map: dict[int, float]
    perfect: frozenset[int]
    tree_ids: frozenset[int]
    best_nonperfect: float | None = None
    share_key: tuple | None = None

    def similarity(self, vid: int) -> float | None:
        """Similarity of PoI ``vid`` at this position (None = no match)."""
        return self.sim_map.get(vid)

    def is_perfect(self, vid: int) -> bool:
        return vid in self.perfect

    @property
    def num_candidates(self) -> int:
        return len(self.sim_map)

    @property
    def num_perfect(self) -> int:
        return len(self.perfect)

    def candidates(self) -> list[int]:
        return list(self.sim_map)


@dataclass(frozen=True)
class CategoryRequirement:
    """The paper's base requirement: one category per position.

    Candidates are the tree set ``P_t`` (semantic matches); similarity
    of a PoI with several categories is the best over its categories
    (the Section 6 multi-category rule, which degenerates to the single
    category in the base setting).
    """

    category: int

    def compile(
        self,
        index: PoIIndex,
        similarity: SimilarityMeasure,
        position: int,
    ) -> PositionSpec:
        forest = index.forest
        network = index.network
        cid = self.category
        # The matching model is pure per (index, similarity, category) —
        # only the position number differs between compilations — and
        # PoIIndex is an immutable snapshot, so the expensive sim_map
        # walk is memoized on the index.  The cached containers are
        # shared across specs and treated as read-only everywhere.
        cache = getattr(index, "_category_spec_cache", None)
        if cache is None:
            cache = {}
            index._category_spec_cache = cache  # type: ignore[attr-defined]
        key = (cid, id(similarity))
        cached = cache.get(key)
        if cached is None:
            sim_map: dict[int, float] = {}
            perfect: set[int] = set()
            best_np: float | None = None
            sim_cache: dict[int, float] = {}
            for vid in index.pois_in_tree(cid):
                best = 0.0
                for poi_cid in network.poi_categories(vid):
                    sim = sim_cache.get(poi_cid)
                    if sim is None:
                        sim = similarity.similarity(forest, cid, poi_cid)
                        sim_cache[poi_cid] = sim
                    if sim > best:
                        best = sim
                if best <= 0.0:
                    continue
                sim_map[vid] = best
                if best >= 1.0:
                    perfect.add(vid)
                elif best_np is None or best > best_np:
                    best_np = best
            cached = (
                forest.name_of(cid),
                sim_map,
                frozenset(perfect),
                frozenset({forest.tree_id(cid)}),
                best_np,
            )
            cache[key] = cached
        label, sim_map, perfect_set, tree_ids, best_np = cached
        return PositionSpec(
            index=position,
            label=label,
            sim_map=sim_map,
            perfect=perfect_set,
            tree_ids=tree_ids,
            best_nonperfect=best_np,
            share_key=("cat", cid),
        )

    def describe(self, forest: CategoryForest) -> str:
        return forest.name_of(self.category)


def as_requirement(
    item: "Requirement | int | str", forest: CategoryForest
) -> Requirement:
    """Coerce a user-facing sequence item into a requirement."""
    if isinstance(item, (int, str)):
        return CategoryRequirement(forest.resolve(item))
    if isinstance(item, Requirement):
        return item
    raise QueryError(f"cannot interpret {item!r} as a category requirement")


@dataclass
class CompiledQuery:
    """A fully compiled query: one spec per position plus global facts."""

    start: int
    specs: list[PositionSpec]
    destination: int | None = None
    #: True when candidate *PoI sets* are pairwise disjoint across
    #: positions — the condition under which route-independent caching
    #: is exact (a route's PoIs can then never be candidates, stop
    #: points, or substitution witnesses of a later position's search).
    #: Tree-disjoint positions with single-category PoIs always satisfy
    #: this; multi-category PoIs spanning query trees break it.
    disjoint_trees: bool = field(default=True)

    @property
    def size(self) -> int:
        return len(self.specs)

    def labels(self) -> list[str]:
        return [spec.label for spec in self.specs]


def compile_query(
    start: int,
    items: list,
    index: PoIIndex,
    similarity: SimilarityMeasure,
    *,
    destination: int | None = None,
) -> CompiledQuery:
    """Compile a raw query sequence into position specs.

    Raises :class:`QueryError` for empty sequences, unknown vertices, or
    positions with no candidates at all (no sequenced route can exist —
    callers may catch this and return an empty result).
    """
    if not items:
        raise QueryError("the category sequence must not be empty")
    network = index.network
    if not 0 <= start < network.num_vertices:
        raise QueryError(f"unknown start vertex: {start}")
    if destination is not None and not 0 <= destination < network.num_vertices:
        raise QueryError(f"unknown destination vertex: {destination}")
    forest = index.forest
    specs: list[PositionSpec] = []
    for position, item in enumerate(items):
        requirement = as_requirement(item, forest)
        specs.append(requirement.compile(index, similarity, position))
    seen_candidates: set[int] = set()
    disjoint = True
    for spec in specs:
        candidates = spec.sim_map.keys()
        if not seen_candidates.isdisjoint(candidates):
            disjoint = False
            break
        seen_candidates |= candidates
    return CompiledQuery(
        start=start,
        specs=specs,
        destination=destination,
        disjoint_trees=disjoint,
    )
