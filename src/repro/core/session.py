"""Resumable route-planning sessions (pagination over the top-k search).

A production route service does not know up front how many
alternatives a user will want: most accept the first answer, some keep
paging.  Recomputing the whole top-2k search because someone clicked
"show more" wastes exactly the work the first query already did —
*Finding Top-k Optimal Sequenced Routes* (Liu et al.) makes the case
for incremental enumeration instead.

:class:`PlanningSession` is that incremental form.  It wraps one
:class:`~repro.core.bssr.BSSRSearch` and serves ranked alternatives
page by page:

* the first :meth:`next_page` runs the k-skyband search for the page
  size and serves ranks ``1..n``;
* each further call *resumes* the checkpointed
  :class:`~repro.core.bssr.SearchState` — queue, skyband archive,
  deferred routes, Dijkstra caches — widening the skyband to
  ``served + n`` instead of recomputing from scratch, and serves ranks
  ``served+1 .. served+n``;
* with a non-zero ``diversity_lambda`` each page is re-ranked by the
  greedy MMR selection of :mod:`repro.core.diversity`, penalizing
  overlap with everything the session has already shown.

Pagination is **exact**: with ``diversity_lambda = 0`` the
concatenation of pages ``1..p`` equals the one-shot
``top-(p·page_size)`` ranking (score-for-score — score-equivalent
routes are interchangeable representatives by Definition 4.1), which
the property tests cross-check against the brute-force oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.bssr import BSSRSearch
from repro.core.diversity import diversify, validate_lambda
from repro.core.dominance import rank_routes
from repro.core.options import BSSROptions
from repro.core.routes import SkylineRoute
from repro.core.stats import SearchStats
from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import SkySREngine, SkySRResult


@dataclass
class Page:
    """One served page of ranked (optionally diversified) alternatives."""

    number: int
    routes: list[SkylineRoute]
    first_rank: int
    stats: SearchStats = field(repr=False)
    resumed: bool
    exhausted: bool

    @property
    def ranks(self) -> range:
        """Global presentation ranks of this page's routes."""
        return range(self.first_rank, self.first_rank + len(self.routes))

    def __len__(self) -> int:
        return len(self.routes)

    def __iter__(self):
        return iter(self.routes)


class PlanningSession:
    """A resumable top-k query: page through ranked alternatives.

    Create via :meth:`repro.core.engine.SkySREngine.session` (or
    directly).  Each :meth:`next_page` call returns the next ``n``
    ranked alternatives, continuing the checkpointed search rather than
    recomputing — the per-page :class:`~repro.core.stats.SearchStats`
    expose how much cheaper each resume is.

    Sessions answer the BSSR algorithm only (the naive baselines have
    no checkpointable state) and always use per-query lower bounds.
    """

    def __init__(
        self,
        engine: "SkySREngine",
        start: int,
        categories: list,
        *,
        destination: int | None = None,
        page_size: int | None = None,
        diversity_lambda: float | None = None,
        options: BSSROptions | None = None,
    ) -> None:
        opts = options or engine.options or BSSROptions()
        if page_size is None:
            page_size = opts.page_size or max(opts.k, 1)
        if page_size < 1:
            raise QueryError(f"page_size must be >= 1, got {page_size}")
        if diversity_lambda is None:
            diversity_lambda = opts.diversity_lambda
        self.engine = engine
        self.page_size = page_size
        self.diversity_lambda = validate_lambda(diversity_lambda)
        #: the raw request sequence, kept for durable serialization
        #: (labels are not reliably resolvable back to requirements)
        self.categories = list(categories)
        self.compiled = engine.compile(
            start, categories, destination=destination
        )
        self._search = BSSRSearch(
            engine.network,
            self.compiled,
            engine.aggregator,
            opts.but(k=page_size),
            shared_cache=engine.distance_cache,
        )
        self.pages: list[Page] = []
        self._served: list[SkylineRoute] = []
        self._served_scores: set[tuple[float, float]] = set()
        self._horizon = 0  # skyband ranks consumed so far

    # ------------------------------------------------------------------

    @property
    def started(self) -> bool:
        return bool(self.pages)

    @property
    def served(self) -> list[SkylineRoute]:
        """Every route shown so far, in presentation order."""
        return list(self._served)

    @property
    def exhausted(self) -> bool:
        """True when no further page can contain anything new."""
        if not self.started:
            return False
        state = self._search.state
        return state.exhausted and len(self._served) >= len(state.skyband)

    @property
    def k(self) -> int:
        """The skyband parameter the session is currently settled for."""
        return self._search.state.k

    def total_stats(self) -> SearchStats:
        """Summed counters over every page served so far."""
        total = SearchStats(algorithm="bssr-session")
        for page in self.pages:
            total.merge(page.stats)
        return total

    # ------------------------------------------------------------------

    def next_page(self, n: int | None = None) -> Page:
        """Serve the next ``n`` (default: the session page size) ranked
        alternatives, resuming the checkpointed search as needed."""
        if n is None:
            n = self.page_size
        if n < 1:
            raise QueryError(f"page request must ask for >= 1 routes, got {n}")
        resumed = self.started
        if not self.started:
            _, stats = self._search.run()
            self._horizon = n
            if n > self._search.state.k:
                _, stats = self._widen(n, stats)
        elif self.exhausted:
            # The archive provably holds every route in existence and
            # all of them have been served: no search work to do.
            self._horizon += n
            stats = SearchStats(algorithm="bssr")
            stats.extra["exhausted"] = True
        else:
            self._horizon += n
            if self._horizon > self._search.state.k:
                _, stats = self._search.resume(self._horizon)
            else:
                # The checkpointed skyband already covers these ranks.
                stats = SearchStats(algorithm="bssr")
                stats.extra["served_from_checkpoint"] = True
        page_routes = self._select(n)
        page = Page(
            number=len(self.pages) + 1,
            routes=page_routes,
            first_rank=len(self._served) + 1,
            stats=stats,
            resumed=resumed,
            exhausted=False,
        )
        self._served.extend(page_routes)
        self._served_scores.update(r.scores() for r in page_routes)
        self.pages.append(page)
        page.exhausted = self.exhausted
        return page

    def _widen(self, k: int, first_stats: SearchStats):
        routes, stats = self._search.resume(k)
        first_stats.merge(stats)
        return routes, first_stats

    def _select(self, n: int) -> list[SkylineRoute]:
        """The next ``n`` routes: the unserved prefix of the current
        ranking, MMR-diversified when the session asks for it."""
        ranked = rank_routes(
            self._search.state.skyband.routes(), self._horizon
        )
        remaining = [
            r for r in ranked if r.scores() not in self._served_scores
        ]
        if self.diversity_lambda == 0.0:
            return remaining[:n]
        return diversify(
            remaining,
            n,
            diversity_lambda=self.diversity_lambda,
            selected=self._served,
            start=self.compiled.start,
        )

    # ------------------------------------------------------------------

    def to_result(self, page: Page) -> "SkySRResult":
        """Present one page as a :class:`~repro.core.engine.SkySRResult`
        (for cards, tables, GeoJSON export)."""
        from repro.core.engine import SkySRResult

        state = self._search.state
        return SkySRResult(
            routes=list(page.routes),
            stats=page.stats,
            start=self.compiled.start,
            labels=self.compiled.labels(),
            algorithm="bssr-session",
            destination=self.compiled.destination,
            k=state.k,
            skyband=state.skyband.routes(),
            _network=self.engine.network,
            _forest=self.engine.forest,
        )

    # ------------------------------------------------------------------
    # durable sessions (see repro.core.serialize / repro.store)

    def to_dict(self) -> dict:
        """Versioned JSON-compatible snapshot of the whole session —
        compiled query, served pages, and the full search checkpoint.
        Restore with :meth:`from_dict` (same dataset + aggregator)."""
        from repro.core.serialize import session_to_dict

        return session_to_dict(self)

    def dumps(self, *, indent: int | None = None) -> str:
        """:meth:`to_dict` as JSON text (the at-rest store format)."""
        from repro.core.serialize import dumps_session

        return dumps_session(self, indent=indent)

    @classmethod
    def from_dict(
        cls, engine: "SkySREngine", payload: dict
    ) -> "PlanningSession":
        """Restore a serialized session against ``engine``.

        The engine must serve the same dataset and aggregator the
        session was created over; malformed or version-incompatible
        payloads raise :class:`~repro.errors.SessionDecodeError`.
        """
        from repro.core.serialize import session_from_dict

        return session_from_dict(engine, payload)

    @classmethod
    def loads(cls, engine: "SkySREngine", text: str) -> "PlanningSession":
        """Inverse of :meth:`dumps` (typed errors on corrupted JSON)."""
        from repro.core.serialize import loads_session

        return loads_session(engine, text)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PlanningSession(pages={len(self.pages)}, "
            f"served={len(self._served)}, k={self.k}, "
            f"lambda={self.diversity_lambda})"
        )
