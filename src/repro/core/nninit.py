"""NNinit — the initial search of Section 5.3.1 (Algorithm 3).

Branch-and-bound needs an upper bound before it can prune anything.
NNinit seeds the skyline set cheaply by chaining nearest-neighbor
searches: for each position it runs a Dijkstra from the previous PoI to
the nearest *perfect* match; on the final leg, every *semantic* match
settled before (and including) the perfect one yields a complete
sequenced route.  One of the seeds therefore has semantic score 0
(giving the ``l̄(ϕ)`` threshold of Algorithm 4) and the others trade
semantic score for length, tightening thresholds at higher semantic
levels — without any extra graph traversal.

Degenerate cases are handled conservatively: when a leg has no
reachable perfect match the chain stops early (the skyline simply
receives fewer or no seeds and BSSR proceeds unbounded, still exact);
PoIs already used by the chain are skipped (route distinctness,
Definition 3.4 iii).
"""

from __future__ import annotations

import heapq
import math

from repro.core.dominance import SkybandSet
from repro.core.routes import SkylineRoute
from repro.core.spec import CompiledQuery
from repro.core.stats import SearchStats
from repro.graph.road_network import RoadNetwork
from repro.semantics.scoring import SemanticAggregator


def nninit(
    network: RoadNetwork,
    query: CompiledQuery,
    aggregator: SemanticAggregator,
    skyline: SkybandSet,
    stats: SearchStats | None = None,
    dest_dist: dict[int, float] | None = None,
) -> list[SkylineRoute]:
    """Seed ``skyline`` with greedily found sequenced routes.

    Returns the routes *offered* to the skyline set (before dominance
    filtering) so callers can compute Table 7's length ratio.  When the
    query has a destination, ``dest_dist`` (distances *to* the
    destination) must be supplied so seeded lengths are total lengths.
    """
    n = query.size
    specs = query.specs
    found_routes: list[SkylineRoute] = []
    prefix_pois: list[int] = []
    prefix_sims: list[float] = []
    length = 0.0
    state = aggregator.initial(n)
    source = query.start

    for position, spec in enumerate(specs):
        is_last = position == n - 1
        used = set(prefix_pois)
        dist: dict[int, float] = {source: 0.0}
        heap: list[tuple[float, int]] = [(0.0, source)]
        settled: set[int] = set()
        found: tuple[float, int] | None = None
        while heap:
            d, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            if stats is not None:
                stats.settled += 1
            usable = u not in used
            if is_last and usable:
                sim = spec.sim_map.get(u)
                if sim is not None:
                    total = length + d
                    if dest_dist is not None:
                        leg = dest_dist.get(u, math.inf)
                        total = length + d + leg
                    if total < math.inf:
                        end_state = aggregator.extend(state, sim)
                        route = SkylineRoute(
                            pois=tuple(prefix_pois) + (u,),
                            length=total,
                            semantic=aggregator.score(end_state),
                            sims=tuple(prefix_sims) + (sim,),
                        )
                        found_routes.append(route)
                        skyline.update(route)
                    if u in spec.perfect:
                        found = (d, u)
                        break
            elif usable and u in spec.perfect:
                found = (d, u)
                break
            for v, w in network.neighbors(u):
                if stats is not None:
                    stats.relaxed += 1
                nd = d + w
                if nd < dist.get(v, math.inf):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        if found is None:
            break  # no reachable perfect match: stop seeding, stay exact
        d, u = found
        length += d
        prefix_pois.append(u)
        prefix_sims.append(1.0)
        state = aggregator.extend(state, 1.0)
        source = u

    if stats is not None:
        stats.init_routes = len(found_routes)
        stats.init_length_ratio = _length_ratio(found_routes)
    return found_routes


def _length_ratio(routes: list[SkylineRoute]) -> float | None:
    """Table 7's "Ratio": length of the max-semantic seed over the
    length of the semantic-0 seed."""
    perfect = [r for r in routes if r.semantic <= 0.0]
    if not perfect or not routes:
        return None
    base = min(r.length for r in perfect)
    if base <= 0.0:
        return None
    worst = max(routes, key=lambda r: r.semantic)
    return worst.length / base
