"""NNinit — the initial search of Section 5.3.1 (Algorithm 3).

Branch-and-bound needs an upper bound before it can prune anything.
NNinit seeds the skyline set cheaply by chaining nearest-neighbor
searches: for each position it runs a Dijkstra from the previous PoI to
the nearest *perfect* match; on the final leg, every *semantic* match
settled before (and including) the perfect one yields a complete
sequenced route.  One of the seeds therefore has semantic score 0
(giving the ``l̄(ϕ)`` threshold of Algorithm 4) and the others trade
semantic score for length, tightening thresholds at higher semantic
levels — without any extra graph traversal.

Degenerate cases are handled conservatively: when a leg has no
reachable perfect match the chain stops early (the skyline simply
receives fewer or no seeds and BSSR proceeds unbounded, still exact);
PoIs already used by the chain are skipped (route distinctness,
Definition 3.4 iii).
"""

from __future__ import annotations

import heapq
import math

from repro.core.dominance import SkybandSet
from repro.core.routes import SkylineRoute
from repro.core.spec import CompiledQuery
from repro.core.stats import SearchStats
from repro.graph.contraction import ContractionHierarchy
from repro.graph.csr import flat_adjacency
from repro.graph.landmarks import LandmarkIndex
from repro.graph.road_network import RoadNetwork
from repro.semantics.scoring import SemanticAggregator


class _SweepCounters:
    """Settle/relax sink for CH sweeps (shape of ExpansionCounters)."""

    __slots__ = ("settled", "relaxed")

    def __init__(self) -> None:
        self.settled = 0
        self.relaxed = 0


def nninit(
    network: RoadNetwork,
    query: CompiledQuery,
    aggregator: SemanticAggregator,
    skyline: SkybandSet,
    stats: SearchStats | None = None,
    dest_dist: dict[int, float] | None = None,
    landmarks: LandmarkIndex | None = None,
    ch: ContractionHierarchy | None = None,
) -> list[SkylineRoute]:
    """Seed ``skyline`` with greedily found sequenced routes.

    Returns the routes *offered* to the skyline set (before dominance
    filtering) so callers can compute Table 7's length ratio.  When the
    query has a destination, ``dest_dist`` (distances *to* the
    destination) must be supplied so seeded lengths are total lengths.

    With ``landmarks`` (and the CSR backend), the *non-last* legs run
    goal-directed A* toward the position's perfect set instead of plain
    Dijkstra.  This is sound because those legs only pick the chain's
    next PoI: the seed stays a real route of its exact length, and BSSR
    never depends on seed optimality — a (theoretically possible,
    ~1e-9-relative) suboptimal pick merely weakens the initial
    thresholds.  The *last* leg must stay distance-ordered: it emits one
    seed route per semantic match settled before the perfect one.

    With ``ch`` (``BSSROptions.use_contraction``), legs with a
    ``share_key`` replace graph traversal entirely: one forward upward
    sweep against the position's cached target bucket yields exact
    distances to every candidate.  Non-last legs pick the ``(d, vid)``-
    smallest unused perfect match — the vertex Dijkstra would settle
    first; the last leg replays the settle order by iterating candidates
    sorted by ``(d, vid)``, emitting the same seeds and stopping at the
    same perfect match.  Legs without a ``share_key`` (or without
    perfect matches) fall back per-leg to the scalar kernels.
    """
    n = query.size
    specs = query.specs
    found_routes: list[SkylineRoute] = []
    prefix_pois: list[int] = []
    prefix_sims: list[float] = []
    length = 0.0
    state = aggregator.initial(n)
    source = query.start
    # Backend choice mirrors the Dijkstra flavors: CSR kernel when
    # enabled, dict-based otherwise, with identical settle/relax order
    # and stats counting.
    flat = flat_adjacency(network)

    for position, spec in enumerate(specs):
        is_last = position == n - 1
        used = set(prefix_pois)
        sim_of = spec.sim_map.get
        perfect = spec.perfect
        heap: list[tuple[float, int]] = [(0.0, source)]
        found: tuple[float, int] | None = None
        push = heapq.heappush
        pop = heapq.heappop
        settled_n = relaxed_n = 0
        # Backend loops are duplicated (rather than branching per pop /
        # per edge) so each runs with every array in a local; settle and
        # relax order — and stats totals — are identical.
        if ch is not None and spec.share_key is not None and perfect:
            counters = _SweepCounters()
            if is_last:
                row = ch.memo_row(
                    "cands", spec.share_key, source, spec.sim_map, counters
                )
                for d, u in sorted((d, u) for u, d in row.items()):
                    if u in used:
                        continue
                    sim = sim_of(u)
                    if sim is None:
                        continue
                    total = length + d
                    if dest_dist is not None:
                        leg = dest_dist.get(u, math.inf)
                        total = length + d + leg
                    if total < math.inf:
                        end_state = aggregator.extend(state, sim)
                        route = SkylineRoute(
                            pois=tuple(prefix_pois) + (u,),
                            length=total,
                            semantic=aggregator.score(end_state),
                            sims=tuple(prefix_sims) + (sim,),
                        )
                        found_routes.append(route)
                        skyline.update(route)
                    if u in perfect:
                        found = (d, u)
                        break
            else:
                row = ch.memo_row(
                    "perfect", spec.share_key, source, perfect, counters
                )
                found = min(
                    ((d, u) for u, d in row.items() if u not in used),
                    default=None,
                )
            settled_n = counters.settled
            relaxed_n = counters.relaxed
        elif (
            flat is not None
            and landmarks is not None
            and not is_last
            and spec.share_key is not None
            and perfect
        ):
            # Goal-directed A* toward the perfect set.  The landmark
            # heuristic lower-bounds the distance to the *full* perfect
            # set, which contains the goal subset (perfect minus used) —
            # min over a superset is still admissible.  The eps shave
            # makes it very slightly inconsistent, so a settled vertex
            # may carry a ~1e-9-relatively suboptimal g; every g is the
            # length of a real path, which is all seeding needs.  The
            # heuristic is a memoized flat row (one list index per
            # relaxation), which is why this path needs a ``share_key``.
            num_v, indptr, indices, weights = flat
            dist_row = [math.inf] * num_v
            dist_row[source] = 0.0
            settled_row = bytearray(num_v)
            hrow = landmarks.heuristic_row(
                ("nninit-perfect", *spec.share_key), perfect
            )
            astar = [(hrow[source], 0.0, source)]
            while astar:
                _, d, u = pop(astar)
                if settled_row[u]:
                    continue
                settled_row[u] = 1
                settled_n += 1
                if u in perfect and u not in used:
                    found = (d, u)
                    break
                lo = indptr[u]
                hi = indptr[u + 1]
                relaxed_n += hi - lo
                for i in range(lo, hi):
                    v = indices[i]
                    nd = d + weights[i]
                    if nd < dist_row[v]:
                        dist_row[v] = nd
                        push(astar, (nd + hrow[v], nd, v))
        elif flat is not None:
            num_v, indptr, indices, weights = flat
            dist_row = [math.inf] * num_v
            dist_row[source] = 0.0
            settled_row = bytearray(num_v)
            while heap:
                d, u = pop(heap)
                if settled_row[u]:
                    continue
                settled_row[u] = 1
                settled_n += 1
                usable = u not in used
                if is_last and usable:
                    sim = sim_of(u)
                    if sim is not None:
                        total = length + d
                        if dest_dist is not None:
                            leg = dest_dist.get(u, math.inf)
                            total = length + d + leg
                        if total < math.inf:
                            end_state = aggregator.extend(state, sim)
                            route = SkylineRoute(
                                pois=tuple(prefix_pois) + (u,),
                                length=total,
                                semantic=aggregator.score(end_state),
                                sims=tuple(prefix_sims) + (sim,),
                            )
                            found_routes.append(route)
                            skyline.update(route)
                        if u in perfect:
                            found = (d, u)
                            break
                elif usable and u in perfect:
                    found = (d, u)
                    break
                lo = indptr[u]
                hi = indptr[u + 1]
                relaxed_n += hi - lo
                for i in range(lo, hi):
                    v = indices[i]
                    nd = d + weights[i]
                    if nd < dist_row[v]:
                        dist_row[v] = nd
                        push(heap, (nd, v))
        else:
            dist: dict[int, float] = {source: 0.0}
            settled: set[int] = set()
            while heap:
                d, u = pop(heap)
                if u in settled:
                    continue
                settled.add(u)
                settled_n += 1
                usable = u not in used
                if is_last and usable:
                    sim = sim_of(u)
                    if sim is not None:
                        total = length + d
                        if dest_dist is not None:
                            leg = dest_dist.get(u, math.inf)
                            total = length + d + leg
                        if total < math.inf:
                            end_state = aggregator.extend(state, sim)
                            route = SkylineRoute(
                                pois=tuple(prefix_pois) + (u,),
                                length=total,
                                semantic=aggregator.score(end_state),
                                sims=tuple(prefix_sims) + (sim,),
                            )
                            found_routes.append(route)
                            skyline.update(route)
                        if u in perfect:
                            found = (d, u)
                            break
                elif usable and u in perfect:
                    found = (d, u)
                    break
                for v, w in network.neighbors(u):
                    relaxed_n += 1
                    nd = d + w
                    if nd < dist.get(v, math.inf):
                        dist[v] = nd
                        push(heap, (nd, v))
        if stats is not None:
            stats.settled += settled_n
            stats.relaxed += relaxed_n
        if found is None:
            break  # no reachable perfect match: stop seeding, stay exact
        d, u = found
        length += d
        prefix_pois.append(u)
        prefix_sims.append(1.0)
        state = aggregator.extend(state, 1.0)
        source = u

    if stats is not None:
        stats.init_routes = len(found_routes)
        stats.init_length_ratio = _length_ratio(found_routes)
    return found_routes


def _length_ratio(routes: list[SkylineRoute]) -> float | None:
    """Table 7's "Ratio": length of the max-semantic seed over the
    length of the semantic-0 seed."""
    perfect = [r for r in routes if r.semantic <= 0.0]
    if not perfect or not routes:
        return None
    base = min(r.length for r in perfect)
    if base <= 0.0:
        return None
    worst = max(routes, key=lambda r: r.semantic)
    return worst.length / base
