"""Lower-bound machinery of Section 5.3.3 (Algorithm 4, Lemma 5.8).

Two families of per-leg minimum distances tighten the length lower
bound of a partial route:

* **semantic-match minimum distance** ``l_s[i]`` — the smallest network
  distance from any candidate of position ``i`` to any candidate of
  position ``i+1``.  Always addable: every completion must traverse at
  least this much per remaining leg.
* **perfect-match minimum distance** ``l_p[i]`` — the smallest distance
  from any candidate of position ``i`` to any *perfect* candidate of
  position ``i+1``.  Larger (tighter), but only applicable under Lemma
  5.8's side conditions — when any non-perfect deviation would already
  make the route dominated, so it *must* chain perfect matches.

Both are computed with the multi-source multi-destination Dijkstra
(Lemma 5.9), with candidate sets restricted to the ``l̄(ϕ)`` ball around
the start (Algorithm 4 lines 3–4): PoIs farther than the best perfect
route are unreachable by any non-pruned route.  Radius-truncated
searches return the radius — still a valid lower bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter

from repro.core.dominance import SkybandSet
from repro.core.spec import CompiledQuery
from repro.core.stats import SearchStats
from repro.graph.dijkstra import bounded_dijkstra, multi_source_min_distance
from repro.graph.road_network import RoadNetwork


@dataclass
class LowerBounds:
    """Suffix-aggregated lower bounds, indexed by current route size.

    ``suffix_ls[k]`` (``k ∈ [0, n]``) is the minimum extra length any
    route of size ``k`` must still accumulate over its remaining legs
    (Definition 5.7's ``l_s(R)``); ``suffix_lp`` the perfect-match
    variant; ``remaining_best_np[k]`` the best non-perfect similarity
    any remaining position admits (for Lemma 5.8's ``δ``);
    ``dest_min`` a lower bound on the final leg to the destination
    (0 for destination-free queries).
    """

    suffix_ls: list[float]
    suffix_lp: list[float]
    remaining_best_np: list[float | None]
    dest_min: float = 0.0
    legs_ls: list[float] = field(default_factory=list)
    legs_lp: list[float] = field(default_factory=list)

    @classmethod
    def disabled(cls, n: int) -> "LowerBounds":
        """Zero bounds (the ``lower_bounds=False`` ablation)."""
        return cls(
            suffix_ls=[0.0] * (n + 1),
            suffix_lp=[0.0] * (n + 1),
            remaining_best_np=_remaining_best_np_from([None] * n),
            dest_min=0.0,
        )


def _remaining_best_np_from(
    per_position: list[float | None],
) -> list[float | None]:
    """Suffix-max of per-position best non-perfect similarities."""
    n = len(per_position)
    out: list[float | None] = [None] * (n + 1)
    for k in range(n - 1, -1, -1):
        best = out[k + 1]
        cur = per_position[k]
        if cur is not None and (best is None or cur > best):
            best = cur
        out[k] = best
    return out


def compute_lower_bounds(
    network: RoadNetwork,
    query: CompiledQuery,
    skyline: SkybandSet,
    *,
    enabled: bool = True,
    perfect_enabled: bool = True,
    dest_dist: dict[int, float] | None = None,
    stats: SearchStats | None = None,
) -> LowerBounds:
    """Algorithm 4 — compute ``l_s``/``l_p`` legs and their suffixes."""
    n = query.size
    specs = query.specs
    per_position_np = [spec.best_nonperfect for spec in specs]
    bounds = LowerBounds(
        suffix_ls=[0.0] * (n + 1),
        suffix_lp=[0.0] * (n + 1),
        remaining_best_np=_remaining_best_np_from(per_position_np),
    )
    if not enabled:
        return bounds

    started = perf_counter()
    radius = skyline.perfect_route_length()  # l̄(ϕ)
    ball: dict[int, float] | None = None
    if radius < math.inf:
        ball = bounded_dijkstra(network, query.start, radius)

    def restrict(vids) -> list[int]:
        if ball is None:
            return list(vids)
        return [v for v in vids if v in ball]

    legs_ls: list[float] = []
    legs_lp: list[float] = []
    for j in range(n - 1):
        sources = restrict(specs[j].sim_map)
        sem_targets = restrict(specs[j + 1].sim_map)
        legs_ls.append(
            multi_source_min_distance(
                network, sources, sem_targets, radius=radius
            )
        )
        if perfect_enabled:
            perfect_targets = restrict(specs[j + 1].perfect)
            legs_lp.append(
                multi_source_min_distance(
                    network, sources, perfect_targets, radius=radius
                )
            )
        else:
            legs_lp.append(0.0)

    # suffix over remaining legs: a route of size k has legs k-1 … n-2
    # still ahead of it (0-based legs between positions j and j+1).
    for k in range(n - 1, 0, -1):
        bounds.suffix_ls[k] = bounds.suffix_ls[k + 1] + legs_ls[k - 1]
        lp_leg = max(legs_lp[k - 1], legs_ls[k - 1])
        bounds.suffix_lp[k] = bounds.suffix_lp[k + 1] + lp_leg
    # An empty route has at least the size-1 remainder ahead of it.
    bounds.suffix_ls[0] = bounds.suffix_ls[1]
    bounds.suffix_lp[0] = bounds.suffix_lp[1]
    bounds.legs_ls = legs_ls
    bounds.legs_lp = legs_lp

    if dest_dist is not None and n >= 1:
        last_candidates = restrict(specs[n - 1].sim_map)
        bounds.dest_min = min(
            (dest_dist.get(p, math.inf) for p in last_candidates),
            default=math.inf,
        )

    if stats is not None:
        stats.bounds_time = perf_counter() - started
        stats.sum_ls = bounds.suffix_ls[1]
        stats.sum_lp = bounds.suffix_lp[1]
    return bounds
