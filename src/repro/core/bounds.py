"""Lower-bound machinery of Section 5.3.3 (Algorithm 4, Lemma 5.8).

Two families of per-leg minimum distances tighten the length lower
bound of a partial route:

* **semantic-match minimum distance** ``l_s[i]`` — the smallest network
  distance from any candidate of position ``i`` to any candidate of
  position ``i+1``.  Always addable: every completion must traverse at
  least this much per remaining leg.
* **perfect-match minimum distance** ``l_p[i]`` — the smallest distance
  from any candidate of position ``i`` to any *perfect* candidate of
  position ``i+1``.  Larger (tighter), but only applicable under Lemma
  5.8's side conditions — when any non-perfect deviation would already
  make the route dominated, so it *must* chain perfect matches.

Both are computed with the multi-source multi-destination Dijkstra
(Lemma 5.9), with candidate sets restricted to the ``l̄(ϕ)`` ball around
the start (Algorithm 4 lines 3–4): PoIs farther than the best perfect
route are unreachable by any non-pruned route.  Radius-truncated
searches return the radius — still a valid lower bound.

With a :class:`~repro.graph.landmarks.LandmarkIndex` supplied
(``BSSROptions.use_landmarks``), two sharpenings apply on top:

* each leg is maxed with the ALT set-to-set bound over the same
  restricted candidate sets — it can exceed the Dijkstra value exactly
  when the multi-source search was radius-truncated or the sets are
  disconnected;
* per-position candidate *profiles* (landmark-table extremes over each
  restricted set) are retained on the result, letting BSSR's pruning
  test bound the next leg from the concrete last vertex of each
  partial route — including the start → position-0 leg, which the
  per-leg family cannot see at all.

Profiles are advisory and never serialized; a restored checkpoint
recomputes them with the bounds on its next resume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter

from repro.core.dominance import SkybandSet
from repro.core.spec import CompiledQuery
from repro.core.stats import SearchStats
from repro.graph.contraction import (
    CHDistanceOracle,
    ContractionHierarchy,
    shared_bucket,
)
from repro.graph.dijkstra import bounded_dijkstra, multi_source_min_distance
from repro.graph.landmarks import LandmarkIndex, Profile, _shaved
from repro.graph.road_network import RoadNetwork


@dataclass
class LowerBounds:
    """Suffix-aggregated lower bounds, indexed by current route size.

    ``suffix_ls[k]`` (``k ∈ [0, n]``) is the minimum extra length any
    route of size ``k`` must still accumulate over its remaining legs
    (Definition 5.7's ``l_s(R)``); ``suffix_lp`` the perfect-match
    variant; ``remaining_best_np[k]`` the best non-perfect similarity
    any remaining position admits (for Lemma 5.8's ``δ``);
    ``dest_min`` a lower bound on the final leg to the destination
    (0 for destination-free queries).
    """

    suffix_ls: list[float]
    suffix_lp: list[float]
    remaining_best_np: list[float | None]
    dest_min: float = 0.0
    legs_ls: list[float] = field(default_factory=list)
    legs_lp: list[float] = field(default_factory=list)
    #: per-position ALT profiles over the restricted candidate sets
    #: (``None`` without landmarks); advisory — not serialized, and
    #: recomputed with the bounds on resume
    position_profiles: list[Profile | None] | None = None

    @classmethod
    def disabled(cls, n: int) -> "LowerBounds":
        """Zero bounds (the ``lower_bounds=False`` ablation)."""
        return cls(
            suffix_ls=[0.0] * (n + 1),
            suffix_lp=[0.0] * (n + 1),
            remaining_best_np=_remaining_best_np_from([None] * n),
            dest_min=0.0,
        )


def _remaining_best_np_from(
    per_position: list[float | None],
) -> list[float | None]:
    """Suffix-max of per-position best non-perfect similarities."""
    n = len(per_position)
    out: list[float | None] = [None] * (n + 1)
    for k in range(n - 1, -1, -1):
        best = out[k + 1]
        cur = per_position[k]
        if cur is not None and (best is None or cur > best):
            best = cur
        out[k] = best
    return out


def compute_lower_bounds(
    network: RoadNetwork,
    query: CompiledQuery,
    skyline: SkybandSet,
    *,
    enabled: bool = True,
    perfect_enabled: bool = True,
    dest_dist: dict[int, float] | None = None,
    stats: SearchStats | None = None,
    landmarks: LandmarkIndex | None = None,
    ch: ContractionHierarchy | None = None,
    shared_cache=None,
) -> LowerBounds:
    """Algorithm 4 — compute ``l_s``/``l_p`` legs and their suffixes.

    ``landmarks`` optionally sharpens each leg with the ALT set-to-set
    bound and attaches per-position candidate profiles for BSSR's
    per-route next-leg floor (see the module docstring).

    ``ch`` (``BSSROptions.use_contraction``) replaces the multi-source
    Dijkstras outright: each leg becomes the **exact** set-to-set
    minimum distance over the *full* candidate sets, served by one
    multi-source upward sweep against the target set's hub bucket.
    Full-set minima can only under- (never over-) state the restricted
    ones, so they stay valid lower bounds; they are also never
    radius-truncated, which is where they beat the Dijkstra values.
    Buckets depend only on the target sets and are cached across
    queries in ``shared_cache`` (a
    :class:`~repro.core.distcache.DistanceCache`) — a warm query skips
    every downward sweep.  CH sums associate differently from the
    search's left-to-right accumulation, so each value is eps-shaved
    exactly like the ALT bounds before use.  With CH (and no landmark
    restriction in play) the l̄(ϕ)-ball Dijkstra is skipped entirely.
    """
    n = query.size
    specs = query.specs
    per_position_np = [spec.best_nonperfect for spec in specs]
    bounds = LowerBounds(
        suffix_ls=[0.0] * (n + 1),
        suffix_lp=[0.0] * (n + 1),
        remaining_best_np=_remaining_best_np_from(per_position_np),
    )
    if not enabled:
        return bounds

    started = perf_counter()
    radius = skyline.perfect_route_length()  # l̄(ϕ)
    ball: dict[int, float] | None = None
    if radius < math.inf and landmarks is None and ch is None:
        # With CH the legs are exact over the full sets and never
        # radius-truncated, so the ball buys nothing worth its Dijkstra.
        ball = bounded_dijkstra(network, query.start, radius)

    if radius < math.inf and landmarks is not None:
        # ALT replaces the exact ball: lb(start, v) > radius implies
        # d(start, v) > radius, so this keeps a superset of the ball —
        # legs over supersets are weaker but still valid lower bounds,
        # and the l̄(ϕ)-ball Dijkstra is skipped entirely.
        start = query.start
        within = landmarks.restrict_within

        def restrict(vids) -> list[int]:
            return within(start, vids, radius)

    else:

        def restrict(vids) -> list[int]:
            if ball is None:
                return list(vids)
            return [v for v in vids if v in ball]

    candidate_sets = [restrict(spec.sim_map) for spec in specs]
    profiles: list[Profile | None] | None = None
    if landmarks is not None:
        profiles = [landmarks.profile(c) for c in candidate_sets]
        bounds.position_profiles = profiles

    legs_ls: list[float] = []
    legs_lp: list[float] = []
    for j in range(n - 1):
        sources = candidate_sets[j]
        if ch is not None:
            # Exact set-to-set minimum over the *full* source and target
            # sets: both sides are then query-independent, so the value
            # is a per-network constant the hierarchy memoizes — after
            # the first query a CH leg costs a dict lookup.  Full-set
            # minima only under-state restricted ones (still valid), and
            # the ALT max below restores per-query tightness.
            bucket = shared_bucket(
                ch, network, shared_cache, "cands",
                specs[j + 1].share_key, specs[j + 1].sim_map,
            )
            src_key = specs[j].share_key
            tgt_key = specs[j + 1].share_key
            if src_key is not None and tgt_key is not None:
                leg = ch.memo_min(
                    ("ls", src_key, tgt_key), specs[j].sim_map, bucket
                )
                if sources and len(sources) < len(specs[j].sim_map):
                    # The l̄(ϕ) ball restricted the source side; the
                    # min of the per-vertex exact floors over just the
                    # surviving sources is tighter than the full-set
                    # constant, and each floor is a memoized dict
                    # lookup (shared with BSSR's per-route floor).
                    leg = max(
                        leg,
                        min(
                            ch.vertex_min(
                                "cands", tgt_key, u, specs[j + 1].sim_map
                            )
                            for u in sources
                        ),
                    )
            else:
                leg = ch.min_from_set(sources, bucket)
            leg = _shaved(leg, 0.0)
        else:
            sem_targets = candidate_sets[j + 1]
            leg = multi_source_min_distance(
                network, sources, sem_targets, radius=radius
            )
        if profiles is not None:
            alt = landmarks.min_between(profiles[j], profiles[j + 1])
            if alt > leg:
                leg = alt
        legs_ls.append(leg)
        if perfect_enabled:
            if ch is not None:
                pbucket = shared_bucket(
                    ch, network, shared_cache, "perfect",
                    specs[j + 1].share_key, specs[j + 1].perfect,
                )
                if src_key is not None and tgt_key is not None:
                    leg_p = ch.memo_min(
                        ("lp", src_key, tgt_key), specs[j].sim_map, pbucket
                    )
                    if sources and len(sources) < len(specs[j].sim_map):
                        leg_p = max(
                            leg_p,
                            min(
                                ch.vertex_min(
                                    "perfect",
                                    tgt_key,
                                    u,
                                    specs[j + 1].perfect,
                                )
                                for u in sources
                            ),
                        )
                else:
                    leg_p = ch.min_from_set(sources, pbucket)
                leg_p = _shaved(leg_p, 0.0)
                if profiles is not None:
                    alt_p = landmarks.min_between(
                        profiles[j],
                        landmarks.profile(restrict(specs[j + 1].perfect)),
                    )
                    if alt_p > leg_p:
                        leg_p = alt_p
            else:
                perfect_targets = restrict(specs[j + 1].perfect)
                leg_p = multi_source_min_distance(
                    network, sources, perfect_targets, radius=radius
                )
                if profiles is not None:
                    alt_p = landmarks.min_between(
                        profiles[j], landmarks.profile(perfect_targets)
                    )
                    if alt_p > leg_p:
                        leg_p = alt_p
            legs_lp.append(leg_p)
        else:
            legs_lp.append(0.0)

    # suffix over remaining legs: a route of size k has legs k-1 … n-2
    # still ahead of it (0-based legs between positions j and j+1).
    for k in range(n - 1, 0, -1):
        bounds.suffix_ls[k] = bounds.suffix_ls[k + 1] + legs_ls[k - 1]
        lp_leg = max(legs_lp[k - 1], legs_ls[k - 1])
        bounds.suffix_lp[k] = bounds.suffix_lp[k + 1] + lp_leg
    # An empty route has at least the size-1 remainder ahead of it.
    bounds.suffix_ls[0] = bounds.suffix_ls[1]
    bounds.suffix_lp[0] = bounds.suffix_lp[1]
    bounds.legs_ls = legs_ls
    bounds.legs_lp = legs_lp

    if dest_dist is not None and n >= 1:
        last_candidates = candidate_sets[n - 1]
        if ch is not None and isinstance(dest_dist, CHDistanceOracle):
            # One multi-source sweep against the destination's bucket
            # beats probing the lazy oracle once per candidate; over the
            # full last set the value is per-(network, destination), so
            # it memoizes too.
            last_key = specs[n - 1].share_key
            if last_key is not None and query.destination is not None:
                dest_min = ch.memo_min(
                    ("dest", last_key, query.destination),
                    specs[n - 1].sim_map,
                    dest_dist.bucket,
                )
            else:
                dest_min = ch.min_from_set(last_candidates, dest_dist.bucket)
            bounds.dest_min = _shaved(dest_min, 0.0)
        else:
            bounds.dest_min = min(
                (dest_dist.get(p, math.inf) for p in last_candidates),
                default=math.inf,
            )

    if stats is not None:
        stats.bounds_time = perf_counter() - started
        stats.sum_ls = bounds.suffix_ls[1]
        stats.sum_lp = bounds.suffix_lp[1]
    return bounds
