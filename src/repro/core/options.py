"""BSSR configuration: every Section 5.3 optimization is toggleable.

The paper's "BSSR w/o Opt" baseline (Figure 3) is
:meth:`BSSROptions.without_optimizations`; the ablation experiments
(Tables 7–8, Figures 4–5) toggle one technique at a time.  The
correctness tests assert that *every* combination returns identical
skyline scores — the optimizations are pure pruning, never semantics.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace

from repro.errors import QueryError


@dataclass(frozen=True)
class BSSROptions:
    """Feature flags for the bulk SkySR algorithm.

    Attributes:
        initial_search: run NNinit (Algorithm 3) to seed the upper
            bound (Section 5.3.1).
        priority_queue: use the proposed queue order — size descending,
            semantic ascending, length ascending (Section 5.3.2);
            ``False`` falls back to the conventional distance-based
            order.
        lower_bounds: compute the semantic-match minimum distances
            ``l_s`` (Algorithm 4) and add them to partial lengths when
            pruning (Section 5.3.3).
        perfect_match_bound: additionally apply Lemma 5.8's
            perfect-match minimum distance ``l_p`` rule (requires
            ``lower_bounds``).
        caching: reuse modified-Dijkstra expansions via the on-the-fly
            cache (Section 5.3.4).  Automatically (and exactly) bypassed
            when query positions share category trees.
        use_landmarks: sharpen the Section 5.3.3 bounds with ALT
            (landmark triangle-inequality) lower bounds from
            :mod:`repro.graph.landmarks` — both the per-leg minimum
            distances and a per-route next-leg floor anchored at the
            route's last vertex (including the otherwise-unbounded
            start leg).  Requires ``lower_bounds``; pure pruning, never
            semantics.  The landmark tables are built once per network
            and memoized.
        use_contraction: serve exact legs from the contraction
            hierarchy (:mod:`repro.graph.contraction`, memoized per
            network): the Section 5.3.3 leg bounds become exact
            set-to-set minima, NNinit's chain runs on one-to-many
            upward sweeps, and destination queries replace the eager
            full reverse Dijkstra with a lazy CH oracle.  Pure
            pruning/acceleration — result scores are unchanged (equal
            bit for bit on integer-weight graphs; within float
            round-off of the summation order otherwise, which the
            eps-shaved bounds absorb).  Also gated globally by
            :func:`repro.graph.contraction.set_ch_enabled` /
            ``REPRO_DISABLE_CH=1``.
        k: answer the *top-k* sequenced route query — the search keeps
            expanding until the k-skyband (every route dominated by
            fewer than ``k`` others) is complete, and results expose up
            to ``k`` ranked alternatives via
            :meth:`~repro.core.engine.SkySRResult.topk`.  ``k = 1``
            (default) is the paper's plain skyline query.
        page_size: default page size for resumable
            :class:`~repro.core.session.PlanningSession` pagination;
            ``None`` falls back to ``k``.  Sessions serve ranks
            ``1..page_size`` first and resume the checkpointed search
            for each further page.
        diversity_lambda: MMR trade-off for diversity re-ranking of
            top-k alternatives (``0`` = pure rank order, the default
            and the exact-pagination mode; ``1`` = pure dissimilarity).
        max_routes_expanded: optional safety valve for interactive
            services; ``None`` (default) never truncates.  When hit, the
            query raises :class:`~repro.errors.AlgorithmError`.
    """

    initial_search: bool = True
    priority_queue: bool = True
    lower_bounds: bool = True
    perfect_match_bound: bool = True
    caching: bool = True
    use_landmarks: bool = False
    use_contraction: bool = False
    k: int = 1
    page_size: int | None = None
    diversity_lambda: float = 0.0
    max_routes_expanded: int | None = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise QueryError(f"top-k requires k >= 1, got {self.k}")
        if self.page_size is not None and self.page_size < 1:
            raise QueryError(
                f"page_size requires a positive size, got {self.page_size}"
            )
        if not 0.0 <= self.diversity_lambda <= 1.0:
            raise QueryError(
                "diversity_lambda must be within [0, 1], got "
                f"{self.diversity_lambda}"
            )

    @classmethod
    def all_enabled(cls) -> "BSSROptions":
        """The full BSSR configuration (the paper's "BSSR")."""
        return cls()

    @classmethod
    def without_optimizations(cls) -> "BSSROptions":
        """The paper's "BSSR w/o Opt": plain branch-and-bound only."""
        return cls(
            initial_search=False,
            priority_queue=False,
            lower_bounds=False,
            perfect_match_bound=False,
            caching=False,
        )

    def but(self, **changes) -> "BSSROptions":
        """A copy with some flags changed (ablation helper)."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-compatible form (all fields are plain scalars)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "BSSROptions":
        """Inverse of :meth:`to_dict`; strict about unknown fields so a
        payload written by a newer library version is rejected instead
        of silently dropping the flags it does not understand."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise QueryError(f"unknown BSSROptions field(s): {unknown}")
        return cls(**payload)

    def effective_perfect_bound(self) -> bool:
        """Lemma 5.8 needs the ``l_s``/``l_p`` machinery to be active."""
        return self.perfect_match_bound and self.lower_bounds
