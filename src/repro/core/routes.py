"""Route value types (Definitions 3.2, 3.4, 3.5 of the paper).

Two representations:

* :class:`PartialRoute` — a route under construction inside BSSR's
  priority queue ``Q_b``; carries the incremental aggregator state so
  extending by one PoI is O(1);
* :class:`SkylineRoute` — an immutable finished sequenced route with its
  two scores, as returned to users and stored in the skyline set.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SkylineRoute:
    """A finished sequenced route with its two scores.

    Attributes:
        pois: PoI vertex ids in visiting order (⟨p_1 … p_n⟩).
        length: length score ``l(R)`` (Eq. 1) — includes the leg from
            the start point to the first PoI, and, for destination
            queries, the final leg to the destination.
        semantic: semantic score ``s(R)`` (Eq. 7); 0 ⇔ all perfect.
        sims: per-position category similarities ``h_i``.
    """

    pois: tuple[int, ...]
    length: float
    semantic: float
    sims: tuple[float, ...] = ()

    @property
    def size(self) -> int:
        return len(self.pois)

    def scores(self) -> tuple[float, float]:
        return (self.length, self.semantic)

    def is_perfect(self) -> bool:
        return self.semantic <= 0.0

    def __str__(self) -> str:
        chain = " -> ".join(str(p) for p in self.pois)
        return f"[l={self.length:.4g} s={self.semantic:.4g}] {chain}"


@dataclass
class PartialRoute:
    """A route prefix on BSSR's queue ``Q_b``.

    ``sem_state`` is the aggregator's incremental state (e.g. the
    running similarity product Π for Eq. 7) and ``semantic`` its score —
    the *possible minimum* semantic score of any completion
    (Definition 3.5), which Lemma 5.2 uses as the lower bound.
    """

    pois: tuple[int, ...]
    length: float
    semantic: float
    sem_state: object
    sims: tuple[float, ...] = ()
    #: insertion order, used as a heap tiebreak
    serial: int = field(default=0, compare=False)

    @property
    def size(self) -> int:
        return len(self.pois)

    @property
    def last(self) -> int:
        """The PoI this route currently ends at."""
        return self.pois[-1]

    def contains(self, vid: int) -> bool:
        return vid in self.pois

    def to_skyline_route(self) -> SkylineRoute:
        return SkylineRoute(
            pois=self.pois,
            length=self.length,
            semantic=self.semantic,
            sims=self.sims,
        )

    def __str__(self) -> str:
        chain = " -> ".join(str(p) for p in self.pois) or "⟨⟩"
        return f"Partial[l={self.length:.4g} s={self.semantic:.4g}] {chain}"
