"""Table 6 — per-query peak memory for the four algorithms."""

from repro.experiments import table6

from .conftest import emit


def test_table6_report(benchmark, bench_config, capsys):
    report = benchmark.pedantic(
        lambda: table6.run(bench_config), rounds=1, iterations=1
    )
    emit(capsys, report)
    # the paper's headline memory claim (abstract / Section 7.2): BSSR
    # achieves its speedups "without increasing memory usage" — i.e. it
    # never needs more memory than the PNE-based naive approach.  (The
    # Dij-is-worst ordering is scale-dependent; see EXPERIMENTS.md.)
    for row in report.data["rows"]:
        _graph, bssr, _noopt, pne, _dij = row[1:]
        if bssr is None or pne is None:
            continue
        assert bssr <= pne * 1.1, f"BSSR must not out-consume PNE on {row[0]}"
