"""Session resume vs recompute — the pagination acceptance benchmark.

A resumable :class:`~repro.core.session.PlanningSession` must make
"show me more" cheap: serving ranks ``k+1..2k`` by resuming the
checkpointed search has to do *strictly less* search work — fewer
queue pops (``SearchStats.routes_expanded``) — than recomputing the
one-shot ``2k`` query from scratch, while returning score-identical
ranked routes.  Both properties are asserted here on every preset, and
the report table quantifies the saving.
"""

import pytest

from repro.core.engine import SkySREngine
from repro.core.options import BSSROptions
from repro.datasets.workloads import generate_workload
from repro.experiments import pagination

from .conftest import emit

PAGE_SIZE = 3


def _scores(routes):
    return [(r.length, round(r.semantic, 9)) for r in routes]


def test_pagination_report(benchmark, bench_config, capsys):
    report = benchmark.pedantic(
        lambda: pagination.run(bench_config), rounds=1, iterations=1
    )
    emit(capsys, report)
    for name, cell in report.data["cells"].items():
        # Acceptance: resuming page 2 does strictly less search work
        # than recomputing the 2k query from scratch.
        assert (
            cell["resume"].routes_expanded < cell["fresh"].routes_expanded
        ), (
            f"{name}: resume popped {cell['resume'].routes_expanded} "
            f">= fresh {cell['fresh'].routes_expanded}"
        )


@pytest.mark.parametrize("dataset_name", ["tokyo", "nyc", "cal"])
def test_resume_beats_recompute(
    benchmark, bench_config, dataset_name, request
):
    dataset = request.getfixturevalue(
        {"tokyo": "tokyo", "nyc": "nyc", "cal": "cal"}[dataset_name]
    )
    engine = SkySREngine(dataset.network, dataset.forest)
    query = generate_workload(dataset, 3, 1, seed=bench_config.seed)[0]
    fresh = engine.query(
        query.start,
        list(query.categories),
        options=BSSROptions().but(k=2 * PAGE_SIZE),
    )

    def serve_two_pages():
        session = engine.session(
            query.start, list(query.categories), page_size=PAGE_SIZE
        )
        page1 = session.next_page()
        page2 = session.next_page()
        return session, page1, page2

    session, page1, page2 = benchmark.pedantic(
        serve_two_pages, rounds=3, iterations=1
    )
    # Exactness: pages 1+2 equal the one-shot top-2k, score for score.
    assert _scores(page1.routes) + _scores(page2.routes) == _scores(
        fresh.topk(2 * PAGE_SIZE)
    )
    # Strictly less work: the resumed leg pops fewer routes than the
    # from-scratch 2k search (which repeats all of page 1's work).
    assert page2.stats.routes_expanded < fresh.stats.routes_expanded
    # ... and the whole session never does more pops than recompute
    # *plus* the first page (no pathological duplication).
    total = session.total_stats()
    assert total.routes_expanded <= (
        page1.stats.routes_expanded + fresh.stats.routes_expanded
    )
