"""Table 9 / Figure 7 — the Tokyo dinner use case (destination query)."""

from repro.experiments import table9

from .conftest import emit


def test_table9_report(benchmark, bench_config, capsys):
    report = benchmark.pedantic(
        lambda: table9.run(bench_config), rounds=1, iterations=1
    )
    emit(capsys, report)
    rows = report.data["rows"]
    assert rows, "the Tokyo scenario must return at least one route"
    semantics = [row[1] for row in rows]
    assert any(s == 0.0 for s in semantics)
