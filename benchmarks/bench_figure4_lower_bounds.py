"""Figure 4 — semantic/perfect minimum-distance ratios; benchmarks
the Algorithm-4 bound computation."""

from repro.core.bounds import compute_lower_bounds
from repro.core.dominance import SkylineSet
from repro.core.nninit import nninit
from repro.core.spec import compile_query
from repro.core.stats import SearchStats
from repro.experiments import figure4
from repro.semantics.scoring import ProductAggregator
from repro.semantics.similarity import HierarchyWuPalmer

from .conftest import emit


def test_figure4_report(benchmark, bench_config, capsys):
    report = benchmark.pedantic(
        lambda: figure4.run(bench_config), rounds=1, iterations=1
    )
    emit(capsys, report)


def test_benchmark_bound_computation(benchmark, tokyo, tokyo_queries):
    query = tokyo_queries[0]
    compiled = compile_query(
        query.start,
        list(query.categories),
        tokyo.index,
        HierarchyWuPalmer(),
    )
    skyline = SkylineSet()
    nninit(
        tokyo.network, compiled, ProductAggregator(), skyline, SearchStats()
    )

    def run():
        return compute_lower_bounds(tokyo.network, compiled, skyline)

    bounds = benchmark(run)
    assert len(bounds.suffix_ls) == compiled.size + 1
