"""Shared configuration for the benchmark suite.

Every benchmark module regenerates one of the paper's tables/figures
(printed to stdout in the paper's row/series shape) and times the
underlying operations with pytest-benchmark.

Environment knobs (see ``repro.experiments.harness``):

* ``REPRO_SCALE``   — dataset size multiplier (default here: 0.12)
* ``REPRO_QUERIES`` — queries per experiment cell (default here: 2)
* ``REPRO_BUDGET``  — per-cell wall-clock budget in seconds (default: 8)

Defaults are sized so the full suite finishes in minutes on a laptop;
raise the knobs to approach the paper's regime.
"""

from __future__ import annotations

import os

import pytest

from repro.datasets.workloads import generate_workload
from repro.experiments.harness import ExperimentConfig, dataset_by_name


def _default(name: str, value: str) -> None:
    os.environ.setdefault(name, value)


_default("REPRO_SCALE", "0.12")
_default("REPRO_QUERIES", "2")
_default("REPRO_BUDGET", "8")


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return ExperimentConfig.from_env()


@pytest.fixture(scope="session")
def tokyo(bench_config):
    return dataset_by_name("tokyo", bench_config.scale)


@pytest.fixture(scope="session")
def nyc(bench_config):
    return dataset_by_name("nyc", bench_config.scale)


@pytest.fixture(scope="session")
def cal(bench_config):
    return dataset_by_name("cal", bench_config.scale)


@pytest.fixture(scope="session")
def tokyo_queries(tokyo, bench_config):
    return generate_workload(
        tokyo, 3, bench_config.queries_per_cell, seed=bench_config.seed
    )


def emit(capsys, report) -> None:
    """Print a paper-shaped report past pytest's capture."""
    with capsys.disabled():
        print()
        print(report)
