"""Figure 5 — on-the-fly caching: modified-Dijkstra execution counts."""

from repro.core.engine import SkySREngine
from repro.core.options import BSSROptions
from repro.experiments import figure5

from .conftest import emit


def test_figure5_report(benchmark, bench_config, capsys):
    report = benchmark.pedantic(
        lambda: figure5.run(bench_config), rounds=1, iterations=1
    )
    emit(capsys, report)
    # the cache can only reduce executions
    for row in report.data["rows"]:
        with_cache, without_cache = row[2], row[3]
        if with_cache is not None and without_cache is not None:
            assert with_cache <= without_cache + 1e-9


def test_benchmark_query_without_cache(benchmark, tokyo, tokyo_queries):
    engine = SkySREngine(tokyo.network, tokyo.forest)
    query = tokyo_queries[0]
    options = BSSROptions().but(caching=False)

    def run():
        return engine.query(
            query.start, list(query.categories), options=options
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.stats.cache_hits == 0
