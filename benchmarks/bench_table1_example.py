"""Table 1 — the NYC cupcake → art museum → jazz club example."""

from repro.experiments import table1

from .conftest import emit


def test_table1_report(benchmark, bench_config, capsys):
    report = benchmark.pedantic(
        lambda: table1.run(bench_config), rounds=1, iterations=1
    )
    emit(capsys, report)
    rows = report.data["rows"]
    assert rows, "the scenario must return at least one route"
    # paper's claim: the skyline offers routes shorter than (or equal
    # to) the perfect-match route, trading semantic fit
    lengths = [row[0] for row in rows]
    assert lengths == sorted(lengths)
    perfect_rows = [row for row in rows if row[1] == 0.0]
    assert perfect_rows, "a perfect-match route must exist"
    assert min(lengths) <= perfect_rows[0][0]
