"""Figure 6 — number of skyline sequenced routes per query."""

from repro.experiments import figure6

from .conftest import emit


def test_figure6_report(benchmark, bench_config, capsys):
    report = benchmark.pedantic(
        lambda: figure6.run(bench_config), rounds=1, iterations=1
    )
    emit(capsys, report)
    # skylines are small (the paper observes <= ~8 routes)
    for values in report.data["series"].values():
        for value in values:
            if value is not None:
                assert 1 <= value <= 20
