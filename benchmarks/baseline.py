"""Committed-baseline plumbing for the artifact-writing benchmarks.

The perf-guard benchmarks (``bench_core_query.py``,
``bench_session_store.py``) compare the current run against a value
read from the committed ``BENCH_*.json`` artifact.  A missing artifact
— a fresh clone before the first run, or a refactor that renamed a
guard key — must never *silently* disable that comparison:

* :func:`load_baseline` prints a loud ``no baseline ... writing
  fresh`` line whenever the committed value is absent, and **fails**
  instead when ``REPRO_BENCH_CHECK=1`` is set (CI runs with it, so a
  guard can only be skipped by an explicit, visible decision);
* ``python benchmarks/baseline.py --check`` verifies that every
  guarded key exists in the committed artifacts and exits nonzero
  otherwise — a cheap CI step that catches a renamed or dropped guard
  column without running any benchmark.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: environment switch: set to fail (rather than log) on missing baselines
CHECK_ENV = "REPRO_BENCH_CHECK"

#: artifact name -> dotted key paths its regression guard compares
GUARDED: dict[str, tuple[str, ...]] = {
    "BENCH_core_query.json": (
        "scenarios.figure3.csr_alt.p95_s",
        "scenarios.figure3.ch.p95_s",
        "scenarios.figure3.ch_warm.p95_s",
    ),
    "BENCH_session_store.json": ("restore_latency.p95_s",),
}


def read_key(payload: dict, dotted: str):
    """``payload["a"]["b"]["c"]`` for ``"a.b.c"``; None when absent."""
    current = payload
    for part in dotted.split("."):
        if not isinstance(current, dict) or part not in current:
            return None
        current = current[part]
    return current


def load_baseline(artifact: Path, dotted: str):
    """The committed guard value at ``dotted``, or ``None`` — loudly.

    Call *before* the benchmark rewrites the artifact.  ``None`` means
    the guard cannot run this time; the benchmark writes a fresh
    artifact instead.  Under ``REPRO_BENCH_CHECK=1`` a missing baseline
    is an assertion failure: CI must never skip a regression guard
    without anyone noticing.
    """
    value = None
    if artifact.exists():
        value = read_key(json.loads(artifact.read_text()), dotted)
    if value is None:
        message = (
            f"[bench] no baseline for {artifact.name}:{dotted} — "
            "skipping the regression guard, writing a fresh artifact"
        )
        if os.environ.get(CHECK_ENV):
            raise AssertionError(
                f"{message} ({CHECK_ENV}=1 forbids silent skips; commit "
                "a regenerated artifact or fix the guard key)"
            )
        print(message)
    return value


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="verify the committed BENCH_*.json artifacts carry "
        "every value the benchmark regression guards compare against"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero if any guarded artifact/key is missing",
    )
    args = parser.parse_args(argv)
    if not args.check:
        parser.error("nothing to do; pass --check")
    failures: list[str] = []
    checked = 0
    for name, keys in GUARDED.items():
        path = ROOT / name
        if not path.exists():
            failures.append(f"{name}: artifact missing")
            continue
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            failures.append(f"{name}: not valid JSON ({exc})")
            continue
        for dotted in keys:
            checked += 1
            if read_key(payload, dotted) is None:
                failures.append(f"{name}: missing guard key {dotted!r}")
    if failures:
        for failure in failures:
            print(f"baseline check FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"baseline check OK: {checked} guard key(s) across "
        f"{len(GUARDED)} artifact(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
