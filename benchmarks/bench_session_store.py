"""Durable sessions — restore latency, resume savings, store hit rate.

The durable-session machinery only earns its keep if restoring a
serialized :class:`~repro.core.session.PlanningSession` is cheap and
the restored checkpoint still saves the recompute work.  This
benchmark measures both and emits the machine-readable
``BENCH_session_store.json`` artifact at the repo root:

* **restore latency** — p50/p95 of ``PlanningSession.loads`` over the
  workload's serialized page-1 sessions;
* **resume vs fresh pops** — queue pops for the restored session's
  page 2 against the from-scratch ``2k`` recompute (the restored copy
  must match the live resume pop-for-pop and beat the recompute);
* **store hit rate** — an :class:`~repro.store.InMemorySessionStore`
  driven through the page-1/page-2 flow, plus mean payload size.

A committed baseline of the same file is the regression guard: the
current p95 restore latency must stay within 2x the committed value
(with an absolute floor so CI jitter on sub-millisecond restores
cannot flake the build).  The baseline is read *before* the artifact
is rewritten, through :func:`benchmarks.baseline.load_baseline` — a
missing baseline is logged loudly (and fails under
``REPRO_BENCH_CHECK=1``), never silently skipped.
"""

from __future__ import annotations

import json
from pathlib import Path
from statistics import mean
from time import perf_counter

from benchmarks.baseline import load_baseline
from repro.core.engine import SkySREngine
from repro.core.options import BSSROptions
from repro.core.session import PlanningSession
from repro.datasets.workloads import generate_workload
from repro.errors import SessionNotFoundError
from repro.store import InMemorySessionStore

PAGE_SIZE = 3
#: restore timings per serialized session
RESTORE_SAMPLES = 15
#: regression guard: current p95 may be at most 2x the committed one,
#: with an absolute floor (seconds) so micro-latency jitter can't flake
P95_RATIO_LIMIT = 2.0
P95_FLOOR_S = 0.05

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_session_store.json"


def _quantile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def test_session_store_artifact(benchmark, bench_config, tokyo, capsys):
    engine = SkySREngine(tokyo.network, tokyo.forest)
    workload = generate_workload(
        tokyo,
        3,
        max(bench_config.queries_per_cell, 2),
        seed=bench_config.seed,
    )

    # read BEFORE overwriting; a missing baseline is loud, never silent
    baseline_p95 = load_baseline(ARTIFACT, "restore_latency.p95_s")

    store = InMemorySessionStore()
    latencies: list[float] = []
    payload_bytes: list[int] = []
    resume_pops: list[float] = []
    restored_pops: list[float] = []
    fresh_pops: list[float] = []

    for index, query in enumerate(workload):
        session = engine.session(
            query.start, list(query.categories), page_size=PAGE_SIZE
        )
        session.next_page()
        text = session.dumps()
        payload_bytes.append(len(text.encode("utf-8")))
        store.put(f"trip-{index}", json.loads(text))

        for _ in range(RESTORE_SAMPLES):
            started = perf_counter()
            restored = PlanningSession.loads(engine, text)
            latencies.append(perf_counter() - started)

        # page 2 on the store-restored copy vs live resume vs recompute
        restored = PlanningSession.from_dict(
            engine, store.get(f"trip-{index}")
        )
        restored_page2 = restored.next_page()
        live_page2 = session.next_page()
        fresh = engine.query(
            query.start,
            list(query.categories),
            options=BSSROptions().but(k=2 * PAGE_SIZE),
        )
        resume_pops.append(live_page2.stats.routes_expanded)
        restored_pops.append(restored_page2.stats.routes_expanded)
        fresh_pops.append(fresh.stats.routes_expanded)

        # Exactness: the restored page equals the live one, pop for pop.
        assert [r.scores() for r in restored_page2.routes] == [
            r.scores() for r in live_page2.routes
        ]
        assert (
            restored_page2.stats.routes_expanded
            == live_page2.stats.routes_expanded
        )

    # a paging client's store traffic: every page-2 get was a hit, plus
    # one guaranteed miss to show the rate is a real quotient
    try:
        store.get("never-stored")
    except SessionNotFoundError:
        pass

    # time one representative restore under pytest-benchmark as well
    sample_text = text
    benchmark.pedantic(
        lambda: PlanningSession.loads(engine, sample_text),
        rounds=3,
        iterations=1,
    )

    p50 = _quantile(latencies, 0.50)
    p95 = _quantile(latencies, 0.95)
    saving = 1.0 - mean(restored_pops) / mean(fresh_pops)
    artifact = {
        "benchmark": "session_store",
        "config": {
            "scale": bench_config.scale,
            "queries": len(workload),
            "page_size": PAGE_SIZE,
            "restore_samples_per_session": RESTORE_SAMPLES,
        },
        "restore_latency": {
            "p50_s": p50,
            "p95_s": p95,
            "samples": len(latencies),
        },
        "pops": {
            "resume_mean": mean(resume_pops),
            "restored_resume_mean": mean(restored_pops),
            "fresh_2k_mean": mean(fresh_pops),
            "restored_saving": saving,
        },
        "payload": {"bytes_mean": mean(payload_bytes)},
        "store": store.stats.as_dict(),
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")

    with capsys.disabled():
        print()
        print(
            f"session store: restore p50={p50 * 1e3:.2f}ms "
            f"p95={p95 * 1e3:.2f}ms over {len(latencies)} samples, "
            f"restored resume saves {saving * 100:.0f}% of fresh pops, "
            f"hit rate {store.stats.hit_rate:.2f} "
            f"-> {ARTIFACT.name}"
        )

    # Acceptance: the restored checkpoint still beats recomputing.
    assert mean(restored_pops) < mean(fresh_pops)
    assert restored_pops == resume_pops
    # Store saw real traffic: one engineered miss, everything else hits.
    assert store.stats.hits == len(workload)
    assert store.stats.misses == 1

    # Regression guard against the committed artifact.
    if baseline_p95 is not None:
        limit = max(P95_RATIO_LIMIT * baseline_p95, P95_FLOOR_S)
        assert p95 <= limit, (
            f"p95 restore latency regressed: {p95:.4f}s > limit "
            f"{limit:.4f}s (committed baseline {baseline_p95:.4f}s)"
        )
