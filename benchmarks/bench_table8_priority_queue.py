"""Table 8 — proposed vs distance-based priority queue."""

from repro.core.engine import SkySREngine
from repro.core.options import BSSROptions
from repro.experiments import table8

from .conftest import emit


def test_table8_report(benchmark, bench_config, capsys):
    report = benchmark.pedantic(
        lambda: table8.run(bench_config), rounds=1, iterations=1
    )
    emit(capsys, report)


def test_benchmark_distance_queue_query(benchmark, tokyo, tokyo_queries):
    engine = SkySREngine(tokyo.network, tokyo.forest)
    query = tokyo_queries[0]
    options = BSSROptions().but(priority_queue=False)

    def run():
        return engine.query(
            query.start, list(query.categories), options=options
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result) >= 1
