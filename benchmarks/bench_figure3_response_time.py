"""Figure 3 — response time vs |S_q| for BSSR / BSSR w/o Opt / PNE / Dij.

The report reproduces the paper's headline matrix (with per-cell time
budgets standing in for the paper's month-long missing bars); the
micro-benchmarks time one representative |S_q| = 3 query per algorithm
on the Tokyo-like dataset.
"""

import pytest

from repro.core.engine import SkySREngine
from repro.experiments import figure3

from .conftest import emit


def test_figure3_report(benchmark, bench_config, capsys):
    report = benchmark.pedantic(
        lambda: figure3.run(bench_config), rounds=1, iterations=1
    )
    emit(capsys, report)
    # BSSR must finish every cell within the budget
    for row in report.data["rows"]:
        assert row[2] is not None, f"BSSR timed out on {row[0]} |Sq|={row[1]}"


@pytest.mark.parametrize("algorithm", ["bssr", "bssr-noopt", "pne", "dij"])
def test_benchmark_single_query(benchmark, tokyo, tokyo_queries, algorithm):
    engine = SkySREngine(tokyo.network, tokyo.forest)
    query = tokyo_queries[0]

    def run():
        return engine.query(
            query.start, list(query.categories), algorithm=algorithm
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result) >= 1
