"""Top-k alternatives — response time vs k for the BSSR-based search.

The report sweeps k ∈ {1, 3, 5} on every synthetic preset (see
``repro.experiments.topk``); the micro-benchmarks time one
representative |S_q| = 3 query per k on the Tokyo-like dataset.
"""

import pytest

from repro.core.engine import SkySREngine
from repro.core.options import BSSROptions
from repro.experiments import topk

from .conftest import emit


def test_topk_report(benchmark, bench_config, capsys):
    report = benchmark.pedantic(
        lambda: topk.run(bench_config), rounds=1, iterations=1
    )
    emit(capsys, report)
    # the k=1 column is the plain BSSR query: it must finish every cell
    for row in report.data["rows"]:
        assert row[2] is not None, f"k=1 timed out on {row[0]}"


@pytest.mark.parametrize("k", [1, 3, 5])
def test_benchmark_single_topk_query(benchmark, tokyo, tokyo_queries, k):
    engine = SkySREngine(tokyo.network, tokyo.forest)
    query = tokyo_queries[0]
    options = BSSROptions().but(k=k)

    def run():
        return engine.query(
            query.start, list(query.categories), options=options
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result.topk()) >= 1
    assert len(result.topk()) <= k
