"""Table 5 — dataset summary; benchmarks dataset construction."""

from repro.datasets.presets import tokyo_like
from repro.experiments import table5

from .conftest import emit


def test_table5_report(benchmark, bench_config, capsys):
    report = benchmark.pedantic(
        lambda: table5.run(bench_config), rounds=1, iterations=1
    )
    emit(capsys, report)


def test_benchmark_dataset_generation(benchmark, bench_config):
    data = benchmark(lambda: tokyo_like(bench_config.scale))
    assert data.network.is_connected()
