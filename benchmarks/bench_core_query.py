"""Core-query hot path — dict vs CSR vs ALT vs CH vs warm caches.

The hardware-bound rework (:mod:`repro.graph.csr`,
:mod:`repro.graph.landmarks`, :mod:`repro.graph.contraction`,
:mod:`repro.core.distcache`) only earns its keep if the end-to-end
query gets faster without changing a single answer.  This benchmark
measures both and emits the machine-readable
``BENCH_core_query.json`` artifact at the repo root:

* **scenarios** — the paper's figure-3 shape (tokyo, ``|Sq| = 3``) and
  figure-4 shape (tokyo, ``|Sq| = 5``);
* **variants** — ``dict`` (flat adjacency disabled, the pre-CSR hot
  path), ``csr`` (flat kernels), ``csr_alt`` (flat kernels + landmark
  lower bounds), ``warm`` (``csr_alt`` behind a shared
  :class:`~repro.core.distcache.DistanceCache`, timed on the second
  pass over the workload), ``ch`` (``csr_alt`` plus contraction-
  hierarchy leg kernels, bucket-cold per query), ``ch_warm`` (``ch``
  behind a shared cache, so CH target buckets persist across queries);
* per scenario/variant: p50/p95 query latency and mean queue pops,
  plus the ``csr_alt``/``dict`` and ``ch``/``csr_alt`` p50 ratios and
  cache hit counters (search and CH-bucket traffic separately).

Exactness is asserted inline: the ``dict`` and ``csr`` variants must
return the same routes with the same scores *and the same pop counts*
on every query (the bit-identical contract of
:func:`repro.graph.csr.flat_adjacency`); ``csr_alt`` must return the
same routes (ALT only sharpens admissible bounds); the CH variants
must return the same routes with scores equal after rounding to nine
decimals — CH sums associate differently from left-to-right search
sums, so float answers may differ by ULPs (integer-weight graphs are
covered bit for bit by ``tests/test_contraction.py``).

One-off preprocessing (landmark tables, CH construction) runs outside
the timed region and is reported separately in the artifact's
``config`` block, never folded into a latency.

A committed baseline of the same file is the regression guard: the
current ``csr_alt``, ``ch``, and ``ch_warm`` p95 on the figure-3
scenario must stay within 2x their committed values (with an absolute
floor so CI jitter on sub-millisecond queries cannot flake the build).
Baselines are read *before* the artifact is rewritten, through
:func:`benchmarks.baseline.load_baseline` — a missing baseline is
logged loudly (and fails under ``REPRO_BENCH_CHECK=1``), never
silently skipped.
"""

from __future__ import annotations

import json
from pathlib import Path
from statistics import mean
from time import perf_counter

from benchmarks.baseline import load_baseline
from repro.core.distcache import DistanceCache
from repro.core.engine import SkySREngine
from repro.core.options import BSSROptions
from repro.datasets.workloads import generate_workload
from repro.graph.contraction import contraction_for
from repro.graph.csr import set_csr_enabled
from repro.graph.landmarks import landmarks_for

#: timed repetitions per query (latencies pool across the workload),
#: after one untimed warmup pass per variant.  Within a repetition the
#: variants run back to back ("paired"): CPU frequency drift then hits
#: every variant alike instead of skewing whichever block ran while the
#: machine was busy, which keeps the p50 ratio stable across runs.
REPEATS = 15

VARIANTS = ("dict", "csr", "csr_alt", "warm", "ch", "ch_warm")
#: variants whose figure-3 p95 is guarded against the committed artifact
GUARDED_VARIANTS = ("csr_alt", "ch", "ch_warm")
#: regression guard: each guarded p95 (figure3) may be at most 2x the
#: committed one, with an absolute floor (seconds) against jitter
P95_RATIO_LIMIT = 2.0
P95_FLOOR_S = 0.05

SCENARIOS = [("figure3", 3), ("figure4", 5)]

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_core_query.json"


def _quantile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _run_scenario(tokyo, workload, alt_options, ch_options):
    """Time every variant on every query, paired per repetition.

    Returns ``(latencies, pops, answers, cache, ch_cache)`` — the first
    three dicts keyed by variant label.  One untimed pass per variant
    runs first (it also fills the warm variants' shared caches), so the
    timed passes measure steady state rather than first-ever-query
    costs.  ``ch`` runs cache-free — every query rebuilds its target
    buckets — while ``ch_warm`` keeps them in its own shared
    :class:`DistanceCache`, so the gap between the two is exactly the
    downward-sweep work the bucket cache saves.
    """
    cache = DistanceCache(max_entries=512, max_bytes=64 * 2**20)
    ch_cache = DistanceCache(max_entries=512, max_bytes=64 * 2**20)
    engines = {
        "dict": (SkySREngine(tokyo.network, tokyo.forest), None, False),
        "csr": (SkySREngine(tokyo.network, tokyo.forest), None, True),
        "csr_alt": (
            SkySREngine(tokyo.network, tokyo.forest),
            alt_options,
            True,
        ),
        "warm": (
            SkySREngine(
                tokyo.network,
                tokyo.forest,
                options=alt_options,
                distance_cache=cache,
            ),
            alt_options,
            True,
        ),
        "ch": (
            SkySREngine(tokyo.network, tokyo.forest),
            ch_options,
            True,
        ),
        "ch_warm": (
            SkySREngine(
                tokyo.network,
                tokyo.forest,
                options=ch_options,
                distance_cache=ch_cache,
            ),
            ch_options,
            True,
        ),
    }

    def call(label, query):
        engine, options, use_csr = engines[label]
        prev = set_csr_enabled(use_csr)
        try:
            return engine.query(
                query.start, list(query.categories), options=options
            )
        finally:
            set_csr_enabled(prev)

    for label in VARIANTS:
        for query in workload:
            call(label, query)

    latencies = {label: [] for label in VARIANTS}
    pops = {label: [] for label in VARIANTS}
    answers = {label: [] for label in VARIANTS}
    for query in workload:
        last = {}
        for _ in range(REPEATS):
            for label in VARIANTS:
                started = perf_counter()
                last[label] = call(label, query)
                latencies[label].append(perf_counter() - started)
        for label in VARIANTS:
            pops[label].append(last[label].stats.routes_expanded)
            answers[label].append(
                sorted(r.scores() for r in last[label].routes)
            )
    return latencies, pops, answers, cache, ch_cache


def _rounded(per_query_answers):
    """Scores rounded to 9 decimals — the CH-vs-search comparison grain
    (CH sums associate differently, so float answers may differ by ULPs).
    """
    return [
        [tuple(round(x, 9) for x in scores) for scores in query_answers]
        for query_answers in per_query_answers
    ]


def test_core_query_artifact(benchmark, bench_config, tokyo, capsys):
    # read BEFORE overwriting; missing baselines are loud, never silent
    baselines = {
        label: load_baseline(ARTIFACT, f"scenarios.figure3.{label}.p95_s")
        for label in GUARDED_VARIANTS
    }

    alt_options = BSSROptions(use_landmarks=True)
    ch_options = alt_options.but(use_contraction=True)

    # landmark tables and the contraction hierarchy are memoized on the
    # network; build both outside the timed region and report the
    # one-off costs separately
    started = perf_counter()
    landmarks_for(tokyo.network)
    landmark_build_s = perf_counter() - started
    ch = contraction_for(tokyo.network)
    ch_preprocess_s = ch.stats.preprocess_s

    scenarios: dict[str, dict] = {}
    for name, size in SCENARIOS:
        workload = generate_workload(
            tokyo, size, bench_config.queries_per_cell, seed=bench_config.seed
        )
        variants: dict[str, dict] = {}
        latencies, pops, answers, cache, ch_cache = _run_scenario(
            tokyo, workload, alt_options, ch_options
        )

        # Exactness: CSR is bit-identical to dict, pop for pop; ALT and
        # the shared cache may skip work but never change an answer;
        # the CH variants match at the 9-decimal grain (see module doc).
        assert answers["csr"] == answers["dict"]
        assert pops["csr"] == pops["dict"]
        assert answers["csr_alt"] == answers["dict"]
        assert answers["warm"] == answers["dict"]
        assert _rounded(answers["ch"]) == _rounded(answers["dict"])
        assert _rounded(answers["ch_warm"]) == _rounded(answers["dict"])

        for label in VARIANTS:
            variants[label] = {
                "p50_s": _quantile(latencies[label], 0.50),
                "p95_s": _quantile(latencies[label], 0.95),
                "pops_mean": mean(pops[label]),
                "samples": len(latencies[label]),
            }
        variants["csr_alt_vs_dict_p50"] = (
            variants["csr_alt"]["p50_s"] / variants["dict"]["p50_s"]
        )
        variants["ch_vs_csr_alt_p50"] = (
            variants["ch"]["p50_s"] / variants["csr_alt"]["p50_s"]
        )
        variants["cache"] = cache.stats.as_dict()
        variants["ch_cache"] = ch_cache.stats.as_dict()
        scenarios[name] = variants

    # time one representative csr_alt query under pytest-benchmark too
    sample = generate_workload(tokyo, 3, 1, seed=bench_config.seed)[0]
    bench_engine = SkySREngine(tokyo.network, tokyo.forest)
    benchmark.pedantic(
        lambda: bench_engine.query(
            sample.start, list(sample.categories), options=alt_options
        ),
        rounds=3,
        iterations=1,
    )

    artifact = {
        "benchmark": "core_query",
        "config": {
            "scale": bench_config.scale,
            "queries_per_scenario": bench_config.queries_per_cell,
            "repeats": REPEATS,
            "landmark_build_s": landmark_build_s,
            "ch_preprocess_s": ch_preprocess_s,
            "ch_shortcuts_added": ch.stats.shortcuts_added,
        },
        "scenarios": scenarios,
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")

    fig3 = scenarios["figure3"]
    with capsys.disabled():
        print()
        for name, variants in scenarios.items():
            print(
                f"core query [{name}]: "
                + "  ".join(
                    f"{label} p50={variants[label]['p50_s'] * 1e3:.2f}ms "
                    f"pops={variants[label]['pops_mean']:.0f}"
                    for label in VARIANTS
                )
            )
        print(
            f"core query: csr_alt/dict p50 ratio "
            f"{fig3['csr_alt_vs_dict_p50']:.2f}, ch/csr_alt p50 ratio "
            f"{fig3['ch_vs_csr_alt_p50']:.2f} on figure3, "
            f"warm hit rate {fig3['cache']['hit_rate']:.2f}, "
            f"ch preprocess {ch_preprocess_s * 1e3:.0f}ms "
            f"-> {ARTIFACT.name}"
        )

    # The warm passes must actually have hit their shared caches —
    # searches for ``warm``, CH target buckets for ``ch_warm``.
    assert fig3["cache"]["hits"] > 0
    assert fig3["ch_cache"]["bucket_hits"] > 0

    # Regression guard against the committed artifact.
    for label, baseline_p95 in baselines.items():
        if baseline_p95 is None:
            continue
        p95 = fig3[label]["p95_s"]
        limit = max(P95_RATIO_LIMIT * baseline_p95, P95_FLOOR_S)
        assert p95 <= limit, (
            f"{label} p95 regressed: {p95:.4f}s > limit {limit:.4f}s "
            f"(committed baseline {baseline_p95:.4f}s)"
        )
