"""Core-query hot path — dict vs CSR vs CSR+ALT vs warm shared cache.

The hardware-bound rework (:mod:`repro.graph.csr`,
:mod:`repro.graph.landmarks`, :mod:`repro.core.distcache`) only earns
its keep if the end-to-end query gets faster without changing a single
answer.  This benchmark measures both and emits the machine-readable
``BENCH_core_query.json`` artifact at the repo root:

* **scenarios** — the paper's figure-3 shape (tokyo, ``|Sq| = 3``) and
  figure-4 shape (tokyo, ``|Sq| = 5``);
* **variants** — ``dict`` (flat adjacency disabled, the pre-CSR hot
  path), ``csr`` (flat kernels), ``csr_alt`` (flat kernels + landmark
  lower bounds), ``warm`` (``csr_alt`` behind a shared
  :class:`~repro.core.distcache.DistanceCache`, timed on the second
  pass over the workload);
* per scenario/variant: p50/p95 query latency and mean queue pops,
  plus the ``csr_alt``/``dict`` p50 ratio and warm-cache hit counters.

Exactness is asserted inline: the ``dict`` and ``csr`` variants must
return the same routes with the same scores *and the same pop counts*
on every query (the bit-identical contract of
:func:`repro.graph.csr.flat_adjacency`), and ``csr_alt`` must return
the same routes (ALT only sharpens admissible bounds).

A committed baseline of the same file is the regression guard: the
current ``csr_alt`` p95 on the figure-3 scenario must stay within 2x
the committed value (with an absolute floor so CI jitter on
sub-millisecond queries cannot flake the build).  The baseline is read
*before* the artifact is rewritten.
"""

from __future__ import annotations

import json
from pathlib import Path
from statistics import mean
from time import perf_counter

from repro.core.distcache import DistanceCache
from repro.core.engine import SkySREngine
from repro.core.options import BSSROptions
from repro.datasets.workloads import generate_workload
from repro.graph.csr import set_csr_enabled
from repro.graph.landmarks import landmarks_for

#: timed repetitions per query (latencies pool across the workload),
#: after one untimed warmup pass per variant.  Within a repetition the
#: variants run back to back ("paired"): CPU frequency drift then hits
#: every variant alike instead of skewing whichever block ran while the
#: machine was busy, which keeps the p50 ratio stable across runs.
REPEATS = 7

VARIANTS = ("dict", "csr", "csr_alt", "warm")
#: regression guard: current csr_alt p95 (figure3) may be at most 2x
#: the committed one, with an absolute floor (seconds) against jitter
P95_RATIO_LIMIT = 2.0
P95_FLOOR_S = 0.05

SCENARIOS = [("figure3", 3), ("figure4", 5)]

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_core_query.json"


def _quantile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _run_scenario(tokyo, workload, alt_options):
    """Time every variant on every query, paired per repetition.

    Returns ``(latencies, pops, answers, cache)`` — each a dict keyed
    by variant label.  One untimed pass per variant runs first (it also
    fills the warm variant's shared cache), so the timed passes measure
    steady state rather than first-ever-query costs.
    """
    cache = DistanceCache(max_entries=512, max_bytes=64 * 2**20)
    engines = {
        "dict": (SkySREngine(tokyo.network, tokyo.forest), None, False),
        "csr": (SkySREngine(tokyo.network, tokyo.forest), None, True),
        "csr_alt": (
            SkySREngine(tokyo.network, tokyo.forest),
            alt_options,
            True,
        ),
        "warm": (
            SkySREngine(
                tokyo.network,
                tokyo.forest,
                options=alt_options,
                distance_cache=cache,
            ),
            alt_options,
            True,
        ),
    }

    def call(label, query):
        engine, options, use_csr = engines[label]
        prev = set_csr_enabled(use_csr)
        try:
            return engine.query(
                query.start, list(query.categories), options=options
            )
        finally:
            set_csr_enabled(prev)

    for label in VARIANTS:
        for query in workload:
            call(label, query)

    latencies = {label: [] for label in VARIANTS}
    pops = {label: [] for label in VARIANTS}
    answers = {label: [] for label in VARIANTS}
    for query in workload:
        last = {}
        for _ in range(REPEATS):
            for label in VARIANTS:
                started = perf_counter()
                last[label] = call(label, query)
                latencies[label].append(perf_counter() - started)
        for label in VARIANTS:
            pops[label].append(last[label].stats.routes_expanded)
            answers[label].append(
                sorted(r.scores() for r in last[label].routes)
            )
    return latencies, pops, answers, cache


def test_core_query_artifact(benchmark, bench_config, tokyo, capsys):
    baseline_p95 = None
    if ARTIFACT.exists():  # read BEFORE overwriting
        baseline_p95 = (
            json.loads(ARTIFACT.read_text())
            .get("scenarios", {})
            .get("figure3", {})
            .get("csr_alt", {})
            .get("p95_s")
        )

    alt_options = BSSROptions(use_landmarks=True)

    # landmark tables are memoized on the network; build them outside
    # the timed region and report the one-off cost separately
    started = perf_counter()
    landmarks_for(tokyo.network)
    landmark_build_s = perf_counter() - started

    scenarios: dict[str, dict] = {}
    for name, size in SCENARIOS:
        workload = generate_workload(
            tokyo, size, bench_config.queries_per_cell, seed=bench_config.seed
        )
        variants: dict[str, dict] = {}
        latencies, pops, answers, cache = _run_scenario(
            tokyo, workload, alt_options
        )

        # Exactness: CSR is bit-identical to dict, pop for pop; ALT and
        # the shared cache may skip work but never change an answer.
        assert answers["csr"] == answers["dict"]
        assert pops["csr"] == pops["dict"]
        assert answers["csr_alt"] == answers["dict"]
        assert answers["warm"] == answers["dict"]

        for label in VARIANTS:
            variants[label] = {
                "p50_s": _quantile(latencies[label], 0.50),
                "p95_s": _quantile(latencies[label], 0.95),
                "pops_mean": mean(pops[label]),
                "samples": len(latencies[label]),
            }
        variants["csr_alt_vs_dict_p50"] = (
            variants["csr_alt"]["p50_s"] / variants["dict"]["p50_s"]
        )
        variants["cache"] = cache.stats.as_dict()
        scenarios[name] = variants

    # time one representative csr_alt query under pytest-benchmark too
    sample = generate_workload(tokyo, 3, 1, seed=bench_config.seed)[0]
    bench_engine = SkySREngine(tokyo.network, tokyo.forest)
    benchmark.pedantic(
        lambda: bench_engine.query(
            sample.start, list(sample.categories), options=alt_options
        ),
        rounds=3,
        iterations=1,
    )

    artifact = {
        "benchmark": "core_query",
        "config": {
            "scale": bench_config.scale,
            "queries_per_scenario": bench_config.queries_per_cell,
            "repeats": REPEATS,
            "landmark_build_s": landmark_build_s,
        },
        "scenarios": scenarios,
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")

    fig3 = scenarios["figure3"]
    with capsys.disabled():
        print()
        for name, variants in scenarios.items():
            print(
                f"core query [{name}]: "
                + "  ".join(
                    f"{label} p50={variants[label]['p50_s'] * 1e3:.2f}ms "
                    f"pops={variants[label]['pops_mean']:.0f}"
                    for label in ("dict", "csr", "csr_alt", "warm")
                )
            )
        print(
            f"core query: csr_alt/dict p50 ratio "
            f"{fig3['csr_alt_vs_dict_p50']:.2f} on figure3, "
            f"warm hit rate {fig3['cache']['hit_rate']:.2f} "
            f"-> {ARTIFACT.name}"
        )

    # The warm pass must actually have hit the shared cache.
    assert fig3["cache"]["hits"] > 0

    # Regression guard against the committed artifact.
    if baseline_p95 is not None:
        p95 = fig3["csr_alt"]["p95_s"]
        limit = max(P95_RATIO_LIMIT * baseline_p95, P95_FLOOR_S)
        assert p95 <= limit, (
            f"csr_alt p95 regressed: {p95:.4f}s > limit {limit:.4f}s "
            f"(committed baseline {baseline_p95:.4f}s)"
        )
