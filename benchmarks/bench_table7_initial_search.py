"""Table 7 — NNinit ablation; benchmarks NNinit itself."""

from repro.core.dominance import SkylineSet
from repro.core.nninit import nninit
from repro.core.spec import compile_query
from repro.core.stats import SearchStats
from repro.experiments import table7
from repro.semantics.scoring import ProductAggregator
from repro.semantics.similarity import HierarchyWuPalmer

from .conftest import emit


def test_table7_report(benchmark, bench_config, capsys):
    report = benchmark.pedantic(
        lambda: table7.run(bench_config), rounds=1, iterations=1
    )
    emit(capsys, report)
    # seeded first searches never explore farther than unseeded ones
    for row in report.data["rows"]:
        _, _, with_init, without_init = row[0], row[1], row[2], row[3]
        if with_init is not None and without_init is not None:
            assert with_init <= without_init + 1e-9


def test_benchmark_nninit(benchmark, tokyo, tokyo_queries):
    query = tokyo_queries[0]
    compiled = compile_query(
        query.start,
        list(query.categories),
        tokyo.index,
        HierarchyWuPalmer(),
    )

    def run():
        skyline = SkylineSet()
        nninit(
            tokyo.network, compiled, ProductAggregator(), skyline, SearchStats()
        )
        return skyline

    skyline = benchmark(run)
    assert len(skyline) >= 0
