"""Table 4 — the running-example execution trace on Figure 1."""

from repro.experiments import table4

from .conftest import emit


def test_table4_report(benchmark, bench_config, capsys):
    report = benchmark.pedantic(
        lambda: table4.run(bench_config), rounds=1, iterations=1
    )
    emit(capsys, report)
    assert report.data["steps"] >= 3
    routes = report.data["routes"]
    # the running example's invariant: the skyline holds both a perfect
    # route and a strictly shorter semantic alternative
    semantics = sorted(r.semantic for r in routes)
    assert semantics[0] == 0.0 and semantics[-1] > 0.0
