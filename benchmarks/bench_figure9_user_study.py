"""Figure 9 — the (simulated) user study answer ratios."""

from repro.experiments.harness import dataset_by_name
from repro.experiments.tables import format_table
from repro.service.user_study import QUESTIONS, simulate_user_study

from .conftest import emit


def test_figure9_report(benchmark, bench_config, capsys):
    dataset = dataset_by_name("tokyo", bench_config.scale)

    def run():
        return simulate_user_study(dataset, respondents=25, seed=2017)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for question, labels in QUESTIONS.items():
        ratios = outcome.ratios(question)
        rows.append([question, *[f"{r * 100:.0f}%" for r in ratios]])
    table = format_table(
        ["question", "positive", "neutral", "negative"],
        rows,
        title="simulated 25-respondent panel (human study not reproducible)",
    )

    class _Report:
        def __str__(self):
            return (
                "============================================\n"
                "Figure 9 — user study (simulated respondents)\n"
                "============================================\n"
                f"{table}\n"
            )

    emit(capsys, _Report())
    # the paper reports >80% positive Q1 answers; the simulation should
    # at least lean positive (positive + neutral majority)
    q1 = outcome.ratios("Q1")
    assert q1[0] + q1[1] >= 0.5
    assert outcome.respondents == 25
