#!/usr/bin/env python3
"""Quickstart: the paper's Example 1.1 on the bundled mini city.

A user at ``vq`` wants to visit an Asian restaurant, an Arts &
Entertainment place, and a gift shop, in that order.  A classic
sequenced-route query returns only the perfect-match route; the SkySR
query additionally returns shorter routes that satisfy the request
*semantically* (e.g. ending at a hobby shop — same "Shop & Service"
tree), and nothing else: the result is exactly the skyline over
(route length, semantic score).

Run:  python examples/quickstart.py
"""

from repro import SkySREngine, datasets
from repro.service.rendering import render_network

def main() -> None:
    data = datasets.mini_city()
    print(f"dataset: {data.summary()}\n")

    engine = SkySREngine(data.network, data.forest)
    start = data.landmarks["vq"]
    categories = ["Asian Restaurant", "Arts & Entertainment", "Gift Shop"]

    result = engine.query(start, categories)

    print(f"query: {' -> '.join(categories)}  (start: vertex {start})")
    print(f"algorithm: {result.algorithm}, "
          f"{result.stats.elapsed * 1000:.1f} ms, "
          f"{result.stats.settled} vertices settled\n")
    print(result.to_table())

    best = result.shortest
    assert best is not None
    print("\nASCII map (S = start, digits = the shortest route's stops):")
    print(
        render_network(
            data.network, width=60, height=16, start=start, route=best
        )
    )

    # The same query through the naive baseline returns identical routes
    # (Theorem 3: BSSR is exact) — just much more slowly at scale.
    check = engine.query(start, categories, algorithm="dij")
    assert {r.scores() for r in check.routes} == {
        r.scores() for r in result.routes
    }
    print("\nexactness check vs naive baseline: OK")

if __name__ == "__main__":
    main()
