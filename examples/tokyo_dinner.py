#!/usr/bin/env python3
"""The paper's Table-9 / Figure-7 use case: dinner and drinks in Tokyo.

"We want to visit a Beer Garden, a Sushi Restaurant, and a Sake Bar
from our current location and finally go to our hotel."  This is a
*destination* SkySR query (Section 6).  In the Foursquare trees, "Bar"
subsumes both "Beer Garden" and "Sake Bar", and "Japanese Restaurant"
subsumes "Sushi Restaurant", so semantically matching routes can be
dramatically shorter, exactly as the paper's second representative
route shows.

Run:  python examples/tokyo_dinner.py
"""

import json

from repro import SkySREngine
from repro.datasets import tokyo_like
from repro.experiments.scenarios import ensure_category_pois, scenario_start
from repro.extensions.destination import split_length
from repro.service.geojson import dumps, routes_to_geojson

QUERY = ["Beer Garden", "Sushi Restaurant", "Sake Bar"]

def main() -> None:
    data = tokyo_like(scale=0.3, seed=2018)
    ensure_category_pois(data, QUERY, per_category=3)
    print(f"dataset: {data.summary()}\n")

    engine = SkySREngine(data.network, data.forest)
    start = scenario_start(data, seed=5)
    hotel = scenario_start(data, seed=6)

    result = engine.query(start, QUERY, destination=hotel)
    print(
        f"query: {' -> '.join(QUERY)} -> hotel "
        f"(start {start}, hotel {hotel})"
    )
    print(result.to_table())

    print("\nlength split (PoI chain + final leg to the hotel):")
    for route in result.routes:
        chain, leg = split_length(data.network, route, hotel)
        stops = " -> ".join(result.poi_category_names(route))
        print(f"  chain {chain:8.3f} + hotel leg {leg:7.3f}   {stops}")

    geojson = routes_to_geojson(data.network, start, result.routes)
    payload = json.loads(dumps(geojson))
    print(
        f"\nGeoJSON export: {len(payload['features'])} LineString features "
        "(ready for any map client)"
    )

if __name__ == "__main__":
    main()
