#!/usr/bin/env python3
"""Paginated planning: resumable sessions + diversity re-ranking.

A user rarely knows up front how many alternatives they want — they
page.  ``engine.session(...)`` opens a resumable
:class:`~repro.core.session.PlanningSession`: the first ``next_page()``
runs the k-skyband search for the page size, and every further call
*resumes* the checkpointed search state (queue, skyband archive,
deferred routes, Dijkstra caches) to enumerate ranks ``k+1..2k`` —
strictly less work than recomputing, which the per-page stats show.

A non-zero ``diversity_lambda`` re-ranks each page with a greedy MMR
selection penalizing PoI overlap and shared geometry with everything
already shown, so page 2 is not three near-copies of rank 1.

Run:  python examples/paginated_planning.py
"""

from repro import BSSROptions, SkySREngine, datasets


def main() -> None:
    data = datasets.mini_city()
    engine = SkySREngine(data.network, data.forest)
    start = data.landmarks["vq"]
    categories = ["Asian Restaurant", "Arts & Entertainment", "Gift Shop"]

    session = engine.session(start, categories, page_size=2)
    page1 = session.next_page()
    print("page 1 (ranks 1..%d):" % len(page1))
    print(session.to_result(page1).to_page_table())

    page2 = session.next_page()
    print(f"\npage 2 (ranks {page2.first_rank}..), resumed from the "
          "checkpoint:")
    print(session.to_result(page2).to_page_table(page2.first_rank))
    print(
        f"\nresume popped {page2.stats.routes_expanded} routes; a "
        f"fresh top-{session.k} recompute pops "
        f"{engine.query(start, categories, options=BSSROptions().but(k=session.k)).stats.routes_expanded}."
    )

    # Pagination is exact: pages 1+2 == the one-shot top-4, score for
    # score (equal-score routes are interchangeable representatives).
    oneshot = engine.query(
        start, categories, options=BSSROptions().but(k=session.k)
    )
    served = [r.scores() for r in session.served]
    assert served == [r.scores() for r in oneshot.topk(session.k)]

    # Diversity: re-rank alternatives so page 1 isn't near-duplicates.
    diverse = engine.query(
        start,
        categories,
        options=BSSROptions().but(k=3, diversity_lambda=0.6),
    )
    print("\ntop-3 with diversity re-ranking (λ=0.6):")
    print(diverse.to_page_table())


if __name__ == "__main__":
    main()
