#!/usr/bin/env python3
"""Top-k alternatives: ranked route choices beyond the skyline.

The plain SkySR query returns the skyline — one best route per
length/semantic trade-off level.  Real route services show *ranked
alternatives*: "here are your three best options".  Setting
``BSSROptions(k=...)`` turns the same BSSR search into a top-k query:
the engine retains the k-skyband (routes beaten by fewer than k
others) and ``result.topk()`` ranks it by dominance depth, then
length — rank 1 is always the plain query's shortest route.

Run:  python examples/topk_alternatives.py
"""

from repro import BSSROptions, SkySREngine, datasets

def main() -> None:
    data = datasets.mini_city()
    engine = SkySREngine(data.network, data.forest)
    start = data.landmarks["vq"]
    categories = ["Asian Restaurant", "Arts & Entertainment", "Gift Shop"]

    skyline = engine.query(start, categories)
    print("plain skyline query:")
    print(skyline.to_table())

    result = engine.query(start, categories, options=BSSROptions().but(k=3))
    print("\ntop-3 ranked alternatives:")
    print(result.to_ranked_table())
    print(
        f"\nskyband kept {len(result.skyband)} routes; "
        f"rank 1 is the skyline's shortest "
        f"({result.topk()[0].length:.4f})."
    )

    # The ranking is stable under k: rank 1 never changes.
    assert result.topk()[0].scores() == skyline.shortest.scores()

if __name__ == "__main__":
    main()
