#!/usr/bin/env python3
"""Section 6 variations: predicates, unordered trips, multi-category PoIs.

Three extensions on one dataset:

1. complex category requirements — "(American OR Mexican) but NOT Taco
   Place" as a single query position;
2. the skyline trip-planning query — same categories, no order;
3. PoIs carrying multiple categories, matched at the best (or mean)
   similarity.

Run:  python examples/complex_requirements.py
"""

from repro import SkySREngine
from repro.datasets import nyc_like
from repro.experiments.scenarios import ensure_category_pois, scenario_start
from repro.extensions import AnyOf, Excluding, MultiCategoryRequirement, add_category

def main() -> None:
    data = nyc_like(scale=0.25, seed=77)
    ensure_category_pois(
        data,
        ["American Restaurant", "Mexican Restaurant", "Taco Place",
         "Art Museum", "Gift Shop"],
        per_category=2,
    )
    engine = SkySREngine(data.network, data.forest)
    start = scenario_start(data, seed=3)

    # -- 1. predicates ------------------------------------------------
    dinner = Excluding(
        AnyOf("American Restaurant", "Mexican Restaurant"), "Taco Place"
    )
    result = engine.query(start, [dinner, "Art Museum"])
    print("predicate query: (American OR Mexican, NOT Taco Place) -> Art Museum")
    print(result.to_table())

    # -- 2. unordered skyline trip planning ---------------------------
    categories = ["Gift Shop", "Art Museum"]
    ordered = engine.query(start, categories)
    unordered = engine.query(start, categories, ordered=False)
    print("\nordered vs unordered (same categories):")
    print(f"  ordered   best length: {ordered.routes[0].length:8.3f}")
    print(f"  unordered best length: {unordered.routes[0].length:8.3f}")
    assert unordered.routes[0].length <= ordered.routes[0].length

    # -- 3. multi-category PoIs ---------------------------------------
    victim = data.network.poi_vertices()[0]
    add_category(data.network, victim, data.forest.resolve("Bakery"))
    engine.refresh_index()  # PoI indexes are snapshots
    best = engine.query(
        start,
        [MultiCategoryRequirement(data.forest.resolve("Bakery"), mode="max")],
    )
    mean = engine.query(
        start,
        [MultiCategoryRequirement(data.forest.resolve("Bakery"), mode="mean")],
    )
    print("\nmulti-category matching for 'Bakery':")
    print(f"  max-rule skyline:  {[r.scores() for r in best.routes]}")
    print(f"  mean-rule skyline: {[r.scores() for r in mean.routes]}")

if __name__ == "__main__":
    main()
