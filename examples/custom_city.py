#!/usr/bin/env python3
"""Build your own city from scratch and persist it.

Shows the low-level substrate API: a hand-made road network, a custom
category forest (not Foursquare's), PoIs embedded on edges, querying
with a custom similarity measure, and JSON round-tripping.

Run:  python examples/custom_city.py
"""

import tempfile
from pathlib import Path

from repro import CategoryForest, RoadNetwork, SkySREngine
from repro.graph.io import load_dataset, save_dataset
from repro.graph.spatial import embed_poi_on_edge
from repro.semantics.similarity import PathLengthSimilarity

def build_forest() -> CategoryForest:
    forest = CategoryForest()
    forest.add_path("Coffee", "Espresso Bar")
    forest.add_path("Coffee", "Roastery")
    forest.add_path("Books", "Antiquarian")
    forest.add_path("Books", "Comics")
    return forest

def main() -> None:
    forest = build_forest()
    net = RoadNetwork()

    # A little riverside town: two parallel streets and three bridges.
    north = [net.add_vertex(float(x), 1.0) for x in range(5)]
    south = [net.add_vertex(float(x), 0.0) for x in range(5)]
    for row in (north, south):
        for a, b in zip(row, row[1:]):
            net.add_edge(a, b, 1.0)
    for x in (0, 2, 4):
        net.add_edge(north[x], south[x], 1.0)

    # Embed PoIs on their closest edges (the paper's data preparation).
    embed_poi_on_edge(net, forest.resolve("Espresso Bar"), (0.4, 1.05))
    embed_poi_on_edge(net, forest.resolve("Roastery"), (3.6, -0.05))
    embed_poi_on_edge(net, forest.resolve("Antiquarian"), (2.5, 1.02))
    embed_poi_on_edge(net, forest.resolve("Comics"), (1.5, -0.03))

    engine = SkySREngine(net, forest, similarity=PathLengthSimilarity())
    result = engine.query(south[0], ["Espresso Bar", "Antiquarian"])
    print("custom town, path-length similarity:")
    print(result.to_table())

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "town.json"
        save_dataset(path, net, forest)
        net2, forest2 = load_dataset(path)
        engine2 = SkySREngine(net2, forest2, similarity=PathLengthSimilarity())
        again = engine2.query(south[0], ["Espresso Bar", "Antiquarian"])
        assert {r.scores() for r in again.routes} == {
            r.scores() for r in result.routes
        }
        print(f"\nround-tripped through {path.name}: identical skyline ✔")

if __name__ == "__main__":
    main()
