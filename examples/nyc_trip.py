#!/usr/bin/env python3
"""The paper's Table-1 scenario: cupcakes, art, jazz in New York.

"Assume a user plans to go to a cupcake shop, an art museum, and then a
jazz club in this order."  Existing sequenced-route queries return the
single perfect-match route; the SkySR query also surfaces the shorter
Dessert Shop / Museum / Music Venue generalizations, letting the user
trade walking distance against category fit.

Run:  python examples/nyc_trip.py
"""

from repro import BSSROptions, SkySREngine
from repro.datasets import generate_workload, nyc_like
from repro.experiments.scenarios import ensure_category_pois, scenario_start

QUERY = ["Cupcake Shop", "Art Museum", "Jazz Club"]

def main() -> None:
    data = nyc_like(scale=0.3, seed=1007)
    ensure_category_pois(data, QUERY, per_category=3)
    print(f"dataset: {data.summary()}\n")

    engine = SkySREngine(data.network, data.forest)
    start = scenario_start(data, seed=5)

    result = engine.query(start, QUERY)
    print(f"query: {' -> '.join(QUERY)}  (start: vertex {start})")
    print(result.to_table())

    perfect = result.perfect
    shortest = result.shortest
    if perfect and shortest and shortest is not perfect:
        saving = (1.0 - shortest.length / perfect.length) * 100.0
        print(
            f"\nthe most flexible skyline route is {saving:.0f}% shorter "
            "than the perfect match."
        )

    # The ablation switchboard: the same query without the Section 5.3
    # optimizations returns the same skyline, doing more work.
    plain = engine.query(
        start, QUERY, options=BSSROptions.without_optimizations()
    )
    print(
        f"\nwork comparison (settled vertices): optimized="
        f"{result.stats.settled}, w/o optimizations={plain.stats.settled}"
    )

    # A small batch of paper-style random workloads on the same dataset.
    print("\nrandom |Sq|=3 workload (5 queries):")
    for query in generate_workload(data, 3, 5, seed=11):
        res = engine.query(query.start, list(query.categories))
        labels = " -> ".join(
            data.forest.name_of(c) for c in query.categories
        )
        print(
            f"  {len(res)} skyline routes, best {res.routes[0].length:8.3f}"
            f"  [{labels}]"
        )

if __name__ == "__main__":
    main()
