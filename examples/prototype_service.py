#!/usr/bin/env python3
"""The Section-8 prototype service and the simulated user study.

Drives :class:`repro.service.SkySRService` the way the paper's Santander
deployment did — a user clicks a map location, picks categories, and
receives ranked route cards — then runs the simulated 25-respondent
panel that stands in for the paper's Figure-9 questionnaire.

Run:  python examples/prototype_service.py
"""

from repro.datasets import tokyo_like
from repro.service import SkySRService, simulate_user_study

def main() -> None:
    data = tokyo_like(scale=0.25, seed=9)
    service = SkySRService(data, max_routes=4)
    print(f"dataset: {data.summary()}\n")

    # A map click near the city center, snapped to the road network.
    from repro.graph.spatial import bounding_box

    min_x, min_y, max_x, max_y = bounding_box(data.network)
    center = ((min_x + max_x) / 2.0, (min_y + max_y) / 2.0)

    leaves = [
        data.forest.name_of(c)
        for c in data.index.populated_leaves(min_count=3)
    ]
    wishlist = leaves[:3]
    response = service.plan(wishlist, near=center)
    print(response.render_text())

    best = response.best()
    if best is not None:
        print(f"\nrecommended: {best.headline()}")
        print("stops:")
        for stop in best.stops:
            print(
                f"  poi {stop['poi']:>5}  {stop['category']:<28} "
                f"similarity {stop['similarity']:.3f}"
            )

    print("\nsimulated user study (Figure 9 stand-in):")
    outcome = simulate_user_study(data, respondents=25, seed=2017)
    print(outcome.render_text())
    print(f"mean satisfaction: {outcome.mean_satisfaction:.2f}")

if __name__ == "__main__":
    main()
