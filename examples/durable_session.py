#!/usr/bin/env python3
"""Durable sessions: serialize, store, restore — across processes.

A single-process :class:`~repro.core.session.PlanningSession` dies
with its worker.  The durable form survives: ``session.dumps()`` is a
versioned, self-contained JSON payload, a pluggable
:class:`~repro.store.SessionStore` keeps it between requests (with
TTL expiry, LRU eviction, and admission backpressure), and the
versioned :class:`~repro.service.SessionApi` restores the session
from the store on *every* call — so any worker can serve any page of
any session.  The restored checkpoint is exact: page 2 after a round
trip pops the same queue entries as the live session would have.

Run:  python examples/durable_session.py
"""

from repro import PlanningSession, SkySREngine, datasets
from repro.errors import SessionNotFoundError
from repro.service import SessionApi, SkySRService
from repro.store import InMemorySessionStore


def main() -> None:
    data = datasets.mini_city()
    engine = SkySREngine(data.network, data.forest)
    start = data.landmarks["vq"]
    categories = ["Asian Restaurant", "Arts & Entertainment", "Gift Shop"]

    # -- 1. serialize / restore by hand ---------------------------------
    session = engine.session(start, categories, page_size=2)
    page1 = session.next_page()
    payload = session.dumps()  # versioned JSON text, self-contained
    print(
        f"page 1 served ({len(page1)} routes); checkpoint serialized "
        f"to {len(payload)} bytes of JSON"
    )

    restored = PlanningSession.loads(engine, payload)  # e.g. next process
    page2 = restored.next_page()
    live_page2 = session.next_page()
    assert [r.scores() for r in page2.routes] == [
        r.scores() for r in live_page2.routes
    ]
    assert page2.stats.routes_expanded == live_page2.stats.routes_expanded
    print(
        f"restored session served page 2 (ranks {page2.first_rank}..) "
        f"with {page2.stats.routes_expanded} queue pops — identical, "
        "pop for pop, to the never-serialized session"
    )

    # -- 2. the stateless service tier ----------------------------------
    # One store, two API "workers": any worker serves any session,
    # because state lives only in the store.
    store = InMemorySessionStore(max_entries=100, ttl=3600.0)
    service = SkySRService(data, max_k=10)
    worker_a = SessionApi(service, store, id_factory=lambda: "trip-1")
    worker_b = SessionApi(service, store)

    created = worker_a.dispatch(
        "POST",
        "/v1/sessions",
        {"categories": categories, "start": start, "page_size": 2},
    )
    sid = created.body["session_id"]
    first = worker_a.dispatch("POST", f"/v1/sessions/{sid}/pages")
    second = worker_b.dispatch("POST", f"/v1/sessions/{sid}/pages")
    print(
        f"\nsession {sid}: worker A served page {first.body['page']}, "
        f"worker B resumed and served page {second.body['page']} "
        f"(ranks {second.body['first_rank']}..)"
    )
    for route in second.body["routes"]:
        print(
            f"  #{route['rank']}: distance {route['distance']:.3f}, "
            f"{route['semantic_fit'] * 100:.0f}% match"
        )

    worker_b.dispatch("DELETE", f"/v1/sessions/{sid}")
    try:
        service_answer = worker_a.dispatch(
            "POST", f"/v1/sessions/{sid}/pages"
        )
        print(
            f"\nafter close: {service_answer.status} "
            f"{service_answer.body['error']} (typed, not a KeyError)"
        )
    except SessionNotFoundError:  # pragma: no cover - dispatch maps it
        pass
    print(f"store stats: {store.stats.as_dict()}")


if __name__ == "__main__":
    main()
