"""Contraction hierarchy ≡ Dijkstra: the exactness property layer.

The CH subsystem (:mod:`repro.graph.contraction`) promises exact
distances — preprocessing may add redundant shortcuts but never a wrong
one, and every query primitive (point-to-point, one-to-many buckets,
set-to-set minima, the lazy destination oracle) must agree with the
plain Dijkstra kernels.  Integer edge weights make float sums exact, so
these tests compare with strict equality at the oracle level; at the
engine level CH answers are compared at the 9-decimal grain because CH
sums associate differently along up-then-down paths.

Also pinned here: the global/option toggles (``set_ch_enabled``,
``REPRO_DISABLE_CH``, ``BSSROptions.use_contraction``), the vectorized
numpy sweep's bit-identity and its kill switch, the checkpoint
round-trip under CH candidate streams plus the restore guard that
refuses CH-relative stream offsets in a CH-less process, the stats
surfaces, and the benchmark baseline plumbing.
"""

from __future__ import annotations

import math
import random
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from benchmarks.baseline import GUARDED, load_baseline, main, read_key
from repro.core.engine import SkySREngine
from repro.core.options import BSSROptions
from repro.errors import SessionDecodeError
from repro.graph.contraction import (
    CHDistanceOracle,
    ch_enabled,
    contraction_for,
    set_ch_enabled,
    shared_bucket,
)
from repro.graph.csr import (
    HAVE_NUMPY,
    batched_min_distances,
    numpy_enabled,
    set_numpy_enabled,
)
from repro.graph.dijkstra import dijkstra
from repro.graph.road_network import RoadNetwork

from .conftest import pick_query, random_instance, score_set


@contextmanager
def ch_backend(enabled: bool):
    prev = set_ch_enabled(enabled)
    try:
        yield
    finally:
        set_ch_enabled(prev)


@contextmanager
def numpy_backend(enabled: bool):
    prev = set_numpy_enabled(enabled)
    try:
        yield
    finally:
        set_numpy_enabled(prev)


def min_edge_weight(network: RoadNetwork, u: int, v: int) -> float:
    """Smallest ``u -> v`` edge weight (parallel edges collapse in CH)."""
    best = math.inf
    for head, w in network.neighbors(u):
        if head == v and w < best:
            best = w
    return best


# ----------------------------------------------------------------------
# oracle-level exactness: every primitive against plain Dijkstra


@settings(deadline=None, max_examples=30)
@given(seed=st.integers(0, 10_000), directed=st.booleans())
def test_property_distances_identical_to_dijkstra(seed, directed):
    network, _forest, rng = random_instance(seed, directed=directed)
    ch = contraction_for(network)
    n = network.num_vertices
    for source in rng.sample(range(n), 4):
        exact = dijkstra(network, source)
        for target in rng.sample(range(n), 6):
            assert ch.distance(source, target) == exact.get(
                target, math.inf
            )


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(0, 10_000), directed=st.booleans())
def test_property_path_unpacks_to_original_edges(seed, directed):
    network, _forest, rng = random_instance(seed, directed=directed)
    ch = contraction_for(network)
    n = network.num_vertices
    source = rng.randrange(n)
    exact = dijkstra(network, source)
    for target in rng.sample(range(n), 5):
        dist, path = ch.path(source, target)
        assert dist == exact.get(target, math.inf)
        if dist == math.inf:
            assert path == []
            continue
        assert path[0] == source and path[-1] == target
        # every hop is an original edge and the hop weights close the
        # distance exactly (integer weights: float sums are exact)
        total = 0.0
        for a, b in zip(path, path[1:]):
            w = min_edge_weight(network, a, b)
            assert w < math.inf
            total += w
        assert total == dist


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(0, 10_000), directed=st.booleans())
def test_property_many_to_many_identical_to_dijkstra(seed, directed):
    network, _forest, rng = random_instance(seed, directed=directed)
    ch = contraction_for(network)
    n = network.num_vertices
    targets = rng.sample(range(n), 5)
    sources = rng.sample(range(n), 3)
    bucket = ch.bucket(targets)
    reference = {
        t: dijkstra(network, t, reverse=True) for t in targets
    }
    for s in sources:
        row = ch.distances_from(s, bucket)
        for t in targets:
            assert row.get(t, math.inf) == reference[t].get(s, math.inf)
    expected = min(
        reference[t].get(s, math.inf) for t in targets for s in sources
    )
    assert ch.min_from_set(sources, bucket) == expected


def test_destination_oracle_matches_reverse_dijkstra():
    network, _forest, rng = random_instance(99, directed=True)
    ch = contraction_for(network)
    destination = rng.randrange(network.num_vertices)
    oracle = CHDistanceOracle(ch, destination)
    exact = dijkstra(network, destination, reverse=True)
    for vid in range(network.num_vertices):
        assert oracle.get(vid, math.inf) == exact.get(vid, math.inf)


def test_memoized_rows_and_streams_are_consistent():
    network, forest, rng = random_instance(7)
    ch = contraction_for(network)
    engine = SkySREngine(network, forest)
    picked = pick_query(network, forest, rng, 2)
    assert picked is not None
    start, cats = picked
    spec = engine.compile(start, cats).specs[-1]
    assert spec.share_key is not None
    bucket = ch.bucket(spec.sim_map)
    row = ch.distances_from(start, bucket)
    assert ch.memo_row("cands", spec.share_key, start, spec.sim_map) == row
    # memo hit: same object, no recomputation
    memo = ch.memo_row("cands", spec.share_key, start, spec.sim_map)
    assert memo is ch.memo_row("cands", spec.share_key, start, spec.sim_map)
    stream = ch.memo_stream(spec.share_key, start, spec.sim_map)
    assert stream == sorted(
        (d, vid, spec.sim_map[vid]) for vid, d in row.items()
    )
    assert stream is ch.memo_stream(spec.share_key, start, spec.sim_map)
    if row:
        expected = min(row.values())
        assert (
            ch.vertex_min("cands", spec.share_key, start, spec.sim_map)
            == expected
        )


def test_shared_bucket_memoizes_on_hierarchy_without_cache():
    network, forest, rng = random_instance(13)
    ch = contraction_for(network)
    engine = SkySREngine(network, forest)
    picked = pick_query(network, forest, rng, 2)
    assert picked is not None
    start, cats = picked
    spec = engine.compile(start, cats).specs[0]
    a = shared_bucket(ch, network, None, "cands", spec.share_key, spec.sim_map)
    b = shared_bucket(ch, network, None, "cands", spec.share_key, spec.sim_map)
    assert a is b
    # no share_key: built fresh every time (unshareable target sets)
    c = shared_bucket(ch, network, None, "cands", None, spec.sim_map)
    assert c is not shared_bucket(
        ch, network, None, "cands", None, spec.sim_map
    )


# ----------------------------------------------------------------------
# engine level: CH on ≡ CH off at the 9-decimal grain


@settings(deadline=None, max_examples=25)
@given(seed=st.integers(0, 10_000), directed=st.booleans())
def test_property_engine_answers_identical_with_ch(seed, directed):
    network, forest, rng = random_instance(seed, directed=directed)
    picked = pick_query(network, forest, rng, 3)
    if picked is None:
        return
    start, cats = picked
    engine = SkySREngine(network, forest)
    plain = engine.query(start, cats)
    with ch_backend(True):
        with_ch = engine.query(
            start, cats, options=BSSROptions(use_contraction=True)
        )
    assert score_set(with_ch.routes) == score_set(plain.routes)


def test_engine_answers_identical_with_ch_and_destination():
    network, forest, rng = random_instance(42)
    picked = pick_query(network, forest, rng, 2)
    assert picked is not None
    start, cats = picked
    destination = rng.randrange(network.num_vertices)
    engine = SkySREngine(network, forest)
    plain = engine.query(start, cats, destination=destination)
    with ch_backend(True):
        with_ch = engine.query(
            start,
            cats,
            destination=destination,
            options=BSSROptions(use_contraction=True),
        )
    assert score_set(with_ch.routes) == score_set(plain.routes)


# ----------------------------------------------------------------------
# toggles: option flag, global switch, env seeding


def test_set_ch_enabled_returns_previous_and_gates_option():
    network, forest, rng = random_instance(5)
    picked = pick_query(network, forest, rng, 2)
    assert picked is not None
    start, cats = picked
    engine = SkySREngine(network, forest)
    options = BSSROptions(use_contraction=True)
    with ch_backend(False):
        assert not ch_enabled()
        # the option alone must not engage CH — the run falls back to
        # the graph kernels and still answers exactly
        disabled = engine.query(start, cats, options=options)
        assert "ch" not in disabled.stats.extra
    with ch_backend(True):
        assert ch_enabled()
        enabled = engine.query(start, cats, options=options)
        assert "ch" in enabled.stats.extra
    assert score_set(disabled.routes) == score_set(enabled.routes)


def test_ch_stats_reported_on_search_and_engine():
    network, forest, rng = random_instance(3)
    picked = pick_query(network, forest, rng, 2)
    assert picked is not None
    start, cats = picked
    engine = SkySREngine(network, forest)
    with ch_backend(True):
        result = engine.query(
            start, cats, options=BSSROptions(use_contraction=True)
        )
    ch_stats = result.stats.extra["ch"]
    assert ch_stats["vertices"] == network.num_vertices
    assert ch_stats["preprocess_ms"] >= 0.0
    perf = engine.perf_stats()
    assert perf["contraction"] == ch_stats


def test_contraction_for_memoized_and_invalidated():
    network, _forest, _rng = random_instance(21)
    ch = contraction_for(network)
    assert contraction_for(network) is ch
    network.add_edge(0, 1, 3.0)
    rebuilt = contraction_for(network)
    assert rebuilt is not ch
    assert rebuilt.distance(0, 1) <= 3.0


def test_disable_env_seeds_global_toggle():
    import os
    import subprocess
    import sys

    code = (
        "from repro.graph.contraction import ch_enabled\n"
        "from repro.graph.csr import numpy_enabled\n"
        "assert not ch_enabled()\n"
        "assert not numpy_enabled()\n"
    )
    env = dict(os.environ)
    env["REPRO_DISABLE_CH"] = "1"
    env["REPRO_DISABLE_NUMPY"] = "1"
    subprocess.run(
        [sys.executable, "-c", code], env=env, check=True
    )


# ----------------------------------------------------------------------
# vectorized multi-source sweeps: bit-identity and the kill switch


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(0, 10_000), directed=st.booleans())
def test_property_batched_sweep_bit_identical(seed, directed):
    if not HAVE_NUMPY:
        pytest.skip("numpy not installed")
    network, _forest, rng = random_instance(seed, directed=directed)
    n = network.num_vertices
    sources = rng.sample(range(n), 3)
    with numpy_backend(True):
        batched = batched_min_distances(network, sources)
        reversed_batched = batched_min_distances(
            network, sources, reverse=True
        )
    assert batched is not None and reversed_batched is not None
    rows = [dijkstra(network, s) for s in sources]
    rrows = [dijkstra(network, s, reverse=True) for s in sources]
    for v in range(n):
        assert batched[v] == min(r.get(v, math.inf) for r in rows)
        assert reversed_batched[v] == min(
            r.get(v, math.inf) for r in rrows
        )


def test_numpy_toggle_round_trips_and_gates_kernel():
    network, _forest, _rng = random_instance(1)
    with numpy_backend(False):
        assert not numpy_enabled()
        assert batched_min_distances(network, [0]) is None
    if HAVE_NUMPY:
        with numpy_backend(True):
            assert numpy_enabled()
            assert batched_min_distances(network, [0]) is not None


# ----------------------------------------------------------------------
# sessions: checkpoint round trip + the stream-offset restore guard


def test_session_checkpoint_round_trips_with_ch():
    network, forest, rng = random_instance(23)
    picked = pick_query(network, forest, rng, 3)
    assert picked is not None
    start, cats = picked
    options = BSSROptions(use_contraction=True)
    engine = SkySREngine(network, forest)
    with ch_backend(True):
        reference = engine.session(start, cats, page_size=1, options=options)
        session = engine.session(start, cats, page_size=1, options=options)
        first = list(session.next_page())
        assert score_set(reference.next_page()) == score_set(first)
        payload = session.dumps()
        restored = type(session).loads(engine, payload)
        assert score_set(restored.next_page()) == score_set(
            reference.next_page()
        )


def test_restore_refuses_ch_stream_offsets_without_ch():
    network, forest, rng = random_instance(23)
    picked = pick_query(network, forest, rng, 3)
    assert picked is not None
    start, cats = picked
    engine = SkySREngine(network, forest)
    with ch_backend(True):
        session = engine.session(
            start,
            cats,
            page_size=1,
            options=BSSROptions(use_contraction=True),
        )
        session.next_page()
        payload = session.dumps()
        with ch_backend(False):
            with pytest.raises(SessionDecodeError, match="use_contraction"):
                type(session).loads(engine, payload)
        # same payload restores fine once CH is back on
        type(session).loads(engine, payload).next_page()


# ----------------------------------------------------------------------
# benchmark baseline plumbing (loud skips, --check)


def test_read_key_walks_dotted_paths():
    payload = {"a": {"b": {"c": 1.5}}}
    assert read_key(payload, "a.b.c") == 1.5
    assert read_key(payload, "a.b.missing") is None
    assert read_key(payload, "a.b.c.d") is None


def test_load_baseline_is_loud_when_missing(tmp_path, capsys, monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_CHECK", raising=False)
    artifact = tmp_path / "BENCH_missing.json"
    assert load_baseline(artifact, "a.b") is None
    assert "no baseline" in capsys.readouterr().out
    artifact.write_text('{"a": {"b": 2.0}}')
    assert load_baseline(artifact, "a.b") == 2.0
    assert capsys.readouterr().out == ""


def test_load_baseline_fails_under_check_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_CHECK", "1")
    artifact = tmp_path / "BENCH_missing.json"
    with pytest.raises(AssertionError, match="REPRO_BENCH_CHECK"):
        load_baseline(artifact, "a.b")


def test_baseline_check_passes_on_committed_artifacts():
    # the committed BENCH_*.json artifacts must carry every guard key,
    # and the guard map must cover the CH columns
    assert "scenarios.figure3.ch.p95_s" in GUARDED["BENCH_core_query.json"]
    assert main(["--check"]) == 0
