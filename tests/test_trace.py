"""BSSR execution tracing (the Table-4 running example facility)."""

from repro.core.spec import compile_query
from repro.core.trace import render_trace, trace_bssr
from repro.datasets.paper_example import figure1_query
from repro.semantics.similarity import HierarchyWuPalmer

from .conftest import score_set


def test_trace_matches_untraced_run(figure1):
    from repro.core.bssr import run_bssr

    compiled = compile_query(
        figure1.landmarks["vq"],
        list(figure1_query()),
        figure1.index,
        HierarchyWuPalmer(),
    )
    plain_routes, _ = run_bssr(figure1.network, compiled)
    traced_routes, stats, steps = trace_bssr(figure1.network, compiled)
    assert score_set(traced_routes) == score_set(plain_routes)
    assert stats.result_size == len(traced_routes)
    assert steps, "at least the initial expansion must be recorded"


def test_trace_step_invariants(figure1):
    compiled = compile_query(
        figure1.landmarks["vq"],
        list(figure1_query()),
        figure1.index,
        HierarchyWuPalmer(),
    )
    _, stats, steps = trace_bssr(figure1.network, compiled)
    assert steps[0].action == "init"
    assert steps[0].route == ()
    assert all(s.action == "expand" for s in steps[1:])
    # steps are numbered densely and the queue drains by the end
    assert [s.step for s in steps] == list(range(1, len(steps) + 1))
    assert steps[-1].queue == []
    # the skyline only ever improves: no step's set is dominated by a
    # previous one at the same semantic level
    for earlier, later in zip(steps, steps[1:]):
        for route in earlier.skyline:
            assert any(
                (r.length <= route.length and r.semantic <= route.semantic)
                for r in later.skyline
            )
    # one expansion per recorded step
    assert len(steps) == 1 + stats.routes_expanded


def test_render_trace_format(figure1):
    compiled = compile_query(
        figure1.landmarks["vq"],
        list(figure1_query()),
        figure1.index,
        HierarchyWuPalmer(),
    )
    _, _, steps = trace_bssr(figure1.network, compiled)
    text = render_trace(steps)
    assert "Qb:" in text and "S:" in text
    assert text.count("\n") >= len(steps)


def test_table4_experiment_report():
    from repro.experiments import table4

    report = table4.run()
    assert "final SkySR set" in report.table
    assert report.data["steps"] >= 3
