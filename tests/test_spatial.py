"""Unit tests for spatial helpers and PoI edge-embedding."""

import math
import random

import pytest

from repro.errors import GraphError
from repro.graph.dijkstra import dijkstra
from repro.graph.road_network import RoadNetwork
from repro.graph.spatial import (
    bounding_box,
    embed_poi_on_edge,
    equirectangular,
    euclidean,
    nearest_edge,
    nearest_vertex,
)

from .conftest import integer_grid


def test_euclidean_and_equirectangular():
    assert euclidean((0, 0), (3, 4)) == 5.0
    assert equirectangular((10.0, 0.0), (11.0, 0.0)) == pytest.approx(1.0)
    # a degree of longitude shrinks with latitude
    at_equator = equirectangular((10.0, 0.0), (11.0, 0.0))
    at_60 = equirectangular((10.0, 60.0), (11.0, 60.0))
    assert at_60 < at_equator
    assert at_60 == pytest.approx(math.cos(math.radians(60.0)), rel=1e-3)


def test_nearest_vertex_and_edge():
    net = RoadNetwork()
    a = net.add_vertex(0.0, 0.0)
    b = net.add_vertex(10.0, 0.0)
    net.add_edge(a, b, 10.0)
    assert nearest_vertex(net, (1.0, 1.0)) == a
    assert nearest_vertex(net, (9.0, 1.0)) == b
    u, v, t = nearest_edge(net, (3.0, 2.0))
    assert {u, v} == {a, b}
    assert t == pytest.approx(0.3)
    with pytest.raises(GraphError):
        nearest_vertex(RoadNetwork(), (0, 0))


def test_nearest_edge_clamps_projection():
    net = RoadNetwork()
    a = net.add_vertex(0.0, 0.0)
    b = net.add_vertex(10.0, 0.0)
    net.add_edge(a, b, 10.0)
    _, _, t = nearest_edge(net, (-5.0, 1.0))
    assert t == 0.0
    _, _, t = nearest_edge(net, (15.0, 1.0))
    assert t == 1.0


def test_embed_poi_preserves_shortest_paths():
    rng = random.Random(0)
    net = integer_grid(4, 4, rng, extra_edges=0)
    before = dijkstra(net, 0)
    pid = embed_poi_on_edge(net, 5, (0.4, 0.0))
    assert net.is_poi(pid)
    after = dijkstra(net, 0)
    for vid, dist in before.items():
        assert after[vid] == pytest.approx(dist)
    # the PoI splits the chosen edge with weights summing to the original
    legs = sorted(w for _, w in net.neighbors(pid))
    assert sum(legs) == pytest.approx(1.0)
    assert after[pid] == pytest.approx(min(
        before[u] + w for u, w in
        ((v, w) for v, w in net.neighbors(pid))
    ))


def test_embed_poi_on_directed_network_is_bidirectional():
    net = RoadNetwork(directed=True)
    a = net.add_vertex(0.0, 0.0)
    b = net.add_vertex(2.0, 0.0)
    net.add_edge(a, b, 2.0)
    net.add_edge(b, a, 2.0)
    pid = embed_poi_on_edge(net, 9, (1.0, 0.1), edge=(a, b))
    dist_from_a = dijkstra(net, a)
    dist_from_p = dijkstra(net, pid)
    assert pid in dist_from_a
    assert a in dist_from_p and b in dist_from_p


def test_bounding_box():
    net = RoadNetwork()
    net.add_vertex(-1.0, 2.0)
    net.add_vertex(3.0, -4.0)
    assert bounding_box(net) == (-1.0, -4.0, 3.0, 2.0)
    with pytest.raises(GraphError):
        bounding_box(RoadNetwork())
