"""Experiment table formatting."""

import math

from repro.experiments.tables import format_series, format_table, format_value


def test_format_value():
    assert format_value(None) == "-"
    assert format_value(True) == "yes"
    assert format_value(False) == "no"
    assert format_value(0.0) == "0"
    assert format_value(math.inf) == "inf"
    assert format_value(1234567) == "1,234,567"
    assert format_value(12345.6) == "12,346"
    assert format_value(3.14159) == "3.14"
    assert format_value(0.00123) == "0.00123"
    assert format_value("text") == "text"


def test_format_table_alignment():
    table = format_table(
        ["name", "value"],
        [["alpha", 1], ["b", 23456]],
        title="demo",
    )
    lines = table.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # consistent row width


def test_format_series():
    out = format_series(
        "|Sq|", [2, 3], {"tokyo": [1.0, 2.0], "nyc": [None, 0.5]}
    )
    lines = out.splitlines()
    assert "tokyo" in lines[0] and "nyc" in lines[0]
    assert "-" in lines[2]  # the None cell in the x=2 row renders as dash
