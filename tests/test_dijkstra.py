"""Dijkstra variants vs networkx ground truth + resumable semantics."""

import math
import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.dijkstra import (
    ResumableDijkstra,
    bounded_dijkstra,
    dijkstra,
    eccentricity,
    multi_source_min_distance,
    shortest_path,
)
from repro.graph.io import to_networkx
from repro.graph.road_network import RoadNetwork

from .conftest import integer_grid


def _nx_distances(net, source):
    graph = to_networkx(net)
    return nx.single_source_dijkstra_path_length(graph, source)


@settings(deadline=None, max_examples=30)
@given(seed=st.integers(0, 10_000))
def test_property_dijkstra_matches_networkx(seed):
    rng = random.Random(seed)
    net = integer_grid(4, 5, rng, extra_edges=4)
    source = rng.randrange(net.num_vertices)
    ours = dijkstra(net, source)
    theirs = _nx_distances(net, source)
    assert ours == theirs


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(0, 10_000))
def test_property_directed_reverse_dijkstra(seed):
    rng = random.Random(seed)
    net = integer_grid(3, 4, rng, directed=True, extra_edges=3)
    target = rng.randrange(net.num_vertices)
    reverse = dijkstra(net, target, reverse=True)
    graph = to_networkx(net)
    for v in net.vertices():
        try:
            expected = nx.dijkstra_path_length(graph, v, target)
        except nx.NetworkXNoPath:
            expected = None
        if expected is None:
            assert v not in reverse
        else:
            assert reverse[v] == expected


def test_bounded_dijkstra_cuts_at_radius():
    rng = random.Random(1)
    net = integer_grid(5, 5, rng, extra_edges=0)
    full = dijkstra(net, 0)
    ball = bounded_dijkstra(net, 0, 3.0)
    assert ball == {v: d for v, d in full.items() if d < 3.0}
    assert bounded_dijkstra(net, 0, math.inf) == full
    assert bounded_dijkstra(net, 0, 0.0) == {}


def test_shortest_path_reconstruction():
    net = RoadNetwork()
    a, b, c, d = (net.add_vertex() for _ in range(4))
    net.add_edge(a, b, 1.0)
    net.add_edge(b, c, 1.0)
    net.add_edge(a, c, 5.0)
    dist, path = shortest_path(net, a, c)
    assert dist == 2.0
    assert path == [a, b, c]
    dist, path = shortest_path(net, a, d)
    assert dist == math.inf and path == []


def test_multi_source_min_distance_exact():
    rng = random.Random(2)
    net = integer_grid(4, 4, rng, extra_edges=2)
    sources, targets = [0, 5], [10, 15]
    expected = min(
        dijkstra(net, s).get(t, math.inf) for s in sources for t in targets
    )
    assert multi_source_min_distance(net, sources, targets) == expected
    # overlap → zero; empty sets → inf; radius truncation → radius
    assert multi_source_min_distance(net, [3], [3]) == 0.0
    assert multi_source_min_distance(net, [], [3]) == math.inf
    assert multi_source_min_distance(net, [3], []) == math.inf
    truncated = multi_source_min_distance(net, sources, targets, radius=0.5)
    assert truncated in (0.5, expected)
    assert truncated <= expected


def test_multi_source_unreachable_is_inf():
    net = RoadNetwork()
    a, b = net.add_vertex(), net.add_vertex()
    c, d = net.add_vertex(), net.add_vertex()
    net.add_edge(a, b, 1.0)
    net.add_edge(c, d, 1.0)
    assert multi_source_min_distance(net, [a], [c]) == math.inf


def test_eccentricity():
    rng = random.Random(3)
    net = integer_grid(3, 3, rng, extra_edges=0)
    assert eccentricity(net, 0) == 4.0  # corner to corner on a 3x3 grid


def test_multi_source_reverse_on_directed_graph():
    net = RoadNetwork(directed=True)
    a, b, c = (net.add_vertex() for _ in range(3))
    net.add_edge(a, b, 1.0)
    net.add_edge(b, c, 1.0)  # only a -> b -> c exists
    # forward: distance from a source to a target
    assert multi_source_min_distance(net, [a], [c]) == 2.0
    assert multi_source_min_distance(net, [c], [a]) == math.inf
    # reverse: distance from a *target* to a *source* (incoming edges)
    assert multi_source_min_distance(net, [c], [a], reverse=True) == 2.0
    assert multi_source_min_distance(net, [a], [c], reverse=True) == math.inf


def test_multi_source_reverse_matches_forward_transpose():
    rng = random.Random(6)
    net = integer_grid(3, 4, rng, directed=True, extra_edges=4)
    sources, targets = [0, 7], [4, 11]
    expected = min(
        dijkstra(net, t).get(s, math.inf) for s in sources for t in targets
    )
    assert (
        multi_source_min_distance(net, sources, targets, reverse=True)
        == expected
    )


def test_eccentricity_reverse_on_directed_graph():
    net = RoadNetwork(directed=True)
    a, b, c = (net.add_vertex() for _ in range(3))
    net.add_edge(a, b, 1.0)
    net.add_edge(b, c, 2.0)
    assert eccentricity(net, a) == 3.0  # farthest reachable from a
    assert eccentricity(net, a, reverse=True) == 0.0  # nothing reaches a
    assert eccentricity(net, c, reverse=True) == 3.0  # a -> c is longest in


def test_resumable_settles_in_distance_order():
    rng = random.Random(4)
    net = integer_grid(4, 4, rng, extra_edges=3)
    search = ResumableDijkstra(net, 0)
    settled = []
    while not search.exhausted:
        step = search.settle_next()
        assert step is not None
        settled.append(step)
    distances = [d for d, _ in settled]
    assert distances == sorted(distances)
    full = dijkstra(net, 0)
    assert {v: d for d, v in settled} == full
    assert search.settle_next() is None
    assert search.next_distance() == math.inf


def test_resumable_expand_until_budget_and_resume():
    rng = random.Random(5)
    net = integer_grid(5, 5, rng, extra_edges=0)
    search = ResumableDijkstra(net, 0)
    first = search.expand_until(2.0)
    assert all(d < 2.0 for d, _ in first)
    assert search.next_distance() >= 2.0
    more = search.expand_until(4.0)
    assert all(2.0 <= d < 4.0 for d, _ in more)
    # callable budgets are re-evaluated
    budget = iter([10.0, 10.0, 0.0])
    steps = search.expand_until(lambda: next(budget))
    assert len(steps) <= 2
    assert search.distance(0) == 0.0
    far = max(dijkstra(net, 0), key=lambda v: dijkstra(net, 0)[v])
    assert search.distance(far) == math.inf  # not settled yet
