"""The public engine API: algorithms, results, validation."""

import pytest

from repro.core.engine import ALGORITHMS, SkySREngine
from repro.core.options import BSSROptions
from repro.datasets.paper_example import figure1_query
from repro.errors import QueryError
from repro.extensions.predicates import AnyOf

from .conftest import score_set


@pytest.fixture()
def engine(figure1):
    return SkySREngine(figure1.network, figure1.forest)


def test_all_algorithms_agree_on_figure1(figure1, engine):
    start = figure1.landmarks["vq"]
    cats = list(figure1_query())
    results = {
        algo: engine.query(start, cats, algorithm=algo)
        for algo in ALGORITHMS
    }
    reference = score_set(results["brute-force"].routes)
    for algo, result in results.items():
        assert score_set(result.routes) == reference, algo
        assert result.algorithm == algo
        assert result.start == start
        assert result.labels == cats
        assert result.stats.elapsed >= 0.0


def test_result_presentation(figure1, engine):
    start = figure1.landmarks["vq"]
    result = engine.query(start, list(figure1_query()))
    assert len(result) == len(result.routes)
    assert list(iter(result)) == result.routes
    shortest = result.shortest
    assert shortest is not None
    assert shortest.length == min(r.length for r in result.routes)
    perfect = result.perfect
    assert perfect is not None and perfect.semantic == 0.0
    names = result.poi_category_names(perfect)
    assert names[0] == "Asian Restaurant"
    table = result.to_table()
    assert "distance" in table and "Asian Restaurant" in table
    line = result.describe_route(perfect)
    assert "->" in line


def test_unknown_algorithm_rejected(figure1, engine):
    with pytest.raises(QueryError):
        engine.query(0, ["Gift Shop"], algorithm="magic")


def test_unordered_restrictions(figure1, engine):
    with pytest.raises(QueryError):
        engine.query(0, ["Gift Shop"], ordered=False, algorithm="dij")
    with pytest.raises(QueryError):
        engine.query(
            0, ["Gift Shop"], ordered=False, destination=1
        )


def test_naive_baselines_reject_predicates(figure1, engine):
    predicate = AnyOf("Gift Shop", "Hobby Shop")
    with pytest.raises(QueryError):
        engine.query(0, [predicate], algorithm="dij")
    # BSSR accepts them
    result = engine.query(figure1.landmarks["vq"], [predicate])
    assert len(result) >= 1


def test_per_query_options_override(figure1, engine):
    start = figure1.landmarks["vq"]
    cats = list(figure1_query())
    base = engine.query(start, cats)
    ablated = engine.query(
        start, cats, options=BSSROptions.without_optimizations()
    )
    assert score_set(base.routes) == score_set(ablated.routes)
    assert ablated.stats.cache_hits == 0


def test_bssr_noopt_algorithm_name(figure1, engine):
    start = figure1.landmarks["vq"]
    result = engine.query(start, list(figure1_query()), algorithm="bssr-noopt")
    assert result.stats.init_routes == 0
    assert result.stats.cache_hits == 0


def test_index_refresh(figure1, engine):
    index_before = engine.index
    assert engine.index is index_before  # cached
    engine.refresh_index()
    assert engine.index is not index_before


def test_compile_exposes_specs(figure1, engine):
    compiled = engine.compile(
        figure1.landmarks["vq"], list(figure1_query())
    )
    assert compiled.size == 3
    assert compiled.disjoint_trees
    assert [s.label for s in compiled.specs] == list(figure1_query())


def test_result_without_context_raises():
    from repro.core.routes import SkylineRoute
    from repro.core.engine import SkySRResult
    from repro.core.stats import SearchStats

    result = SkySRResult(
        routes=[SkylineRoute(pois=(1,), length=1.0, semantic=0.0)],
        stats=SearchStats(),
        start=0,
        labels=["x"],
        algorithm="bssr",
    )
    with pytest.raises(QueryError):
        result.poi_category_names(result.routes[0])


def test_engine_accepts_category_ids(figure1, engine):
    start = figure1.landmarks["vq"]
    ids = [figure1.forest.resolve(name) for name in figure1_query()]
    by_name = engine.query(start, list(figure1_query()))
    by_id = engine.query(start, ids)
    assert score_set(by_name.routes) == score_set(by_id.routes)
