"""Diversity re-ranking: the MMR property layer.

The two satellite properties, plus similarity-measure sanity and the
threading through engine options, sessions, and the service:

* ``diversity_lambda = 0`` is the identity permutation — through
  :func:`~repro.core.diversity.diversify` directly, through
  ``BSSROptions``, and through session pages;
* re-ranked lists never contain routes absent from the skyband they
  were selected from (re-ranking permutes, never invents).
"""

from __future__ import annotations

import random

import pytest

from repro.core.diversity import (
    diversify,
    poi_jaccard,
    route_similarity,
    segment_jaccard,
)
from repro.core.engine import SkySREngine
from repro.core.options import BSSROptions
from repro.core.routes import SkylineRoute
from repro.errors import QueryError

from .conftest import pick_query, random_instance

# ---------------------------------------------------------------------------
# similarity measures


def _route(*pois, length=1.0, semantic=0.0):
    return SkylineRoute(pois=tuple(pois), length=length, semantic=semantic)


def test_poi_jaccard_extremes():
    a, b = _route(1, 2, 3), _route(4, 5, 6)
    assert poi_jaccard(a, a) == 1.0
    assert poi_jaccard(a, b) == 0.0
    assert poi_jaccard(_route(1, 2), _route(2, 3)) == pytest.approx(1 / 3)


def test_segment_jaccard_measures_shared_legs():
    a, b = _route(1, 2, 3), _route(9, 2, 3)
    # legs {(1,2),(2,3)} vs {(9,2),(2,3)} -> 1 shared of 3
    assert segment_jaccard(a, b) == pytest.approx(1 / 3)
    # a common start adds the (start, first poi) leg
    assert segment_jaccard(a, b, start=0) == pytest.approx(1 / 5)
    assert segment_jaccard(a, a, start=0) == 1.0


def test_route_similarity_is_a_convex_mix():
    a, b = _route(1, 2), _route(1, 3)
    poi, seg = poi_jaccard(a, b), segment_jaccard(a, b)
    assert route_similarity(a, b, geometry_weight=0.0) == pytest.approx(poi)
    assert route_similarity(a, b, geometry_weight=1.0) == pytest.approx(seg)
    mixed = route_similarity(a, b, geometry_weight=0.25)
    assert mixed == pytest.approx(0.25 * seg + 0.75 * poi)
    assert 0.0 <= mixed <= 1.0


# ---------------------------------------------------------------------------
# the satellite properties


def _random_candidates(rng: random.Random, count: int) -> list[SkylineRoute]:
    pool = list(range(20))
    return [
        _route(
            *rng.sample(pool, 3),
            length=float(rng.randint(1, 30)),
            semantic=rng.random(),
        )
        for _ in range(count)
    ]


@pytest.mark.parametrize("seed", range(8))
def test_lambda_zero_is_the_identity_permutation(seed):
    rng = random.Random(seed)
    candidates = _random_candidates(rng, 12)
    assert diversify(candidates, diversity_lambda=0.0) == candidates
    assert (
        diversify(candidates, 5, diversity_lambda=0.0) == candidates[:5]
    )


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("lam", [0.0, 0.3, 0.7, 1.0])
def test_reranked_lists_are_subsets_of_the_input(seed, lam):
    rng = random.Random(seed)
    candidates = _random_candidates(rng, 10)
    out = diversify(candidates, 6, diversity_lambda=lam)
    assert len(out) == 6
    ids = {id(r) for r in candidates}
    assert all(id(r) in ids for r in out)  # permutes, never invents
    assert len({id(r) for r in out}) == len(out)  # no duplicates


@pytest.mark.parametrize("seed", range(6))
def test_first_pick_is_always_the_top_ranked_route(seed):
    rng = random.Random(seed)
    candidates = _random_candidates(rng, 8)
    for lam in (0.0, 0.5, 1.0):
        out = diversify(candidates, 3, diversity_lambda=lam)
        assert out[0] is candidates[0]


def test_diversify_guard_rails():
    with pytest.raises(QueryError):
        diversify([], diversity_lambda=-0.5)
    with pytest.raises(QueryError):
        diversify([], diversity_lambda=2.0)
    assert diversify([], 3, diversity_lambda=0.5) == []
    one = [_route(1, 2)]
    assert diversify(one, 3, diversity_lambda=0.9) == one


def test_diversify_prefers_dissimilar_routes():
    first = _route(1, 2, 3, length=1.0)
    near_copy = _route(1, 2, 4, length=2.0)
    disjoint = _route(7, 8, 9, length=3.0)
    out = diversify(
        [first, near_copy, disjoint], 2, diversity_lambda=0.8
    )
    assert out == [first, disjoint]


# ---------------------------------------------------------------------------
# threading through engine, session, service


def _engine_and_query(seed, size=3):
    network, forest, rng = random_instance(seed)
    picked = pick_query(network, forest, rng, size)
    if picked is None:
        pytest.skip("instance admits no query of this size")
    start, cats = picked
    return SkySREngine(network, forest), start, cats


@pytest.mark.parametrize("seed", range(8))
def test_engine_lambda_zero_identity_and_skyband_containment(seed):
    engine, start, cats = _engine_and_query(seed)
    base = engine.query(start, cats, options=BSSROptions().but(k=4))
    zero = engine.query(
        start, cats, options=BSSROptions().but(k=4, diversity_lambda=0.0)
    )
    assert [r.pois for r in zero.routes] == [r.pois for r in base.routes]
    for lam in (0.4, 1.0):
        diverse = engine.query(
            start,
            cats,
            options=BSSROptions().but(k=4, diversity_lambda=lam),
        )
        band = {r.pois for r in base.skyband}
        assert {r.pois for r in diverse.routes} <= band
        assert diverse.routes[0].pois == base.routes[0].pois


@pytest.mark.parametrize("seed", range(6))
def test_session_pages_with_lambda_zero_match_plain_session(seed):
    engine, start, cats = _engine_and_query(seed)
    plain = engine.session(start, cats, page_size=2)
    zero = engine.session(start, cats, page_size=2, diversity_lambda=0.0)
    for _ in range(3):
        assert [r.pois for r in zero.next_page()] == [
            r.pois for r in plain.next_page()
        ]


@pytest.mark.parametrize("seed", range(6))
def test_diverse_session_pages_stay_inside_the_skyband(seed):
    """Each page's routes come from the skyband as it stood when the
    page was served (a later resume may swap a score-equivalent
    representative, so containment is per-page by PoIs and global by
    score pair), and no score pair is ever served twice."""
    engine, start, cats = _engine_and_query(seed)
    session = engine.session(
        start, cats, page_size=2, diversity_lambda=0.7
    )
    served = []
    for _ in range(3):
        page = session.next_page()
        band_now = {r.pois for r in session._search.state.skyband.routes()}
        assert {r.pois for r in page.routes} <= band_now
        served.extend(page.routes)
        if page.exhausted:
            break
    final_scores = {
        r.scores() for r in session._search.state.skyband.routes()
    }
    assert {r.scores() for r in served} <= final_scores
    scorepairs = [r.scores() for r in served]
    assert len(scorepairs) == len(set(scorepairs))  # nothing re-served


def test_result_diversified_accessor(figure1):
    engine = SkySREngine(figure1.network, figure1.forest)
    start = figure1.landmarks["vq"]
    cats = ["Asian Restaurant", "Arts & Entertainment", "Gift Shop"]
    result = engine.query(start, cats, options=BSSROptions().but(k=3))
    assert [r.pois for r in result.diversified(diversity_lambda=0.0)] == [
        r.pois for r in result.topk()
    ]
    diverse = result.diversified(diversity_lambda=0.8)
    assert {r.pois for r in diverse} <= {r.pois for r in result.skyband}
