"""Lower bounds (Algorithm 4 / Definition 5.7 / Lemma 5.8 inputs)."""

import math

import pytest

from repro.core.bounds import LowerBounds, compute_lower_bounds
from repro.core.dominance import SkylineSet
from repro.core.routes import SkylineRoute
from repro.core.spec import compile_query
from repro.core.stats import SearchStats
from repro.graph.poi import PoIIndex
from repro.graph.road_network import RoadNetwork
from repro.semantics.similarity import HierarchyWuPalmer

from .conftest import small_forest


def _chain_instance():
    """start -1- ramen -2- museum -3- gift, plus a hobby 1 past museum."""
    forest = small_forest()
    net = RoadNetwork()
    start = net.add_vertex()
    ramen = net.add_poi(forest.resolve("Ramen"))
    museum = net.add_poi(forest.resolve("Museum"))
    hobby = net.add_poi(forest.resolve("Hobby"))
    gift = net.add_poi(forest.resolve("Gift"))
    net.add_edge(start, ramen, 1.0)
    net.add_edge(ramen, museum, 2.0)
    net.add_edge(museum, hobby, 1.0)
    net.add_edge(hobby, gift, 2.0)
    index = PoIIndex(net, forest)
    query = compile_query(
        start, ["Ramen", "Museum", "Gift"], index, HierarchyWuPalmer()
    )
    return net, query, dict(
        start=start, ramen=ramen, museum=museum, hobby=hobby, gift=gift
    )


def test_disabled_bounds_are_zero():
    net, query, _ = _chain_instance()
    bounds = LowerBounds.disabled(query.size)
    assert bounds.suffix_ls == [0.0] * 4
    assert bounds.suffix_lp == [0.0] * 4
    assert bounds.dest_min == 0.0


def test_legs_and_suffixes():
    net, query, ids = _chain_instance()
    skyline = SkylineSet()  # empty → unrestricted sets
    stats = SearchStats()
    bounds = compute_lower_bounds(net, query, skyline, stats=stats)
    # leg 0: Food-tree PoIs → Fun-tree PoIs: ramen→museum = 2
    assert bounds.legs_ls[0] == 2.0
    # leg 1: Fun-tree PoIs → Shop-tree PoIs: museum→hobby = 1
    assert bounds.legs_ls[1] == 1.0
    # perfect variant of leg 1 targets Gift only: museum→gift = 3
    assert bounds.legs_lp[1] == 3.0
    assert bounds.suffix_ls[3] == 0.0
    assert bounds.suffix_ls[2] == 1.0
    assert bounds.suffix_ls[1] == 3.0
    assert bounds.suffix_ls[0] == bounds.suffix_ls[1]
    assert bounds.suffix_lp[1] == 5.0  # 2 + 3
    assert stats.sum_ls == 3.0 and stats.sum_lp == 5.0
    assert stats.bounds_time >= 0.0


def test_ball_restriction_prunes_far_candidates():
    """Candidates beyond the l̄(ϕ) radius are ignored (Alg. 4 line 3)."""
    net, query, ids = _chain_instance()
    skyline = SkylineSet()
    # pretend the perfect route is very short: radius 2 excludes museum+
    skyline.update(
        SkylineRoute(pois=(99, 98, 97), length=2.0, semantic=0.0)
    )
    bounds = compute_lower_bounds(net, query, skyline)
    # with an empty restricted target set the leg collapses to a valid
    # lower bound: the truncation radius or inf
    assert bounds.legs_ls[0] >= 2.0


def test_remaining_best_np_suffix_max():
    net, query, _ = _chain_instance()
    bounds = compute_lower_bounds(net, query, SkylineSet())
    # best_nonperfect is taken over actual candidate PoIs: the Ramen and
    # Museum positions only have perfect candidates (None); the Gift
    # position has the Hobby PoI at sim 2/3.
    assert bounds.remaining_best_np[3] is None
    assert bounds.remaining_best_np[2] == pytest.approx(2 / 3)
    assert bounds.remaining_best_np[1] == pytest.approx(2 / 3)
    assert bounds.remaining_best_np[0] == pytest.approx(2 / 3)


def test_perfect_disabled_keeps_lp_at_ls():
    net, query, _ = _chain_instance()
    bounds = compute_lower_bounds(
        net, query, SkylineSet(), perfect_enabled=False
    )
    assert bounds.suffix_lp == bounds.suffix_ls


def test_dest_min_lower_bound():
    net, query, ids = _chain_instance()
    dest = ids["start"]  # round trip
    from repro.graph.dijkstra import dijkstra

    dest_dist = dijkstra(net, dest, reverse=True)
    bounds = compute_lower_bounds(
        net, query, SkylineSet(), dest_dist=dest_dist
    )
    # closest Shop-tree PoI to the start is hobby at distance 4
    assert bounds.dest_min == 4.0


def test_unreachable_leg_is_inf():
    forest = small_forest()
    net = RoadNetwork()
    start = net.add_vertex()
    ramen = net.add_poi(forest.resolve("Ramen"))
    net.add_edge(start, ramen, 1.0)
    island = net.add_poi(forest.resolve("Gift"))
    lonely = net.add_vertex()
    net.add_edge(lonely, island, 1.0)
    index = PoIIndex(net, forest)
    query = compile_query(start, ["Ramen", "Gift"], index, HierarchyWuPalmer())
    bounds = compute_lower_bounds(net, query, SkylineSet())
    assert bounds.legs_ls[0] == math.inf
    assert bounds.suffix_ls[1] == math.inf
