"""End-to-end integration: presets × algorithms × persistence."""

import pytest

from repro import (
    BSSROptions,
    RoadNetwork,
    SkySREngine,
    build_foursquare_forest,
)
from repro.datasets.presets import nyc_like, tokyo_like
from repro.datasets.workloads import generate_workload
from repro.graph.io import load_dataset, save_dataset

from .conftest import score_set


@pytest.fixture(scope="module")
def tokyo():
    return tokyo_like(0.08)


def test_preset_pipeline_all_algorithms_agree(tokyo):
    engine = SkySREngine(tokyo.network, tokyo.forest)
    workload = generate_workload(tokyo, 2, 3, seed=42)
    for query in workload:
        reference = None
        for algo in ("bssr", "bssr-noopt", "dij", "pne"):
            result = engine.query(
                query.start, list(query.categories), algorithm=algo
            )
            scores = score_set(result.routes)
            if reference is None:
                reference = scores
            else:
                assert scores == reference, (algo, query)
        assert reference  # at least one skyline route per workload query


def test_skyline_routes_respect_dominance(tokyo):
    from repro.core.dominance import dominates, equivalent

    engine = SkySREngine(tokyo.network, tokyo.forest)
    workload = generate_workload(tokyo, 3, 3, seed=7)
    for query in workload:
        result = engine.query(query.start, list(query.categories))
        pairs = [r.scores() for r in result.routes]
        for i, a in enumerate(pairs):
            for j, b in enumerate(pairs):
                if i != j:
                    assert not dominates(a, b)
                    assert not equivalent(a, b)


def test_save_load_query_roundtrip(tokyo, tmp_path):
    path = tmp_path / "tokyo.json"
    save_dataset(path, tokyo.network, tokyo.forest)
    network, forest = load_dataset(path)
    engine_a = SkySREngine(tokyo.network, tokyo.forest)
    engine_b = SkySREngine(network, forest)
    workload = generate_workload(tokyo, 2, 2, seed=3)
    for query in workload:
        a = engine_a.query(query.start, list(query.categories))
        b = engine_b.query(
            query.start,
            [tokyo.forest.name_of(c) for c in query.categories],
        )
        assert score_set(a.routes) == score_set(b.routes)


def test_directed_preset_variant():
    """A directed copy of a small city still satisfies skyline parity."""
    base = nyc_like(0.05)
    directed = RoadNetwork(directed=True)
    for vid in base.network.vertices():
        coords = base.network.coords(vid)
        directed.add_vertex(*(coords or (None, None)))
        cats = base.network.poi_categories(vid)
        if cats:
            directed.set_poi(vid, cats)
    for u, v, w in base.network.edges():
        directed.add_edge(u, v, w)
        directed.add_edge(v, u, w)
    engine_u = SkySREngine(base.network, base.forest)
    engine_d = SkySREngine(directed, base.forest)
    workload = generate_workload(base, 2, 2, seed=11)
    for query in workload:
        a = engine_u.query(query.start, list(query.categories))
        b = engine_d.query(query.start, list(query.categories))
        assert score_set(a.routes) == score_set(b.routes)


def test_custom_city_from_scratch():
    """The README quickstart flow: build a city, ask for a route."""
    forest = build_foursquare_forest()
    net = RoadNetwork()
    v = [net.add_vertex(float(i), 0.0) for i in range(5)]
    for a, b in zip(v, v[1:]):
        net.add_edge(a, b, 1.0)
    bakery = net.add_poi(forest.resolve("Bakery"), 1.0, 0.5)
    museum = net.add_poi(forest.resolve("Art Museum"), 3.0, 0.5)
    net.add_edge(v[1], bakery, 0.5)
    net.add_edge(v[3], museum, 0.5)
    engine = SkySREngine(net, forest)
    result = engine.query(v[0], ["Bakery", "Art Museum"])
    assert len(result) == 1
    assert result.routes[0].pois == (bakery, museum)
    assert result.routes[0].semantic == 0.0
    assert result.routes[0].length == pytest.approx(1.5 + 0.5 + 2 + 0.5)


def test_options_flow_through_engine_constructor(tokyo):
    engine = SkySREngine(
        tokyo.network,
        tokyo.forest,
        options=BSSROptions.without_optimizations(),
    )
    workload = generate_workload(tokyo, 2, 1, seed=9)
    result = engine.query(workload[0].start, list(workload[0].categories))
    assert result.stats.cache_hits == 0
    assert result.stats.init_routes == 0
