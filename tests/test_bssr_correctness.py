"""BSSR exactness: parity with the brute-force oracle (Theorem 3).

These are the most important tests in the repository.  BSSR with every
optimization enabled must return exactly the same skyline score set as
exhaustive enumeration on randomized instances covering: undirected and
directed networks, repeated category trees (where route-independent
caching must be bypassed), same-category repetitions (PoI distinctness),
destination queries, multi-category PoIs, and alternative similarity
measures / aggregators.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute_force import brute_force_skysr
from repro.core.bssr import run_bssr
from repro.core.options import BSSROptions
from repro.core.spec import compile_query
from repro.errors import AlgorithmError
from repro.graph.poi import PoIIndex
from repro.semantics.scoring import (
    MeanAggregator,
    MinAggregator,
    ProductAggregator,
)
from repro.semantics.similarity import (
    ClassicWuPalmer,
    HierarchyWuPalmer,
    PathLengthSimilarity,
)

from .conftest import pick_query, random_instance, score_set


def _parity_check(
    seed,
    *,
    size=3,
    directed=False,
    distinct_trees=True,
    similarity=None,
    aggregator=None,
    options=None,
    destination=False,
    num_pois=10,
):
    network, forest, rng = random_instance(
        seed, directed=directed, num_pois=num_pois
    )
    query = pick_query(
        network, forest, rng, size, distinct_trees=distinct_trees
    )
    if query is None:
        return None
    start, cats = query
    similarity = similarity or HierarchyWuPalmer()
    aggregator = aggregator or ProductAggregator()
    index = PoIIndex(network, forest)
    dest = rng.randrange(network.num_vertices) if destination else None
    compiled = compile_query(
        start, cats, index, similarity, destination=dest
    )
    expected = brute_force_skysr(network, compiled, aggregator=aggregator)
    actual, stats = run_bssr(
        network, compiled, aggregator=aggregator, options=options
    )
    assert score_set(actual) == score_set(expected), (
        f"seed={seed} start={start} cats={cats} dest={dest}"
    )
    return stats


@settings(deadline=None, max_examples=50)
@given(seed=st.integers(0, 100_000))
def test_property_parity_undirected(seed):
    _parity_check(seed)


@settings(deadline=None, max_examples=30)
@given(seed=st.integers(0, 100_000))
def test_property_parity_directed(seed):
    _parity_check(seed, directed=True)


@settings(deadline=None, max_examples=30)
@given(seed=st.integers(0, 100_000))
def test_property_parity_repeated_trees(seed):
    """Positions drawing from the same tree: caching is bypassed, PoI
    distinctness and the usable-PoI filters are exercised."""
    _parity_check(seed, distinct_trees=False)


@settings(deadline=None, max_examples=25)
@given(seed=st.integers(0, 100_000))
def test_property_parity_with_destination(seed):
    _parity_check(seed, destination=True)


@settings(deadline=None, max_examples=25)
@given(seed=st.integers(0, 100_000))
def test_property_parity_size_two_and_four(seed):
    _parity_check(seed, size=2)
    _parity_check(seed, size=4, num_pois=12)


@pytest.mark.parametrize(
    "similarity",
    [ClassicWuPalmer(), PathLengthSimilarity()],
    ids=lambda s: s.name,
)
def test_parity_alternative_similarities(similarity):
    for seed in range(12):
        _parity_check(seed, similarity=similarity)


@pytest.mark.parametrize(
    "aggregator",
    [MinAggregator(), MeanAggregator()],
    ids=lambda a: a.name,
)
def test_parity_alternative_aggregators(aggregator):
    for seed in range(12):
        _parity_check(seed, aggregator=aggregator)


def test_parity_multi_category_pois():
    for seed in range(15):
        network, forest, rng = random_instance(seed, num_pois=8)
        # attach a second category (possibly from another tree) to some PoIs
        leaves = forest.leaves()
        for vid in network.poi_vertices():
            if rng.random() < 0.5:
                extra = leaves[rng.randrange(len(leaves))]
                cats = network.poi_categories(vid)
                if extra not in cats:
                    network.set_poi(vid, cats + (extra,))
        query = pick_query(network, forest, rng, 3)
        if query is None:
            continue
        start, cats = query
        index = PoIIndex(network, forest)
        compiled = compile_query(start, cats, index, HierarchyWuPalmer())
        expected = brute_force_skysr(network, compiled)
        actual, _ = run_bssr(network, compiled)
        assert score_set(actual) == score_set(expected), f"seed={seed}"


def test_figure1_instance_parity(figure1):
    from repro.datasets.paper_example import figure1_query

    index = figure1.index
    compiled = compile_query(
        figure1.landmarks["vq"],
        list(figure1_query()),
        index,
        HierarchyWuPalmer(),
    )
    expected = brute_force_skysr(figure1.network, compiled)
    actual, stats = run_bssr(figure1.network, compiled)
    assert score_set(actual) == score_set(expected)
    # the skyline must contain a perfect route and a generalized shorter one
    semantics = sorted(r.semantic for r in actual)
    assert semantics[0] == 0.0
    assert semantics[-1] > 0.0
    lengths = [r.length for r in actual]
    perfect_length = next(r.length for r in actual if r.semantic == 0.0)
    assert min(lengths) < perfect_length


def test_empty_position_returns_empty():
    network, forest, rng = random_instance(3, num_pois=5)
    index = PoIIndex(network, forest)
    # "Jazz" tree has no PoIs in this instance with high probability; if
    # it does, drop them
    for vid in list(network.poi_vertices()):
        if index.matches_tree("Jazz", vid):
            network.clear_poi(vid)
    index = PoIIndex(network, forest)
    compiled = compile_query(0, ["Ramen", "Jazz"], index, HierarchyWuPalmer())
    routes, stats = run_bssr(network, compiled)
    assert routes == []
    assert stats.result_size == 0


def test_max_routes_expanded_guard():
    query = None
    for seed in range(20):
        network, forest, rng = random_instance(seed, num_pois=14)
        query = pick_query(network, forest, rng, 3)
        if query is not None:
            break
    assert query is not None
    start, cats = query
    index = PoIIndex(network, forest)
    compiled = compile_query(start, cats, index, HierarchyWuPalmer())
    options = BSSROptions(max_routes_expanded=0)
    with pytest.raises(AlgorithmError):
        run_bssr(network, compiled, options=options)


def test_skyline_routes_are_valid_sequenced_routes():
    """Definition 3.4: size, semantic matches, distinct PoIs."""
    for seed in range(10):
        network, forest, rng = random_instance(seed)
        query = pick_query(network, forest, rng, 3)
        if query is None:
            continue
        start, cats = query
        index = PoIIndex(network, forest)
        compiled = compile_query(start, cats, index, HierarchyWuPalmer())
        routes, _ = run_bssr(network, compiled)
        for route in routes:
            assert route.size == 3
            assert len(set(route.pois)) == 3
            for position, vid in enumerate(route.pois):
                assert compiled.specs[position].similarity(vid) is not None
            assert len(route.sims) == 3
