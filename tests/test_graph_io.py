"""Round-trip tests for dataset persistence and the networkx bridge."""

import random

import networkx as nx
import pytest

from repro.errors import DataError
from repro.graph.io import (
    from_networkx,
    load_dataset,
    network_from_dict,
    network_to_dict,
    read_edge_list,
    save_dataset,
    to_networkx,
    write_edge_list,
)
from repro.graph.road_network import RoadNetwork

from .conftest import integer_grid, small_forest


def _sample_network(directed=False):
    rng = random.Random(11)
    net = integer_grid(3, 3, rng, directed=directed, extra_edges=2)
    forest = small_forest()
    poi = net.add_poi((forest.resolve("Ramen"), forest.resolve("Gift")), 0.5, 0.5)
    net.add_edge(0, poi, 1.0)
    if directed:
        net.add_edge(poi, 0, 1.0)
    return net, forest


@pytest.mark.parametrize("directed", [False, True])
def test_network_dict_roundtrip(directed):
    net, _ = _sample_network(directed)
    clone = network_from_dict(network_to_dict(net))
    assert clone.directed == net.directed
    assert clone.num_vertices == net.num_vertices
    assert sorted(clone.edges()) == sorted(net.edges())
    for vid in net.vertices():
        assert clone.coords(vid) == net.coords(vid)
        assert clone.poi_categories(vid) == net.poi_categories(vid)


def test_network_from_dict_rejects_sparse_ids():
    with pytest.raises(DataError):
        network_from_dict({"directed": False, "vertices": [{"id": 1}], "edges": []})


def test_dataset_roundtrip(tmp_path):
    net, forest = _sample_network()
    path = tmp_path / "data.json"
    save_dataset(path, net, forest)
    net2, forest2 = load_dataset(path)
    assert net2.num_vertices == net.num_vertices
    assert forest2.names() == forest.names()


def test_load_dataset_errors(tmp_path):
    missing = tmp_path / "nope.json"
    with pytest.raises(DataError):
        load_dataset(missing)
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    with pytest.raises(DataError):
        load_dataset(bad)
    not_json = tmp_path / "garbage.json"
    not_json.write_text("{{{")
    with pytest.raises(DataError):
        load_dataset(not_json)


def test_edge_list_roundtrip(tmp_path):
    net, _ = _sample_network()
    path = tmp_path / "edges.tsv"
    write_edge_list(path, net)
    clone = read_edge_list(path)
    assert sorted(clone.edges()) == sorted(net.edges())


def test_edge_list_parsing(tmp_path):
    path = tmp_path / "edges.tsv"
    path.write_text("# comment\n0 1 2.5\n\n1 2 1.0\n")
    net = read_edge_list(path)
    assert net.num_vertices == 3 and net.num_edges == 2
    bad = tmp_path / "bad.tsv"
    bad.write_text("0 1\n")
    with pytest.raises(DataError):
        read_edge_list(bad)


def test_networkx_roundtrip():
    net, _ = _sample_network()
    graph = to_networkx(net)
    assert isinstance(graph, nx.Graph)
    assert graph.number_of_nodes() == net.num_vertices
    clone = from_networkx(graph)
    assert clone.num_vertices == net.num_vertices
    # parallel edges collapse to min weight in the bridge
    ours = {(u, v): w for u, v, w in clone.edges()}
    for (u, v), w in ours.items():
        assert graph[u][v]["weight"] == w


def test_networkx_directed():
    net, _ = _sample_network(directed=True)
    graph = to_networkx(net)
    assert isinstance(graph, nx.DiGraph)
    clone = from_networkx(graph)
    assert clone.directed
