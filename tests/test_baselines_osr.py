"""OSR solvers: the Dijkstra-based solution vs PNE vs enumeration."""

import itertools
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.osr_dijkstra import osr_dijkstra
from repro.baselines.osr_pne import osr_pne
from repro.graph.dijkstra import dijkstra

from .conftest import attach_integer_pois, integer_grid, small_forest


def _osr_brute(network, start, candidate_sets, destination=None):
    """Reference OSR by full enumeration (distinct PoIs)."""
    dist_cache = {}

    def dmap(v):
        if v not in dist_cache:
            dist_cache[v] = dijkstra(network, v)
        return dist_cache[v]

    best = None
    for combo in itertools.product(*candidate_sets):
        if len(set(combo)) != len(combo):
            continue
        length = dmap(start).get(combo[0], math.inf)
        for a, b in zip(combo, combo[1:]):
            length += dmap(a).get(b, math.inf)
        if destination is not None:
            length += dmap(combo[-1]).get(destination, math.inf)
        if length < math.inf and (best is None or length < best[0]):
            best = (length, combo)
    return best


def _instance(seed, sets=3, pois=9):
    rng = random.Random(seed)
    forest = small_forest()
    net = integer_grid(4, 4, rng)
    leaf_ids = forest.leaves()
    attach_integer_pois(net, pois, leaf_ids, rng)
    vids = net.poi_vertices()
    rng.shuffle(vids)
    chunk = max(1, len(vids) // sets)
    candidate_sets = [
        set(vids[i * chunk:(i + 1) * chunk]) for i in range(sets)
    ]
    if any(not s for s in candidate_sets):
        return None
    start = rng.randrange(net.num_vertices)
    return net, start, candidate_sets


@settings(deadline=None, max_examples=40)
@given(seed=st.integers(0, 50_000))
def test_property_osr_solvers_agree(seed):
    built = _instance(seed)
    if built is None:
        return
    net, start, candidate_sets = built
    expected = _osr_brute(net, start, candidate_sets)
    dij = osr_dijkstra(net, start, candidate_sets)
    pne = osr_pne(net, start, candidate_sets)
    if expected is None:
        assert dij is None or len(set(dij[1])) != len(dij[1])
        assert pne is None
        return
    assert pne is not None and dij is not None
    assert pne[0] == expected[0]
    # Dij may pick a PoI twice only when candidate sets overlap AND the
    # repeat is optimal; on disjoint chunks lengths must agree.
    assert dij[0] == expected[0]


@settings(deadline=None, max_examples=25)
@given(seed=st.integers(0, 50_000))
def test_property_osr_with_destination(seed):
    built = _instance(seed, sets=2)
    if built is None:
        return
    net, start, candidate_sets = built
    rng = random.Random(seed + 1)
    dest = rng.randrange(net.num_vertices)
    expected = _osr_brute(net, start, candidate_sets, destination=dest)
    dij = osr_dijkstra(net, start, candidate_sets, destination=dest)
    pne = osr_pne(net, start, candidate_sets, destination=dest)
    if expected is None:
        assert pne is None
        return
    assert dij is not None and pne is not None
    assert dij[0] == expected[0]
    assert pne[0] == expected[0]


def test_osr_empty_candidate_set_returns_none():
    rng = random.Random(0)
    net = integer_grid(3, 3, rng)
    assert osr_dijkstra(net, 0, [set()]) is None
    assert osr_pne(net, 0, [set()]) is None


def test_osr_route_is_reconstructed_in_order():
    rng = random.Random(1)
    forest = small_forest()
    net = integer_grid(3, 3, rng, extra_edges=0)
    pois = attach_integer_pois(net, 4, forest.leaves(), rng)
    sets = [{pois[0], pois[1]}, {pois[2], pois[3]}]
    found = osr_dijkstra(net, 0, sets)
    assert found is not None
    length, route = found
    assert route[0] in sets[0] and route[1] in sets[1]
    d0 = dijkstra(net, 0)
    d1 = dijkstra(net, route[0])
    assert length == pytest.approx(d0[route[0]] + d1[route[1]])


def test_pne_skips_duplicate_poi_extensions():
    """A PoI in both candidate sets must not be visited twice."""
    rng = random.Random(2)
    net = integer_grid(3, 3, rng, extra_edges=0)
    shared = net.add_poi(1)
    other = net.add_poi(2)
    net.add_edge(0, shared, 1.0)
    net.add_edge(shared, other, 5.0)
    found = osr_pne(net, 0, [{shared, other}, {shared, other}])
    assert found is not None
    _, route = found
    assert len(set(route)) == 2
