"""The top-k sequenced route subsystem.

Three layers of evidence:

* :class:`SkybandSet` obeys the k-skyband law (membership = fewer than
  k dominators over the distinct score pairs) and collapses to the
  seed's :class:`SkylineSet` at ``k = 1``;
* the BSSR engine under ``BSSROptions(k=...)`` reproduces the
  brute-force top-k oracle on random small instances — including the
  acceptance property that ``k = 1`` output equals the plain skyline
  query and the ranked list always leads with the seed's shortest
  route;
* the user-facing surfaces (result accessor, service, CLI, experiment)
  expose the ranked alternatives coherently.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.topk import brute_force_skyband, brute_force_topk
from repro.cli import main as cli_main
from repro.core.dominance import (
    SkybandSet,
    SkylineSet,
    dominance_depths,
    dominates,
    rank_routes,
    skyband_filter,
)
from repro.core.engine import SkySREngine
from repro.core.options import BSSROptions
from repro.core.routes import SkylineRoute
from repro.errors import QueryError

from .conftest import pick_query, random_instance, score_set

# ---------------------------------------------------------------------------
# SkybandSet


def _random_routes(rng: random.Random, count: int) -> list[SkylineRoute]:
    """Score pairs drawn from a small lattice so ties and dominance
    chains actually occur."""
    return [
        SkylineRoute(
            pois=(i,),
            length=float(rng.randint(1, 12)),
            semantic=rng.randint(0, 6) / 6.0,
        )
        for i in range(count)
    ]


def _true_skyband_scores(
    routes: list[SkylineRoute], k: int
) -> set[tuple[float, float]]:
    """Definitional k-skyband over the distinct score pairs."""
    distinct = {r.scores() for r in routes}
    return {
        p
        for p in distinct
        if sum(1 for q in distinct if q != p and dominates(q, p)) < k
    }


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("k", [1, 2, 3, 5])
def test_skyband_membership_law(seed, k):
    rng = random.Random(seed)
    routes = _random_routes(rng, 40)
    band = SkybandSet(k)
    for route in routes:
        band.update(route)
    assert band.as_score_set() == _true_skyband_scores(routes, k)


@pytest.mark.parametrize("seed", range(8))
def test_skyband_k1_is_the_skyline_set(seed):
    rng = random.Random(seed)
    routes = _random_routes(rng, 40)
    skyline, band = SkylineSet(), SkybandSet(1)
    for route in routes:
        skyline.update(route)
        band.update(route)
    assert [r.scores() for r in band.routes()] == [
        r.scores() for r in skyline.routes()
    ]
    assert (band.updates, band.rejects) == (skyline.updates, skyline.rejects)


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("k", [1, 2, 4])
def test_skyband_order_independence(seed, k):
    rng = random.Random(seed)
    routes = _random_routes(rng, 30)
    shuffled = list(routes)
    rng.shuffle(shuffled)
    a = skyband_filter(routes, k)
    b = skyband_filter(shuffled, k)
    assert score_set(a) == score_set(b)


def test_skyband_threshold_is_kth_smallest_qualifying_length():
    band = SkybandSet(2)
    for i, (length, semantic) in enumerate(
        [(4.0, 0.5), (6.0, 0.25), (9.0, 0.0), (11.0, 0.0)]
    ):
        assert band.update(
            SkylineRoute(pois=(i,), length=length, semantic=semantic)
        )
    # members with s <= 0.5: lengths 4, 6, 9, 11 -> 2nd smallest is 6
    assert band.threshold(0.5) == 6.0
    # members with s <= 0.0: lengths 9, 11 -> 2nd smallest is 11
    assert band.threshold(0.0) == 11.0
    assert band.perfect_route_length() == 11.0
    # fewer than k qualifying members -> cannot prune yet
    assert band.threshold(-1.0) == float("inf")


def test_skyband_collapses_equivalent_scores():
    band = SkybandSet(3)
    assert band.update(SkylineRoute(pois=(1,), length=5.0, semantic=0.5))
    assert not band.update(SkylineRoute(pois=(2,), length=5.0, semantic=0.5))
    assert band.rejects == 1
    assert len(band) == 1


def test_skyband_eviction_at_k_dominators():
    band = SkybandSet(2)
    band.update(SkylineRoute(pois=(1,), length=9.0, semantic=0.9))
    band.update(SkylineRoute(pois=(2,), length=5.0, semantic=0.5))
    assert len(band) == 2  # one dominator (< k) keeps the 9.0 route
    band.update(SkylineRoute(pois=(3,), length=3.0, semantic=0.3))
    assert (9.0, 0.9) not in band.as_score_set()  # now two dominators
    assert len(band) == 2


def test_skyband_rejects_invalid_k():
    with pytest.raises(ValueError):
        SkybandSet(0)


# ---------------------------------------------------------------------------
# ranking


def test_rank_routes_orders_by_depth_then_length():
    routes = [
        SkylineRoute(pois=(1,), length=10.0, semantic=0.0),  # skyline
        SkylineRoute(pois=(2,), length=4.0, semantic=0.5),  # skyline, shortest
        SkylineRoute(pois=(3,), length=12.0, semantic=0.0),  # depth 1
        SkylineRoute(pois=(4,), length=5.0, semantic=0.6),  # depth 1
    ]
    assert dominance_depths(routes) == [0, 0, 1, 1]
    ranked = rank_routes(routes)
    assert [r.pois[0] for r in ranked] == [2, 1, 4, 3]
    assert [r.pois[0] for r in rank_routes(routes, 2)] == [2, 1]


# ---------------------------------------------------------------------------
# options


def test_options_carry_k():
    assert BSSROptions().k == 1
    assert BSSROptions().but(k=3).k == 3
    assert BSSROptions.without_optimizations().but(k=4).k == 4


def test_options_reject_bad_k():
    with pytest.raises(QueryError):
        BSSROptions(k=0)
    with pytest.raises(QueryError):
        BSSROptions().but(k=-2)


# ---------------------------------------------------------------------------
# engine vs oracle (the acceptance properties)


def _engine_and_query(seed, size=3):
    network, forest, rng = random_instance(seed)
    picked = pick_query(network, forest, rng, size)
    if picked is None:
        pytest.skip("instance admits no query of this size")
    start, cats = picked
    return SkySREngine(network, forest), network, start, cats


@pytest.mark.parametrize("seed", range(12))
def test_k1_topk_is_the_seed_shortest_route(seed):
    """Satellite property: k=1 top-k output == the plain BSSR shortest."""
    engine, _network, start, cats = _engine_and_query(seed)
    base = engine.query(start, cats)
    topk = engine.query(start, cats, options=BSSROptions().but(k=1))
    assert score_set(topk.routes) == score_set(base.routes)
    ranked = topk.topk()
    if base.shortest is None:
        assert ranked == []
    else:
        assert len(ranked) == 1
        assert ranked[0].scores() == base.shortest.scores()


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("k", [2, 3])
def test_topk_matches_brute_force_oracle(seed, k):
    """Acceptance: ranked output and skyband equal the exhaustive oracle."""
    engine, network, start, cats = _engine_and_query(seed)
    result = engine.query(start, cats, options=BSSROptions().but(k=k))
    compiled = engine.compile(start, cats)
    oracle_ranked = brute_force_topk(network, compiled, k)
    assert [
        (r.length, round(r.semantic, 9)) for r in result.topk()
    ] == [(r.length, round(r.semantic, 9)) for r in oracle_ranked]
    oracle_band = brute_force_skyband(network, compiled, k)
    assert score_set(result.skyband) == score_set(oracle_band)


@pytest.mark.parametrize("seed", range(12))
def test_topk_first_entry_equals_seed_shortest(seed):
    """Acceptance: k=3 returns <= 3 ranked routes led by the seed answer."""
    engine, _network, start, cats = _engine_and_query(seed)
    base = engine.query(start, cats)
    result = engine.query(start, cats, options=BSSROptions().but(k=3))
    assert result.k == 3
    assert len(result.routes) <= 3
    if base.shortest is not None:
        assert result.routes[0].scores() == base.shortest.scores()
    # the skyband always contains the whole skyline
    assert score_set(base.routes) <= score_set(result.skyband)


@pytest.mark.parametrize("seed", range(12))
def test_topk_truncation_never_hides_the_perfect_route(seed):
    """``result.perfect`` scans the skyband: the k cut may rank the
    semantic-0 route out of ``routes``, but never out of existence."""
    engine, _network, start, cats = _engine_and_query(seed)
    base = engine.query(start, cats)
    result = engine.query(start, cats, options=BSSROptions().but(k=2))
    if base.perfect is None:
        assert result.perfect is None
    else:
        assert result.perfect is not None
        assert result.perfect.scores() == base.perfect.scores()


@pytest.mark.parametrize("seed", [1, 5, 9])
def test_topk_noopt_and_brute_force_agree_with_bssr(seed):
    engine, _network, start, cats = _engine_and_query(seed)
    opts = BSSROptions().but(k=3)
    ranked = [
        r.scores()
        for r in engine.query(start, cats, options=opts).topk()
    ]
    for algorithm in ("bssr-noopt", "brute-force"):
        other = engine.query(start, cats, algorithm=algorithm, options=opts)
        assert [r.scores() for r in other.topk()] == ranked


@pytest.mark.parametrize("seed", [2, 7])
def test_topk_with_destination_matches_oracle(seed):
    network, forest, rng = random_instance(seed)
    picked = pick_query(network, forest, rng, 2)
    if picked is None:
        pytest.skip("instance admits no query of this size")
    start, cats = picked
    destination = rng.randrange(network.num_vertices)
    engine = SkySREngine(network, forest)
    result = engine.query(
        start, cats, destination=destination, options=BSSROptions().but(k=3)
    )
    compiled = engine.compile(start, cats, destination=destination)
    oracle = brute_force_topk(network, compiled, 3)
    assert [
        (r.length, round(r.semantic, 9)) for r in result.topk()
    ] == [(r.length, round(r.semantic, 9)) for r in oracle]


def test_topk_rejected_for_naive_and_unordered():
    engine, _network, start, cats = _engine_and_query(3)
    opts = BSSROptions().but(k=2)
    for algorithm in ("dij", "pne"):
        with pytest.raises(QueryError):
            engine.query(start, cats, algorithm=algorithm, options=opts)
    with pytest.raises(QueryError):
        engine.query(start, cats, ordered=False, options=opts)


def test_topk_accessor_and_ranked_table(figure1):
    engine = SkySREngine(figure1.network, figure1.forest)
    start = figure1.landmarks["vq"]
    cats = ["Asian Restaurant", "Arts & Entertainment", "Gift Shop"]
    result = engine.query(start, cats, options=BSSROptions().but(k=3))
    ranked = result.topk()
    assert 1 <= len(ranked) <= 3
    assert ranked[0].scores() == result.routes[0].scores()
    # ask for fewer / more than the query's k
    assert len(result.topk(1)) == 1
    assert len(result.topk(100)) == len(result.skyband)
    table = result.to_ranked_table()
    assert table.splitlines()[1].lstrip().startswith("1")
    assert result.stats.extra.get("k") == 3


# ---------------------------------------------------------------------------
# surfaces: service, CLI, experiment


def _service(seed=9):
    from repro.datasets import tokyo_like
    from repro.experiments.scenarios import ensure_category_pois
    from repro.service import SkySRService

    data = tokyo_like(scale=0.2, seed=seed)
    ensure_category_pois(data, ["Beer Garden", "Sake Bar"], per_category=3)
    return SkySRService(data), data


def test_service_plan_topk_cards():
    service, data = _service()
    from repro.experiments.scenarios import scenario_start

    start = scenario_start(data, seed=5)
    response = service.plan(["Beer Garden", "Sake Bar"], start=start, k=3)
    assert 1 <= len(response.cards) <= 3
    assert [card.rank for card in response.cards] == list(
        range(1, len(response.cards) + 1)
    )
    assert response.result.k == 3


def test_service_batch_geojson_ranks():
    service, data = _service()
    from repro.experiments.scenarios import scenario_start

    start = scenario_start(data, seed=5)
    payload = service.batch_geojson(
        [
            {"categories": ["Beer Garden", "Sake Bar"], "start": start},
            {"categories": ["Sake Bar"], "start": start, "k": 2},
        ],
        k=3,
    )
    assert payload["type"] == "SkySRBatch"
    assert len(payload["responses"]) == 2
    first, second = payload["responses"]
    assert first["k"] == 3 and second["k"] == 2
    for entry in payload["responses"]:
        features = entry["routes"]["features"]
        assert 1 <= len(features) <= entry["k"]
        assert [f["properties"]["rank"] for f in features] == list(
            range(1, len(features) + 1)
        )


def test_cli_query_topk(capsys):
    code = cli_main(
        [
            "query",
            "--preset",
            "mini",
            "--topk",
            "3",
            "--categories",
            "Asian Restaurant",
            "Gift Shop",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "top-3" in out
    assert "rank" in out


def test_topk_experiment_report():
    from repro.experiments import topk as topk_experiment
    from repro.experiments.harness import ExperimentConfig

    config = ExperimentConfig(
        scale=0.08, queries_per_cell=1, time_budget=10.0
    )
    report = topk_experiment.run(config, datasets=("tokyo",))
    assert report.experiment == "topk"
    assert report.data["k_values"] == [1, 3, 5]
    (row,) = report.data["rows"]
    assert row[0] == "tokyo-like"
    assert row[2] is not None  # k=1 finished
