"""Unit tests for the PoI index (P_c closure and P_t tree sets)."""

import random

from repro.graph.poi import PoIIndex
from repro.graph.road_network import RoadNetwork

from .conftest import small_forest


def _instance():
    forest = small_forest()
    net = RoadNetwork()
    road = [net.add_vertex() for _ in range(4)]
    ramen = net.add_poi(forest.resolve("Ramen"))
    sushi = net.add_poi(forest.resolve("Sushi"))
    italian = net.add_poi(forest.resolve("Italian"))
    gift = net.add_poi(forest.resolve("Gift"))
    multi = net.add_poi((forest.resolve("Bakery"), forest.resolve("Gift")))
    for i, p in enumerate((ramen, sushi, italian, gift, multi)):
        net.add_edge(road[i % 4], p, 1.0)
    return forest, net, dict(
        ramen=ramen, sushi=sushi, italian=italian, gift=gift, multi=multi
    )


def test_exact_and_tree_buckets():
    forest, net, pois = _instance()
    index = PoIIndex(net, forest)
    assert index.pois_with_exact_category("Ramen") == [pois["ramen"]]
    assert set(index.pois_in_tree("Food")) == {
        pois["ramen"], pois["sushi"], pois["italian"], pois["multi"]
    }
    assert set(index.pois_in_tree("Shop")) == {pois["gift"], pois["multi"]}
    assert index.pois_in_tree("Fun") == []
    # querying by any category of the tree gives the same bucket
    assert index.pois_in_tree("Sushi") == index.pois_in_tree("Food")


def test_closure_sets():
    forest, net, pois = _instance()
    index = PoIIndex(net, forest)
    # P_Asian = PoIs whose category is in Asian's subtree
    assert set(index.pois_in_closure("Asian")) == {pois["ramen"], pois["sushi"]}
    assert set(index.pois_in_closure("Food")) == {
        pois["ramen"], pois["sushi"], pois["italian"], pois["multi"]
    }
    assert index.pois_in_closure("Ramen") == [pois["ramen"]]
    assert index.pois_in_closure("Clothes") == []


def test_membership_tests_multi_category():
    forest, net, pois = _instance()
    index = PoIIndex(net, forest)
    multi = pois["multi"]
    assert index.matches_tree("Food", multi)
    assert index.matches_tree("Shop", multi)
    assert not index.matches_tree("Fun", multi)
    assert index.matches_closure("Bakery", multi)
    assert index.matches_closure("Gift", multi)
    assert not index.matches_closure("Asian", multi)


def test_counts_and_populated_leaves():
    forest, net, pois = _instance()
    index = PoIIndex(net, forest)
    counts = index.category_counts()
    assert counts[forest.resolve("Gift")] == 2  # gift + multi
    assert counts[forest.resolve("Ramen")] == 1
    populated = index.populated_leaves(min_count=1)
    assert forest.resolve("Gift") in populated
    assert forest.resolve("Jazz") not in populated
    assert index.populated_leaves(min_count=2) == [forest.resolve("Gift")]
    assert set(index.trees_present()) == {
        forest.tree_id(forest.resolve("Food")),
        forest.tree_id(forest.resolve("Gift")),
    }


def test_index_is_snapshot():
    forest, net, _ = _instance()
    index = PoIIndex(net, forest)
    before = len(index.pois_in_tree("Food"))
    extra = net.add_poi(forest.resolve("Ramen"))
    net.add_edge(0, extra, 1.0)
    assert len(index.pois_in_tree("Food")) == before  # stale by design
    fresh = PoIIndex(net, forest)
    assert len(fresh.pois_in_tree("Food")) == before + 1


def test_random_instance_consistency(rng: random.Random):
    from .conftest import random_instance

    net, forest, _ = random_instance(7, num_pois=15)
    index = PoIIndex(net, forest)
    for vid in net.poi_vertices():
        cats = net.poi_categories(vid)
        for cid in cats:
            assert vid in index.pois_with_exact_category(cid)
            assert vid in index.pois_in_tree(cid)
            for anc in forest.ancestors(cid):
                assert index.matches_closure(anc, vid)
