"""Direct property tests of the paper's lemmas.

The BSSR parity suite already checks end-to-end exactness; these tests
pin the individual mathematical claims the pruning rules rest on, so a
regression points at the broken lemma rather than at "skylines differ".
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute_force import enumerate_sequenced_routes
from repro.core.dominance import SkylineSet, dominates
from repro.core.routes import SkylineRoute
from repro.core.spec import compile_query
from repro.graph.dijkstra import dijkstra
from repro.graph.poi import PoIIndex
from repro.semantics.scoring import ProductAggregator
from repro.semantics.similarity import HierarchyWuPalmer

from .conftest import pick_query, random_instance


@settings(deadline=None, max_examples=25)
@given(seed=st.integers(0, 10_000))
def test_lemma_5_2_super_route_scores_monotone(seed):
    """Extending a route never decreases either score."""
    network, forest, rng = random_instance(seed, num_pois=10)
    query = pick_query(network, forest, rng, 3, distinct_trees=False)
    if query is None:
        return
    start, cats = query
    index = PoIIndex(network, forest)
    compiled = compile_query(start, cats, index, HierarchyWuPalmer())
    agg = ProductAggregator()
    dist_from_start = dijkstra(network, start)
    for _ in range(20):
        # grow a random route position by position, checking prefixes
        length, state = 0.0, agg.initial(3)
        previous_l, previous_s, last = 0.0, 0.0, None
        for position in range(3):
            spec = compiled.specs[position]
            candidates = list(spec.sim_map)
            if not candidates:
                break
            vid = candidates[rng.randrange(len(candidates))]
            source = dist_from_start if last is None else dijkstra(network, last)
            d = source.get(vid, math.inf)
            if d == math.inf:
                break
            length += d
            state = agg.extend(state, spec.sim_map[vid])
            assert length >= previous_l - 1e-12
            assert agg.score(state) >= previous_s - 1e-12
            previous_l, previous_s, last = length, agg.score(state), vid


@settings(deadline=None, max_examples=60)
@given(
    scores=st.lists(
        st.tuples(
            st.integers(0, 30).map(float),
            st.integers(0, 10).map(lambda x: x / 10),
        ),
        min_size=1,
        max_size=20,
    ),
    probes=st.lists(st.integers(0, 10).map(lambda x: x / 10), min_size=2, max_size=5),
)
def test_definition_5_4_threshold_monotone_nonincreasing(scores, probes):
    """l̄ is nonincreasing in the semantic probe — the property both the
    break condition of Algorithm 2 and Lemma 5.8 rely on."""
    sky = SkylineSet()
    for i, (length, semantic) in enumerate(scores):
        sky.update(SkylineRoute(pois=(i,), length=length, semantic=semantic))
    ordered = sorted(probes)
    thresholds = [sky.threshold(p) for p in ordered]
    assert all(a >= b for a, b in zip(thresholds, thresholds[1:]))


@settings(deadline=None, max_examples=80)
@given(
    a=st.tuples(st.integers(0, 9), st.integers(0, 9)),
    b=st.tuples(st.integers(0, 9), st.integers(0, 9)),
    c=st.tuples(st.integers(0, 9), st.integers(0, 9)),
)
def test_dominance_is_a_strict_partial_order(a, b, c):
    fa, fb, fc = (
        (float(x), float(y)) for x, y in (a, b, c)
    )
    assert not dominates(fa, fa)  # irreflexive
    if dominates(fa, fb):
        assert not dominates(fb, fa)  # asymmetric
    if dominates(fa, fb) and dominates(fb, fc):
        assert dominates(fa, fc)  # transitive


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(0, 10_000))
def test_lemma_5_1_skyline_updates_never_resurrect(seed):
    """Routes dominated by the evolving set S never re-enter later."""
    rng = random.Random(seed)
    sky = SkylineSet()
    rejected: list[tuple[float, float]] = []
    for i in range(60):
        length = float(rng.randint(0, 40))
        semantic = rng.randint(0, 10) / 10
        route = SkylineRoute(pois=(i,), length=length, semantic=semantic)
        before = sky.dominated_or_equal(length, semantic)
        accepted = sky.update(route)
        if before:
            assert not accepted
            rejected.append((length, semantic))
        # every previously rejected score stays dominated-or-equal
        for length_r, semantic_r in rejected:
            assert sky.dominated_or_equal(length_r, semantic_r)


def test_lemma_5_5_suppressed_routes_are_dominated():
    """Whenever the modified Dijkstra suppresses a candidate, some other
    sequenced route dominates (or ties) every completion through it —
    checked against full enumeration on small instances."""
    from repro.core.bssr import run_bssr

    for seed in range(8):
        network, forest, rng = random_instance(seed, num_pois=9)
        query = pick_query(network, forest, rng, 2)
        if query is None:
            continue
        start, cats = query
        index = PoIIndex(network, forest)
        compiled = compile_query(start, cats, index, HierarchyWuPalmer())
        every = enumerate_sequenced_routes(network, compiled)
        skyline, _ = run_bssr(network, compiled)
        skyline_scores = [(r.length, r.semantic) for r in skyline]
        for route in every:
            assert any(
                dominates(s, route.scores()) or s == route.scores()
                for s in skyline_scores
            )
