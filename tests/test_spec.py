"""Query compilation: PositionSpec construction and validation."""

import pytest

from repro.core.spec import (
    CategoryRequirement,
    as_requirement,
    compile_query,
)
from repro.errors import QueryError
from repro.graph.poi import PoIIndex
from repro.graph.road_network import RoadNetwork
from repro.semantics.similarity import HierarchyWuPalmer

from .conftest import small_forest


@pytest.fixture()
def instance():
    forest = small_forest()
    net = RoadNetwork()
    road = [net.add_vertex() for _ in range(3)]
    ramen = net.add_poi(forest.resolve("Ramen"))
    italian = net.add_poi(forest.resolve("Italian"))
    gift = net.add_poi(forest.resolve("Gift"))
    hobby = net.add_poi(forest.resolve("Hobby"))
    for i, p in enumerate((ramen, italian, gift, hobby)):
        net.add_edge(road[i % 3], p, 1.0)
    index = PoIIndex(net, forest)
    return forest, net, index, dict(
        ramen=ramen, italian=italian, gift=gift, hobby=hobby
    )


def test_category_requirement_compiles_sims(instance):
    forest, net, index, pois = instance
    req = CategoryRequirement(forest.resolve("Ramen"))
    spec = req.compile(index, HierarchyWuPalmer(), 0)
    assert spec.label == "Ramen"
    assert spec.similarity(pois["ramen"]) == 1.0
    # Italian vs Ramen: lca Food (d=1), query d=3 → 2/4
    assert spec.similarity(pois["italian"]) == pytest.approx(0.5)
    assert spec.similarity(pois["gift"]) is None
    assert spec.perfect == {pois["ramen"]}
    assert spec.is_perfect(pois["ramen"])
    assert not spec.is_perfect(pois["italian"])
    assert spec.num_candidates == 2
    assert spec.best_nonperfect == pytest.approx(0.5)
    assert set(spec.candidates()) == {pois["ramen"], pois["italian"]}


def test_root_query_all_perfect(instance):
    forest, net, index, pois = instance
    spec = CategoryRequirement(forest.resolve("Shop")).compile(
        index, HierarchyWuPalmer(), 1
    )
    assert spec.perfect == {pois["gift"], pois["hobby"]}
    assert spec.best_nonperfect is None


def test_as_requirement_coercions(instance):
    forest, _, _, _ = instance
    req = as_requirement("Gift", forest)
    assert isinstance(req, CategoryRequirement)
    assert req.category == forest.resolve("Gift")
    same = as_requirement(forest.resolve("Gift"), forest)
    assert same.category == req.category
    assert as_requirement(req, forest) is req
    with pytest.raises(QueryError):
        as_requirement(3.14, forest)


def test_compile_query_basics(instance):
    forest, net, index, _ = instance
    compiled = compile_query(
        0, ["Ramen", "Gift"], index, HierarchyWuPalmer()
    )
    assert compiled.size == 2
    assert compiled.labels() == ["Ramen", "Gift"]
    assert compiled.disjoint_trees
    assert compiled.destination is None


def test_compile_query_detects_shared_trees(instance):
    forest, net, index, _ = instance
    compiled = compile_query(
        0, ["Ramen", "Italian"], index, HierarchyWuPalmer()
    )
    assert not compiled.disjoint_trees


def test_compile_query_validation(instance):
    forest, net, index, _ = instance
    with pytest.raises(QueryError):
        compile_query(0, [], index, HierarchyWuPalmer())
    with pytest.raises(QueryError):
        compile_query(999, ["Ramen"], index, HierarchyWuPalmer())
    with pytest.raises(QueryError):
        compile_query(
            0, ["Ramen"], index, HierarchyWuPalmer(), destination=999
        )


def test_empty_position_compiles_to_empty_spec(instance):
    forest, net, index, _ = instance
    compiled = compile_query(0, ["Jazz"], index, HierarchyWuPalmer())
    assert compiled.specs[0].num_candidates == 0


def test_multi_category_poi_takes_best_similarity():
    forest = small_forest()
    net = RoadNetwork()
    a = net.add_vertex()
    both = net.add_poi((forest.resolve("Italian"), forest.resolve("Sushi")))
    net.add_edge(a, both, 1.0)
    index = PoIIndex(net, forest)
    spec = CategoryRequirement(forest.resolve("Sushi")).compile(
        index, HierarchyWuPalmer(), 0
    )
    assert spec.similarity(both) == 1.0  # the Sushi association wins
