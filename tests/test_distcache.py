"""Cross-query distance cache: budgets, binding, and exact reuse."""

from __future__ import annotations

import pytest

from repro.core.distcache import DistanceCache
from repro.core.engine import SkySREngine
from repro.core.search import PoICandidateSearch
from repro.core.spec import PositionSpec
from repro.datasets.presets import mini_city
from repro.errors import QueryError
from repro.service.prototype import SkySRService

from .conftest import pick_query, random_instance, score_set


def _searches(seed=31, size=3):
    """A compiled instance plus fresh searches for each position."""
    network, forest, rng = random_instance(seed)
    picked = pick_query(network, forest, rng, size)
    assert picked is not None
    start, cats = picked
    engine = SkySREngine(network, forest)
    compiled = engine.compile(start, cats)
    return network, start, compiled


def test_lookup_miss_admit_hit_cycle():
    network, start, compiled = _searches()
    cache = DistanceCache()
    spec = compiled.specs[0]
    assert cache.lookup(network, start, spec) is None
    search = PoICandidateSearch(network, spec, start)
    assert cache.admit(network, start, spec, search)
    assert cache.lookup(network, start, spec) is search
    assert cache.stats.misses == 1
    assert cache.stats.hits == 1
    assert cache.stats.admissions == 1
    assert len(cache) == 1


def test_unshareable_spec_is_never_cached():
    network, start, compiled = _searches()
    cache = DistanceCache()
    anon = PositionSpec(
        index=0,
        label="predicate",
        sim_map=dict(compiled.specs[0].sim_map),
        perfect=compiled.specs[0].perfect,
        tree_ids=compiled.specs[0].tree_ids,
        share_key=None,
    )
    search = PoICandidateSearch(network, anon, start)
    assert not cache.admit(network, start, anon, search)
    assert cache.lookup(network, start, anon) is None
    assert cache.stats.unshareable == 1
    assert len(cache) == 0


def test_lru_eviction_respects_recency():
    network, start, compiled = _searches()
    cache = DistanceCache(max_entries=2)
    specs = compiled.specs
    assert len(specs) >= 3
    for spec in specs[:2]:
        cache.admit(
            network, start, spec, PoICandidateSearch(network, spec, start)
        )
    # touch the first entry so the second becomes the LRU victim
    assert cache.lookup(network, start, specs[0]) is not None
    cache.admit(
        network, start, specs[2],
        PoICandidateSearch(network, specs[2], start),
    )
    assert len(cache) == 2
    assert cache.stats.evictions == 1
    assert cache.lookup(network, start, specs[0]) is not None
    assert cache.lookup(network, start, specs[1]) is None  # evicted
    assert cache.lookup(network, start, specs[2]) is not None


def test_byte_budget_rejects_never_fitting_search():
    network, start, compiled = _searches()
    cache = DistanceCache(max_bytes=1)
    spec = compiled.specs[0]
    search = PoICandidateSearch(network, spec, start)
    assert not cache.admit(network, start, spec, search)
    assert len(cache) == 0
    assert cache.total_bytes == 0


def test_cache_binds_to_one_network():
    network, start, compiled = _searches(seed=41)
    other_network = _searches(seed=42)[0]
    cache = DistanceCache()
    cache.lookup(network, start, compiled.specs[0])
    with pytest.raises(QueryError):
        cache.lookup(other_network, 0, compiled.specs[0])


def test_invalid_budgets_rejected():
    with pytest.raises(QueryError):
        DistanceCache(max_entries=0)
    with pytest.raises(QueryError):
        DistanceCache(max_bytes=0)


def test_clear_resets_entries_but_keeps_stats():
    network, start, compiled = _searches()
    cache = DistanceCache()
    spec = compiled.specs[0]
    cache.admit(network, start, spec, PoICandidateSearch(network, spec, start))
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.admissions == 1


def test_warm_engine_hits_cache_and_answers_identically():
    network, forest, rng = random_instance(51)
    picked = pick_query(network, forest, rng, 3)
    assert picked is not None
    start, cats = picked
    cold = SkySREngine(network, forest)
    expected = cold.query(start, cats)

    cache = DistanceCache(max_entries=64)
    warm = SkySREngine(network, forest, distance_cache=cache)
    first = warm.query(start, cats)
    second = warm.query(start, cats)
    assert score_set(first.routes) == score_set(expected.routes)
    assert score_set(second.routes) == score_set(expected.routes)
    if cache.stats.admissions:  # pops were needed → the second run reuses
        assert cache.stats.hits > 0


def test_service_wires_a_default_cache():
    service = SkySRService(mini_city())
    cache = service.engine.distance_cache
    assert isinstance(cache, DistanceCache)
    assert cache.max_entries == SkySRService.DEFAULT_CACHE_ENTRIES
    assert cache.max_bytes == SkySRService.DEFAULT_CACHE_BYTES

    custom = DistanceCache(max_entries=3)
    tuned = SkySRService(mini_city(), distance_cache=custom)
    assert tuned.engine.distance_cache is custom
