"""Smoke tests for the ``examples/`` scripts.

Each example is loaded with :mod:`runpy` (so its ``__main__`` guard
stays closed) and its ``main()`` is executed in-process on the bundled
presets.  This keeps the scripts honest: an API change that breaks an
example breaks the suite, instead of rotting silently.
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLE_SCRIPTS = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_are_discovered():
    # guard against the glob silently matching nothing after a move
    assert "quickstart.py" in EXAMPLE_SCRIPTS


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_runs(script, capsys):
    namespace = runpy.run_path(
        str(EXAMPLES_DIR / script), run_name="examples_smoke"
    )
    main = namespace.get("main")
    assert callable(main), f"{script} must define a main() entry point"
    main()
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"
