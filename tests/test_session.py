"""Resumable planning sessions: the pagination property/oracle layer.

Four pillars of evidence:

* **pagination exactness** — paginating twice with ``page_size = k``
  yields exactly the ranked routes of a single ``k = 2k`` run, and the
  concatenation of pages 1..p equals the one-shot top-(p·k), all
  cross-checked against the brute-force top-k oracle on small
  synthetic cities (score-for-score: equal-score routes are
  interchangeable representatives under Definition 4.1);
* **resume efficiency** — a resumed page does strictly less search
  work (queue pops) than recomputing the widened query from scratch;
* **state-machine behaviour** — exhaustion detection, variable page
  sizes, no duplicates, guard rails;
* **engine/result plumbing** — the session factory and page results.
"""

from __future__ import annotations

import pytest

from repro.baselines.topk import brute_force_topk
from repro.core.bssr import BSSRSearch
from repro.core.engine import SkySREngine
from repro.core.options import BSSROptions
from repro.errors import AlgorithmError, QueryError

from .conftest import pick_query, random_instance, score_set


def scores(routes) -> list[tuple[float, float]]:
    return [(r.length, round(r.semantic, 9)) for r in routes]


def _engine_and_query(seed, size=3):
    network, forest, rng = random_instance(seed)
    picked = pick_query(network, forest, rng, size)
    if picked is None:
        pytest.skip("instance admits no query of this size")
    start, cats = picked
    return SkySREngine(network, forest), network, start, cats


# ---------------------------------------------------------------------------
# pagination exactness (the acceptance property)


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("k", [2, 3])
def test_two_pages_equal_one_shot_double_k(seed, k):
    """Satellite property: two pages of size k == a single 2k run."""
    engine, _network, start, cats = _engine_and_query(seed)
    session = engine.session(start, cats, page_size=k)
    page1 = session.next_page()
    page2 = session.next_page()
    oneshot = engine.query(start, cats, options=BSSROptions().but(k=2 * k))
    assert scores(page1.routes) + scores(page2.routes) == scores(
        oneshot.topk(2 * k)
    )


@pytest.mark.parametrize("seed", range(12))
def test_concatenated_pages_match_brute_force_oracle(seed):
    """Pages 1..p == oracle top-(p*k) for every prefix p."""
    engine, network, start, cats = _engine_and_query(seed)
    page_size = 2
    session = engine.session(start, cats, page_size=page_size)
    compiled = engine.compile(start, cats)
    served: list = []
    for p in range(1, 4):
        page = session.next_page()
        served.extend(page.routes)
        oracle = brute_force_topk(network, compiled, p * page_size)
        assert scores(served) == scores(oracle), f"prefix p={p}"
        if page.exhausted:
            break


@pytest.mark.parametrize("seed", range(8))
def test_resumed_skyband_equals_fresh_skyband(seed):
    """The widened checkpoint is the exact k'-skyband, not an
    approximation: same score set as a from-scratch run."""
    engine, _network, start, cats = _engine_and_query(seed)
    compiled = engine.compile(start, cats)
    search = BSSRSearch(
        engine.network, compiled, engine.aggregator, BSSROptions().but(k=2)
    )
    search.run()
    resumed, _ = search.resume(5)
    fresh = BSSRSearch(
        engine.network, compiled, engine.aggregator, BSSROptions().but(k=5)
    )
    fresh_band, _ = fresh.run()
    assert score_set(resumed) == score_set(fresh_band)


@pytest.mark.parametrize("seed", [2, 7])
def test_session_with_destination_matches_oracle(seed):
    network, forest, rng = random_instance(seed)
    picked = pick_query(network, forest, rng, 2)
    if picked is None:
        pytest.skip("instance admits no query of this size")
    start, cats = picked
    destination = rng.randrange(network.num_vertices)
    engine = SkySREngine(network, forest)
    session = engine.session(start, cats, destination=destination, page_size=2)
    served = list(session.next_page()) + list(session.next_page())
    compiled = engine.compile(start, cats, destination=destination)
    assert scores(served) == scores(brute_force_topk(network, compiled, 4))


# ---------------------------------------------------------------------------
# resume efficiency (the benchmark acceptance, pinned as a property)


@pytest.mark.parametrize("seed", range(10))
def test_resume_does_strictly_less_work_than_recompute(seed):
    engine, _network, start, cats = _engine_and_query(seed)
    session = engine.session(start, cats, page_size=2)
    session.next_page()
    page2 = session.next_page()
    if page2.stats.extra.get("exhausted"):
        pytest.skip("alternatives exhausted before page 2")
    fresh = engine.query(start, cats, options=BSSROptions().but(k=session.k))
    assert page2.stats.routes_expanded < fresh.stats.routes_expanded


def test_page_within_checkpoint_does_no_search():
    engine, _network, start, cats = _engine_and_query(0)
    session = engine.session(start, cats, page_size=4)
    session.next_page(2)  # runs the k=4 search, serves ranks 1..2
    page2 = session.next_page(2)  # ranks 3..4 are already settled
    assert page2.stats.extra.get("served_from_checkpoint")
    assert page2.stats.routes_expanded == 0


# ---------------------------------------------------------------------------
# state-machine behaviour


@pytest.mark.parametrize("seed", range(6))
def test_pages_never_repeat_routes(seed):
    engine, _network, start, cats = _engine_and_query(seed)
    session = engine.session(start, cats, page_size=2)
    seen = []
    for _ in range(10):
        page = session.next_page()
        seen.extend(scores(page.routes))
        if page.exhausted:
            break
    assert len(seen) == len(set(seen))


def test_exhausted_session_serves_empty_pages():
    engine, _network, start, cats = _engine_and_query(1, size=2)
    session = engine.session(start, cats, page_size=50)
    first = session.next_page()
    assert first.exhausted  # k=50 clears the whole route space
    again = session.next_page()
    assert len(again) == 0
    assert again.stats.extra.get("exhausted")
    assert again.stats.routes_expanded == 0


def test_variable_page_sizes_cover_contiguous_ranks():
    engine, _network, start, cats = _engine_and_query(0)
    session = engine.session(start, cats, page_size=2)
    a = session.next_page(1)
    b = session.next_page(3)
    assert list(a.ranks) == [1]
    assert list(b.ranks) == [2, 3, 4][: len(b)]
    oneshot = engine.query(start, cats, options=BSSROptions().but(k=4))
    assert scores(session.served) == scores(oneshot.topk(4))


def test_session_guard_rails():
    engine, _network, start, cats = _engine_and_query(0)
    with pytest.raises(QueryError):
        engine.session(start, cats, page_size=0)
    with pytest.raises(QueryError):
        engine.session(start, cats, diversity_lambda=1.5)
    session = engine.session(start, cats, page_size=2)
    with pytest.raises(QueryError):
        session.next_page(0)


def test_search_state_guard_rails():
    engine, _network, start, cats = _engine_and_query(0)
    compiled = engine.compile(start, cats)
    search = BSSRSearch(engine.network, compiled, engine.aggregator)
    with pytest.raises(AlgorithmError):
        search.resume(3)  # resume before run
    search.run()
    with pytest.raises(AlgorithmError):
        search.run()  # run twice
    search2 = BSSRSearch(
        engine.network, compiled, engine.aggregator, BSSROptions().but(k=4)
    )
    search2.run()
    with pytest.raises(QueryError):
        search2.resume(2)  # narrowing a checkpoint


# ---------------------------------------------------------------------------
# plumbing


def test_session_page_results_and_stats(figure1):
    engine = SkySREngine(figure1.network, figure1.forest)
    start = figure1.landmarks["vq"]
    cats = ["Asian Restaurant", "Arts & Entertainment", "Gift Shop"]
    session = engine.session(start, cats, page_size=2)
    page = session.next_page()
    assert page.number == 1 and page.first_rank == 1 and not page.resumed
    result = session.to_result(page)
    assert result.algorithm == "bssr-session"
    assert [r.pois for r in result.routes] == [r.pois for r in page.routes]
    table = result.to_page_table(first_rank=page.first_rank)
    assert table.splitlines()[1].lstrip().startswith("1")
    page2 = session.next_page()
    assert page2.resumed and page2.first_rank == len(page.routes) + 1
    total = session.total_stats()
    assert total.routes_expanded == sum(
        p.stats.routes_expanded for p in session.pages
    )


def test_options_carry_page_size_and_lambda():
    opts = BSSROptions().but(page_size=4, diversity_lambda=0.3)
    assert opts.page_size == 4 and opts.diversity_lambda == 0.3
    with pytest.raises(QueryError):
        BSSROptions(page_size=0)
    with pytest.raises(QueryError):
        BSSROptions(diversity_lambda=-0.1)
    with pytest.raises(QueryError):
        BSSROptions(diversity_lambda=1.1)
    engine, _network, start, cats = _engine_and_query(0)
    # options-level page_size feeds the session default
    session = engine.session(start, cats, options=BSSROptions().but(page_size=3))
    assert session.page_size == 3


def test_deferred_routes_are_counted():
    """The checkpoint machinery parks pruned work instead of dropping
    it, and says so in the stats."""
    engine, _network, start, cats = _engine_and_query(0)
    compiled = engine.compile(start, cats)
    search = BSSRSearch(engine.network, compiled, engine.aggregator)
    search.run()
    assert search.stats.routes_deferred == len(search.state.deferred)


def test_one_shot_queries_skip_the_checkpoint_machinery():
    """run_bssr (every plain engine.query) must not pay the resume
    memory cost: no archive, no deferred retention, and no resume."""
    engine, _network, start, cats = _engine_and_query(0)
    compiled = engine.compile(start, cats)
    search = BSSRSearch(
        engine.network,
        compiled,
        engine.aggregator,
        BSSROptions().but(k=3),
        checkpointable=False,
    )
    routes, stats = search.run()
    assert routes  # same answer as ever...
    assert search.state.deferred == []  # ...without parked work
    assert search.state.archive == {}  # ...or an archive
    assert stats.routes_deferred == 0
    with pytest.raises(AlgorithmError):
        search.resume(6)
    # and it is score-identical to a checkpointable run
    full = BSSRSearch(
        engine.network, compiled, engine.aggregator, BSSROptions().but(k=3)
    )
    full_routes, _ = full.run()
    assert [r.scores() for r in routes] == [r.scores() for r in full_routes]
