"""Scenario helpers + GeoJSON/rendering edge cases."""

import pytest

from repro.datasets.presets import nyc_like
from repro.experiments.scenarios import (
    ensure_category_pois,
    scenario_engine,
    scenario_start,
)
from repro.service.geojson import route_feature, routes_to_geojson
from repro.service.rendering import render_network


@pytest.fixture(scope="module")
def city():
    return nyc_like(0.06, seed=123)


def test_ensure_category_pois_tops_up(city):
    names = ["Cupcake Shop", "Jazz Club"]
    ensure_category_pois(city, names, per_category=2, seed=1)
    counts = city.index.category_counts()
    for name in names:
        assert counts.get(city.forest.resolve(name), 0) >= 2
    # idempotent: a second call adds nothing
    before = city.network.num_pois
    ensure_category_pois(city, names, per_category=2, seed=2)
    assert city.network.num_pois == before


def test_scenario_start_is_road_vertex_and_deterministic(city):
    a = scenario_start(city, seed=9)
    b = scenario_start(city, seed=9)
    assert a == b
    assert not city.network.is_poi(a)


def test_scenario_engine_sees_new_pois(city):
    ensure_category_pois(city, ["Sake Bar"], per_category=1, seed=3)
    engine = scenario_engine(city)
    start = scenario_start(city, seed=4)
    result = engine.query(start, ["Sake Bar"])
    assert result.perfect is not None


def test_geojson_empty_routes(city):
    collection = routes_to_geojson(city.network, 0, [])
    assert collection["features"] == []


def test_route_feature_rank_and_properties(city):
    engine = scenario_engine(city)
    start = scenario_start(city, seed=5)
    ensure_category_pois(city, ["Gift Shop"], per_category=1, seed=6)
    engine.refresh_index()
    result = engine.query(start, ["Gift Shop"])
    feature = route_feature(city.network, start, result.routes[0], rank=7)
    assert feature["properties"]["rank"] == 7
    assert feature["properties"]["length"] == result.routes[0].length
    assert len(feature["geometry"]["coordinates"]) >= 2


def test_render_network_without_route(city):
    art = render_network(city.network, width=30, height=8)
    lines = art.splitlines()
    assert len(lines) == 8
    assert all(len(line) == 30 for line in lines)
    assert any("o" in line for line in lines)  # PoIs drawn
