"""ALT landmarks: admissibility properties and BSSR equivalence.

Every number a :class:`~repro.graph.landmarks.LandmarkIndex` produces
is a *lower bound* on a true shortest-path distance — that is the whole
soundness argument for using them inside BSSR's pruning tests, the
l̄(ϕ)-ball restriction, and the nninit A* heuristic.  The property tests
here check each bound form against exact Dijkstra ground truth on
random graphs, and the engine-level test pins that switching
``use_landmarks`` on never changes an answer.
"""

from __future__ import annotations

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import SkySREngine
from repro.core.options import BSSROptions
from repro.graph.dijkstra import dijkstra
from repro.graph.landmarks import LandmarkIndex, landmarks_for

from .conftest import integer_grid, pick_query, random_instance, score_set


@settings(deadline=None, max_examples=25)
@given(seed=st.integers(0, 10_000), directed=st.booleans())
def test_property_lower_bound_is_admissible(seed, directed):
    rng = random.Random(seed)
    net = integer_grid(4, 4, rng, directed=directed, extra_edges=3)
    index = LandmarkIndex(net, count=4)
    for _ in range(10):
        u = rng.randrange(net.num_vertices)
        v = rng.randrange(net.num_vertices)
        truth = dijkstra(net, u).get(v, math.inf)
        bound = index.lower_bound(u, v)
        assert bound <= truth
        if bound == math.inf:
            assert truth == math.inf  # inf is claimed only when exact
    u = rng.randrange(net.num_vertices)
    assert index.lower_bound(u, u) == 0.0


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(0, 10_000))
def test_property_set_bounds_are_admissible(seed):
    rng = random.Random(seed)
    net = integer_grid(4, 4, rng, extra_edges=2)
    index = LandmarkIndex(net, count=4)
    first = rng.sample(range(net.num_vertices), 3)
    second = rng.sample(range(net.num_vertices), 3)
    truth = min(
        dijkstra(net, p).get(q, math.inf) for p in first for q in second
    )
    assert index.min_between(index.profile(first), index.profile(second)) <= truth

    u = rng.randrange(net.num_vertices)
    point_truth = min(dijkstra(net, u).get(q, math.inf) for q in second)
    prof = index.profile(second)
    assert index.min_from_vertex(u, prof) <= point_truth

    row = index.heuristic_row(("test", seed), second)
    assert len(row) == net.num_vertices
    assert row[u] <= point_truth
    # memoized: the same key returns the same list object
    assert index.heuristic_row(("test", seed), second) is row


def test_empty_profile_disables_pruning():
    rng = random.Random(3)
    net = integer_grid(3, 3, rng, extra_edges=0)
    index = LandmarkIndex(net, count=2)
    assert index.profile([]) is None
    assert index.min_between(None, index.profile([0])) == 0.0
    assert index.min_from_vertex(4, None) == 0.0


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(0, 10_000))
def test_property_restrict_within_keeps_ball_superset(seed):
    rng = random.Random(seed)
    net = integer_grid(4, 4, rng, extra_edges=2)
    index = LandmarkIndex(net, count=4)
    u = rng.randrange(net.num_vertices)
    radius = float(rng.randint(1, 5))
    vids = list(range(net.num_vertices))
    kept = set(index.restrict_within(u, vids, radius))
    truth = dijkstra(net, u)
    for v in vids:
        if truth.get(v, math.inf) <= radius:
            assert v in kept  # never drops a true ball member
    assert u in kept


@settings(deadline=None, max_examples=12)
@given(seed=st.integers(0, 10_000))
def test_property_alt_search_returns_identical_routes(seed):
    network, forest, rng = random_instance(seed)
    picked = pick_query(network, forest, rng, 3)
    if picked is None:
        return
    start, cats = picked
    engine = SkySREngine(network, forest)
    default = engine.query(start, cats)
    alt = engine.query(
        start, cats, options=BSSROptions(use_landmarks=True)
    )
    assert score_set(alt.routes) == score_set(default.routes)
    assert [r.pois for r in alt.routes] == [r.pois for r in default.routes]


def test_landmarks_for_memoizes_per_network():
    rng = random.Random(5)
    net = integer_grid(3, 3, rng, extra_edges=0)
    index = landmarks_for(net, count=3)
    assert landmarks_for(net, count=3) is index
    assert landmarks_for(net, count=2) is not index  # different budget
    net.add_edge(0, 8, 3.0)
    assert landmarks_for(net, count=3) is not index  # structure changed


def test_landmark_selection_is_deterministic_and_bounded():
    rng = random.Random(6)
    net = integer_grid(3, 4, rng, extra_edges=1)
    a = LandmarkIndex(net, count=30)  # more than |V| requested
    b = LandmarkIndex(net, count=30)
    assert a.landmarks == b.landmarks
    assert len(a.landmarks) <= net.num_vertices
    assert len(set(a.landmarks)) == len(a.landmarks)
