"""Multi-category PoIs (Section 6): max vs mean similarity rules."""

import pytest

from repro.core.spec import compile_query
from repro.extensions.multicategory import (
    MultiCategoryRequirement,
    add_category,
)
from repro.graph.poi import PoIIndex
from repro.graph.road_network import RoadNetwork
from repro.semantics.similarity import HierarchyWuPalmer

from .conftest import small_forest


@pytest.fixture()
def instance():
    forest = small_forest()
    net = RoadNetwork()
    a = net.add_vertex()
    # PoI that is both a Sushi place and an Italian place
    dual = net.add_poi((forest.resolve("Sushi"), forest.resolve("Italian")))
    plain = net.add_poi(forest.resolve("Bakery"))
    cross = net.add_poi((forest.resolve("Gift"), forest.resolve("Ramen")))
    net.add_edge(a, dual, 1.0)
    net.add_edge(dual, plain, 1.0)
    net.add_edge(plain, cross, 1.0)
    index = PoIIndex(net, forest)
    return forest, net, index, dict(dual=dual, plain=plain, cross=cross)


def test_max_mode_is_default_semantics(instance):
    forest, net, index, pois = instance
    req = MultiCategoryRequirement(forest.resolve("Sushi"), mode="max")
    spec = req.compile(index, HierarchyWuPalmer(), 0)
    assert spec.similarity(pois["dual"]) == 1.0
    # mirrors the default CategoryRequirement behaviour
    compiled = compile_query(0, ["Sushi"], index, HierarchyWuPalmer())
    assert compiled.specs[0].sim_map == spec.sim_map


def test_mean_mode_averages_same_tree_categories(instance):
    forest, net, index, pois = instance
    req = MultiCategoryRequirement(forest.resolve("Sushi"), mode="mean")
    spec = req.compile(index, HierarchyWuPalmer(), 0)
    # dual: sims (1.0 for Sushi, 0.5 for Italian vs query d=3 → lca Food)
    assert spec.similarity(pois["dual"]) == pytest.approx(0.75)
    assert not spec.is_perfect(pois["dual"])
    assert "mean" in spec.label


def test_mean_mode_ignores_other_trees(instance):
    forest, net, index, pois = instance
    req = MultiCategoryRequirement(forest.resolve("Ramen"), mode="mean")
    spec = req.compile(index, HierarchyWuPalmer(), 0)
    # cross PoI: Gift is in another tree → only the Ramen association counts
    assert spec.similarity(pois["cross"]) == 1.0


def test_invalid_mode_rejected(instance):
    forest, net, index, _ = instance
    req = MultiCategoryRequirement(forest.resolve("Sushi"), mode="median")
    with pytest.raises(ValueError):
        req.compile(index, HierarchyWuPalmer(), 0)


def test_add_category_helper(instance):
    forest, net, index, pois = instance
    add_category(net, pois["plain"], forest.resolve("Gift"))
    assert net.poi_categories(pois["plain"]) == (
        forest.resolve("Bakery"),
        forest.resolve("Gift"),
    )
    # index snapshots are stale until rebuilt
    fresh = PoIIndex(net, forest)
    assert pois["plain"] in fresh.pois_in_tree("Shop")
