"""BSSR behavioural details beyond score parity: stats semantics,
cache reuse patterns, dynamic threshold tightening, |S_q| = 1 queries."""

import pytest

from repro.core.bssr import run_bssr
from repro.core.options import BSSROptions
from repro.core.spec import compile_query
from repro.graph.poi import PoIIndex
from repro.graph.road_network import RoadNetwork
from repro.semantics.similarity import HierarchyWuPalmer

from .conftest import pick_query, random_instance, score_set, small_forest


def test_single_position_query():
    """|S_q| = 1: the skyline over single-PoI routes."""
    forest = small_forest()
    net = RoadNetwork()
    start = net.add_vertex()
    near_weak = net.add_poi(forest.resolve("Italian"))  # sim 0.5 for Ramen
    far_perfect = net.add_poi(forest.resolve("Ramen"))
    net.add_edge(start, near_weak, 1.0)
    net.add_edge(near_weak, far_perfect, 3.0)
    index = PoIIndex(net, forest)
    compiled = compile_query(start, ["Ramen"], index, HierarchyWuPalmer())
    routes, stats = run_bssr(net, compiled)
    assert score_set(routes) == {(1.0, 0.5), (4.0, 0.0)}
    assert stats.result_size == 2


def test_start_on_matching_poi_gives_zero_length_route():
    forest = small_forest()
    net = RoadNetwork()
    poi = net.add_poi(forest.resolve("Ramen"))
    other = net.add_poi(forest.resolve("Gift"))
    net.add_edge(poi, other, 2.0)
    index = PoIIndex(net, forest)
    compiled = compile_query(poi, ["Ramen", "Gift"], index, HierarchyWuPalmer())
    routes, _ = run_bssr(net, compiled)
    assert score_set(routes) == {(2.0, 0.0)}
    assert routes[0].pois == (poi, other)


def test_cache_hits_counted_for_repeated_sources():
    """Two surviving size-2 prefixes ending at the same museum PoI
    share (resume) one cached position-3 search."""
    forest = small_forest()
    net = RoadNetwork()
    start = net.add_vertex()
    r1 = net.add_poi(forest.resolve("Ramen"))     # perfect, farther
    r2 = net.add_poi(forest.resolve("Italian"))   # sim 0.5, nearer
    hub = net.add_poi(forest.resolve("Museum"))
    hobby = net.add_poi(forest.resolve("Hobby"))  # sim 2/3 for Gift
    gift = net.add_poi(forest.resolve("Gift"))
    net.add_edge(start, r1, 2.0)
    net.add_edge(start, r2, 1.0)
    net.add_edge(r1, hub, 1.0)
    net.add_edge(r2, hub, 1.0)
    net.add_edge(hub, hobby, 1.0)
    net.add_edge(hub, gift, 2.0)
    index = PoIIndex(net, forest)
    compiled = compile_query(
        start, ["Ramen", "Museum", "Gift"], index, HierarchyWuPalmer()
    )
    routes, with_cache = run_bssr(net, compiled)
    # three-route skyline: (3, 2/3), (4, 1/3), (5, 0)
    assert score_set(routes) == {
        (3.0, round(2 / 3, 9)),
        (4.0, round(1 / 3, 9)),
        (5.0, 0.0),
    }
    _, no_cache = run_bssr(net, compiled, options=BSSROptions(caching=False))
    # both ⟨r1,hub⟩ and ⟨r2,hub⟩ expand position 3 from the same hub
    assert with_cache.cache_hits >= 1
    assert with_cache.mdijkstra_runs < no_cache.mdijkstra_runs


def test_queue_counters_consistent():
    for seed in range(6):
        network, forest, rng = random_instance(seed, num_pois=12)
        query = pick_query(network, forest, rng, 3)
        if query is None:
            continue
        start, cats = query
        index = PoIIndex(network, forest)
        compiled = compile_query(start, cats, index, HierarchyWuPalmer())
        _, stats = run_bssr(network, compiled)
        popped = stats.routes_expanded + stats.routes_pruned_on_pop
        assert popped == stats.routes_enqueued  # queue fully drained
        assert stats.max_queue_size <= stats.routes_enqueued
        assert stats.skyline_updates >= stats.result_size


def test_first_radius_zero_when_first_position_adjacent():
    forest = small_forest()
    net = RoadNetwork()
    poi = net.add_poi(forest.resolve("Ramen"))
    gift = net.add_poi(forest.resolve("Gift"))
    net.add_edge(poi, gift, 1.0)
    index = PoIIndex(net, forest)
    compiled = compile_query(poi, ["Ramen", "Gift"], index, HierarchyWuPalmer())
    _, stats = run_bssr(net, compiled)
    # the first search stops right at the perfect source PoI
    assert stats.first_search_radius == 0.0


def test_threshold_tightens_during_first_search():
    """A complete route found mid-search shrinks the ongoing budget:
    with |S_q| = 1, far candidates dominated by near ones are never
    settled at all."""
    forest = small_forest()
    net = RoadNetwork()
    start = net.add_vertex()
    near = net.add_poi(forest.resolve("Ramen"))
    chain = [near]
    for _ in range(5):
        nxt = net.add_poi(forest.resolve("Ramen"))
        net.add_edge(chain[-1], nxt, 1.0)
        chain.append(nxt)
    net.add_edge(start, near, 1.0)
    index = PoIIndex(net, forest)
    compiled = compile_query(start, ["Ramen"], index, HierarchyWuPalmer())
    routes, stats = run_bssr(
        net, compiled, options=BSSROptions(initial_search=False)
    )
    # only the nearest perfect match survives; the rest were never
    # reached because the threshold collapsed to its length
    assert score_set(routes) == {(1.0, 0.0)}
    assert stats.settled <= 3  # start + near (+ maybe one frontier pop)
