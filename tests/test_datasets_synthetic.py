"""Synthetic network generators: connectivity, determinism, shapes."""

import pytest

from repro.datasets.synthetic import grid_city, radial_city, random_geometric
from repro.errors import DataError


def test_grid_city_connected_and_sized():
    net = grid_city(8, 10, seed=0)
    assert net.num_vertices == 80
    assert net.is_connected()
    assert net.has_coords()
    assert net.num_edges >= 79  # at least a spanning tree survives
    # weights equal Euclidean segment lengths → all positive
    assert all(w > 0 for _, _, w in net.edges())


def test_grid_city_deterministic_per_seed():
    a = grid_city(6, 6, seed=5)
    b = grid_city(6, 6, seed=5)
    c = grid_city(6, 6, seed=6)
    assert sorted(a.edges()) == sorted(b.edges())
    assert sorted(a.edges()) != sorted(c.edges())


def test_grid_city_heavy_removal_still_connected():
    net = grid_city(10, 10, removal_prob=0.9, seed=2)
    assert net.is_connected()


def test_grid_city_validation():
    with pytest.raises(DataError):
        grid_city(1, 5)


def test_random_geometric_connected_low_degree():
    net = random_geometric(120, k_neighbors=3, seed=1)
    assert net.num_vertices == 120
    assert net.is_connected()
    mean_degree = sum(net.degree(v) for v in net.vertices()) / 120
    assert mean_degree < 8.0  # sparse, Cal-like
    with pytest.raises(DataError):
        random_geometric(1)


def test_radial_city_shape():
    net = radial_city(3, 8, seed=0)
    assert net.num_vertices == 1 + 3 * 8
    assert net.is_connected()
    # center has one spoke edge per spoke
    assert net.degree(0) == 8
    with pytest.raises(DataError):
        radial_city(0, 8)
    with pytest.raises(DataError):
        radial_city(2, 2)
