"""The preprocessing index (the paper's future-work feature)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import compute_lower_bounds
from repro.core.dominance import SkylineSet
from repro.core.engine import SkySREngine
from repro.core.spec import compile_query
from repro.extensions.preprocessing import TreePairDistanceIndex
from repro.graph.dijkstra import multi_source_min_distance
from repro.graph.poi import PoIIndex
from repro.semantics.similarity import HierarchyWuPalmer

from .conftest import pick_query, random_instance, score_set


def test_pair_distances_match_direct_multisource():
    network, forest, rng = random_instance(3, num_pois=12)
    index = PoIIndex(network, forest)
    tree_index = TreePairDistanceIndex(network, index)
    trees = index.trees_present()
    for i, a in enumerate(trees):
        for b in trees[i + 1:]:
            expected = multi_source_min_distance(
                network, index.pois_in_tree(a), index.pois_in_tree(b)
            )
            assert tree_index.min_distance(a, b) == expected
            assert tree_index.min_distance(b, a) == expected
    for tree in trees:
        assert tree_index.min_distance(tree, tree) == 0.0
    assert tree_index.build_time >= 0.0


def test_unknown_pair_is_inf():
    network, forest, rng = random_instance(0, num_pois=4)
    index = PoIIndex(network, forest)
    tree_index = TreePairDistanceIndex(network, index)
    assert tree_index.min_distance(9999, 12345) == math.inf


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(0, 50_000))
def test_property_indexed_bounds_lower_bound_online_bounds(seed):
    """The index drops Algorithm 4's ball restriction, so its legs are
    never larger than the online ones — weaker but always safe."""
    network, forest, rng = random_instance(seed, num_pois=10)
    query = pick_query(network, forest, rng, 3)
    if query is None:
        return
    start, cats = query
    index = PoIIndex(network, forest)
    compiled = compile_query(start, cats, index, HierarchyWuPalmer())
    tree_index = TreePairDistanceIndex(network, index)
    indexed = tree_index.bounds_for(compiled)
    online = compute_lower_bounds(network, compiled, SkylineSet())
    for k in range(len(indexed.suffix_ls)):
        assert indexed.suffix_ls[k] <= online.suffix_ls[k] + 1e-9


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(0, 50_000))
def test_property_preprocessing_preserves_results(seed):
    network, forest, rng = random_instance(seed, num_pois=10)
    query = pick_query(network, forest, rng, 3)
    if query is None:
        return
    start, cats = query
    plain = SkySREngine(network, forest)
    indexed = SkySREngine(network, forest, preprocessing=True)
    a = plain.query(start, cats)
    b = indexed.query(start, cats)
    assert score_set(a.routes) == score_set(b.routes)
    assert b.stats.extra.get("preprocessed_bounds")
    assert "preprocessed_bounds" not in a.stats.extra


def test_preprocessing_skipped_for_destination_queries(figure1):
    from repro.datasets.paper_example import figure1_query

    engine = SkySREngine(figure1.network, figure1.forest, preprocessing=True)
    start = figure1.landmarks["vq"]
    with_dest = engine.query(
        start, list(figure1_query()), destination=start
    )
    assert "preprocessed_bounds" not in with_dest.stats.extra
    reference = engine.query(
        start, list(figure1_query()), destination=start, algorithm="brute-force"
    )
    assert score_set(with_dest.routes) == score_set(reference.routes)


def test_index_reused_across_queries(figure1):
    engine = SkySREngine(figure1.network, figure1.forest, preprocessing=True)
    first = engine.tree_index
    assert engine.tree_index is first
    engine.refresh_index()
    assert engine.tree_index is not first
