"""The versioned, stateless session API over a pluggable store.

Evidence that the service tier is genuinely stateless:

* two :class:`~repro.service.SessionApi` instances sharing one store
  serve alternating pages of the same session, and the result equals an
  in-process oracle :class:`~repro.core.session.PlanningSession`;
* every typed failure maps to its status: 400 bad request, 404 unknown
  session, 410 expired, 429 admission/backpressure, 400 unsupported
  API version;
* the router speaks only ``/v1`` and refuses anything else up front.
"""

from __future__ import annotations

import itertools

import pytest

from repro.datasets.presets import mini_city
from repro.service import API_VERSION, SessionApi, SkySRService
from repro.store import DiskSessionStore, InMemorySessionStore

CATS = ["Asian Restaurant", "Arts & Entertainment", "Gift Shop"]


@pytest.fixture()
def city():
    return mini_city()


@pytest.fixture()
def service(city):
    return SkySRService(city, max_k=10, max_session_routes=40)


@pytest.fixture()
def api(service):
    counter = itertools.count(1)
    return SessionApi(
        service,
        InMemorySessionStore(),
        id_factory=lambda: f"s{next(counter)}",
    )


def _create(api, city, **overrides):
    body = {"categories": CATS, "start": city.landmarks["vq"], "page_size": 2}
    body.update(overrides)
    return api.dispatch("POST", f"/{API_VERSION}/sessions", body)


def _route_keys(page_body):
    return [(tuple(r["pois"]), r["distance"]) for r in page_body["routes"]]


# ---------------------------------------------------------------------------
# endpoints


def test_create_get_page_close_lifecycle(api, city):
    created = _create(api, city)
    assert created.status == 201
    sid = created.body["session_id"]
    assert created.body["pages_served"] == 0
    assert created.body["categories"] == CATS

    page = api.dispatch("POST", f"/v1/sessions/{sid}/pages")
    assert page.status == 200
    assert page.body["page"] == 1 and page.body["first_rank"] == 1
    assert not page.body["resumed"]
    assert len(page.body["routes"]) == 2
    assert page.body["routes"][0]["rank"] == 1

    described = api.dispatch("GET", f"/v1/sessions/{sid}")
    assert described.status == 200
    assert described.body["pages_served"] == 1
    assert described.body["routes_served"] == 2

    listed = api.dispatch("GET", "/v1/sessions")
    assert listed.body == {"sessions": [sid]}

    closed = api.dispatch("DELETE", f"/v1/sessions/{sid}")
    assert closed.status == 204


def test_pages_match_in_process_oracle_session(api, service, city):
    sid = _create(api, city).body["session_id"]
    oracle = service.engine.session(
        city.landmarks["vq"], CATS, page_size=2
    )
    for _ in range(3):
        body = api.dispatch("POST", f"/v1/sessions/{sid}/pages").body
        page = oracle.next_page()
        assert _route_keys(body) == [(r.pois, r.length) for r in page.routes]
        assert body["first_rank"] == page.first_rank
        assert body["exhausted"] == page.exhausted
        if page.exhausted:
            break


def test_two_api_instances_share_sessions_via_the_store(service, city):
    """True statelessness: alternating workers serve one session."""
    store = InMemorySessionStore()
    worker_a = SessionApi(service, store, id_factory=lambda: "shared")
    worker_b = SessionApi(service, store)
    sid = _create(worker_a, city).body["session_id"]
    oracle = service.engine.session(city.landmarks["vq"], CATS, page_size=2)
    for worker in (worker_a, worker_b, worker_a):
        body = worker.dispatch("POST", f"/v1/sessions/{sid}/pages").body
        page = oracle.next_page()
        assert _route_keys(body) == [(r.pois, r.length) for r in page.routes]
        assert body["resumed"] == page.resumed


def test_disk_store_survives_api_instance_turnover(service, city, tmp_path):
    """Same, but durable: the second worker starts from the directory."""
    sid = _create(
        SessionApi(service, DiskSessionStore(tmp_path)),
        city,
        session_id="trip",
    ).body["session_id"]
    assert sid == "trip"
    later = SessionApi(service, DiskSessionStore(tmp_path))
    page = later.dispatch("POST", "/v1/sessions/trip/pages")
    assert page.status == 200 and page.body["page"] == 1


def test_next_page_n_override(api, city):
    sid = _create(api, city).body["session_id"]
    body = api.dispatch("POST", f"/v1/sessions/{sid}/pages", {"n": 3}).body
    assert len(body["routes"]) == 3


# ---------------------------------------------------------------------------
# typed failures -> statuses


def test_unknown_session_is_404(api):
    for method, path in [
        ("GET", "/v1/sessions/nope"),
        ("POST", "/v1/sessions/nope/pages"),
        ("DELETE", "/v1/sessions/nope"),
    ]:
        response = api.dispatch(method, path)
        assert response.status == 404, (method, path)
        assert response.body["error"] == "SessionNotFoundError"


def test_closed_session_is_404_not_keyerror(api, city):
    sid = _create(api, city).body["session_id"]
    api.dispatch("POST", f"/v1/sessions/{sid}/pages")
    assert api.dispatch("DELETE", f"/v1/sessions/{sid}").status == 204
    after = api.dispatch("POST", f"/v1/sessions/{sid}/pages")
    assert after.status == 404
    assert after.body["error"] == "SessionNotFoundError"


def test_expired_session_is_410(service, city):
    now = [0.0]
    store = InMemorySessionStore(ttl=5.0, clock=lambda: now[0])
    api = SessionApi(service, store, id_factory=lambda: "e1")
    _create(api, city)
    now[0] = 10.0
    gone = api.dispatch("GET", "/v1/sessions/e1")
    assert gone.status == 410
    assert gone.body["error"] == "SessionExpiredError"


def test_admission_cap_is_429(api, city):
    over = _create(api, city, page_size=99)
    assert over.status == 429
    assert over.body["error"] == "AdmissionError"


def test_store_backpressure_is_429(service, city):
    api = SessionApi(
        service, InMemorySessionStore(max_entries=1, evict=False)
    )
    assert _create(api, city).status == 201
    refused = _create(api, city)
    assert refused.status == 429
    assert refused.body["error"] == "AdmissionError"


def test_session_budget_cap_is_429(city):
    service = SkySRService(city, max_session_routes=3)
    api = SessionApi(service, InMemorySessionStore())
    sid = _create(api, city).body["session_id"]
    assert api.dispatch("POST", f"/v1/sessions/{sid}/pages").status == 200
    refused = api.dispatch("POST", f"/v1/sessions/{sid}/pages")
    assert refused.status == 429


@pytest.mark.parametrize(
    "body, fragment",
    [
        ({}, "categories"),
        ({"categories": []}, "categories"),
        ({"categories": CATS, "start": 0, "bogus": 1}, "bogus"),
        ({"categories": CATS}, "start"),
    ],
)
def test_bad_create_bodies_are_400(api, body, fragment):
    response = api.dispatch("POST", "/v1/sessions", body)
    assert response.status == 400
    assert fragment in response.body["message"]


def test_bad_page_bodies_are_400(api, city):
    sid = _create(api, city).body["session_id"]
    assert (
        api.dispatch(
            "POST", f"/v1/sessions/{sid}/pages", {"n": "two"}
        ).status
        == 400
    )
    assert (
        api.dispatch(
            "POST", f"/v1/sessions/{sid}/pages", {"pages": 2}
        ).status
        == 400
    )


def test_duplicate_session_id_is_400(api, city):
    assert _create(api, city, session_id="dup").status == 201
    assert _create(api, city, session_id="dup").status == 400


def test_unsafe_session_id_is_400(api, city):
    assert _create(api, city, session_id="../etc").status == 400


# ---------------------------------------------------------------------------
# version negotiation and routing


@pytest.mark.parametrize("path", ["/v2/sessions", "/v999/sessions"])
def test_unsupported_api_version_is_rejected(api, path):
    response = api.dispatch("GET", path)
    assert response.status == 400
    assert "unsupported API version" in response.body["message"]
    assert API_VERSION in response.body["message"]


@pytest.mark.parametrize("path", ["/sessions", "/", "/vx/sessions"])
def test_unversioned_paths_are_rejected(api, path):
    response = api.dispatch("GET", path)
    assert response.status == 400
    assert "version" in response.body["message"]


def test_unknown_endpoint_is_400(api):
    assert api.dispatch("PATCH", "/v1/sessions").status == 400
    assert api.dispatch("GET", "/v1/sessions/a/pages").status == 400
    assert api.dispatch("POST", "/v1/other").status == 400
