"""Unit tests for the category forest (semantic hierarchy substrate)."""

import pytest

from repro.errors import CategoryError
from repro.semantics.category import CategoryForest

from .conftest import small_forest


def test_add_root_and_children():
    forest = CategoryForest()
    food = forest.add_root("Food")
    asian = forest.add_child(food, "Asian")
    ramen = forest.add_child("Asian", "Ramen")
    assert forest.depth(food) == 1
    assert forest.depth(asian) == 2
    assert forest.depth(ramen) == 3
    assert forest.tree_id(ramen) == food
    assert forest.parent_of(ramen) == asian
    assert forest.children_of(food) == [asian]
    assert len(forest) == 3


def test_add_path_idempotent():
    forest = CategoryForest()
    leaf = forest.add_path("Food", "Asian", "Ramen")
    again = forest.add_path("Food", "Asian", "Ramen")
    assert leaf == again
    assert len(forest) == 3
    sibling = forest.add_path("Food", "Asian", "Sushi")
    assert forest.parent_of(sibling) == forest.resolve("Asian")


def test_add_path_conflicts():
    forest = CategoryForest()
    forest.add_path("Food", "Asian")
    with pytest.raises(CategoryError):
        forest.add_path("Asian")  # exists but is not a root
    forest.add_path("Shop")
    with pytest.raises(CategoryError):
        forest.add_path("Shop", "Asian")  # exists under a different parent


def test_duplicate_and_empty_names_rejected():
    forest = CategoryForest()
    forest.add_root("Food")
    with pytest.raises(CategoryError):
        forest.add_root("Food")
    with pytest.raises(CategoryError):
        forest.add_child("Food", "Food")
    with pytest.raises(CategoryError):
        forest.add_root("")


def test_resolve_variants():
    forest = small_forest()
    cid = forest.resolve("Ramen")
    assert forest.resolve(cid) == cid
    assert forest.resolve(forest.category(cid)) == cid
    assert forest.name_of(cid) == "Ramen"
    with pytest.raises(CategoryError):
        forest.resolve("Nope")
    with pytest.raises(CategoryError):
        forest.resolve(10_000)


def test_contains_and_iteration():
    forest = small_forest()
    assert "Food" in forest
    assert "Nope" not in forest
    assert forest.resolve("Food") in forest
    assert 99_999 not in forest
    assert 3.14 not in forest
    names = {cat.name for cat in forest}
    assert {"Food", "Asian", "Ramen", "Gift"} <= names
    assert set(forest.names()) == names


def test_ancestors_chain():
    forest = small_forest()
    ramen = forest.resolve("Ramen")
    chain = forest.ancestors(ramen)
    assert [forest.name_of(c) for c in chain] == ["Ramen", "Asian", "Food"]
    assert forest.ancestors(ramen, include_self=False) == chain[1:]
    root = forest.resolve("Food")
    assert forest.ancestors(root) == [root]


def test_is_ancestor_or_self():
    forest = small_forest()
    food, asian, ramen = (
        forest.resolve("Food"),
        forest.resolve("Asian"),
        forest.resolve("Ramen"),
    )
    gift = forest.resolve("Gift")
    assert forest.is_ancestor_or_self(food, ramen)
    assert forest.is_ancestor_or_self(asian, ramen)
    assert forest.is_ancestor_or_self(ramen, ramen)
    assert not forest.is_ancestor_or_self(ramen, asian)
    assert not forest.is_ancestor_or_self(food, gift)  # different trees


def test_euler_intervals_refresh_after_mutation():
    forest = small_forest()
    food = forest.resolve("Food")
    assert forest.is_ancestor_or_self(food, forest.resolve("Ramen"))
    new_leaf = forest.add_child("Italian", "Trattoria")
    assert forest.is_ancestor_or_self(food, new_leaf)
    assert forest.is_ancestor_or_self(forest.resolve("Italian"), new_leaf)


def test_lca():
    forest = small_forest()
    assert forest.lca("Ramen", "Sushi") == forest.resolve("Asian")
    assert forest.lca("Ramen", "Italian") == forest.resolve("Food")
    assert forest.lca("Ramen", "Ramen") == forest.resolve("Ramen")
    assert forest.lca("Ramen", "Asian") == forest.resolve("Asian")
    assert forest.lca("Ramen", "Gift") is None


def test_subtree_and_leaves():
    forest = small_forest()
    food_subtree = {forest.name_of(c) for c in forest.subtree("Food")}
    assert food_subtree == {"Food", "Asian", "Ramen", "Sushi", "Italian", "Bakery"}
    leaves = {forest.name_of(c) for c in forest.leaves("Food")}
    assert leaves == {"Ramen", "Sushi", "Italian", "Bakery"}
    all_leaves = forest.leaves()
    assert forest.resolve("Jazz") in all_leaves
    assert forest.resolve("Food") not in all_leaves


def test_path_length():
    forest = small_forest()
    assert forest.path_length("Ramen", "Sushi") == 2
    assert forest.path_length("Ramen", "Asian") == 1
    assert forest.path_length("Ramen", "Ramen") == 0
    assert forest.path_length("Ramen", "Bakery") == 3
    assert forest.path_length("Ramen", "Gift") is None


def test_max_depth():
    forest = small_forest()
    assert forest.max_depth() == 3
    assert forest.max_depth("Shop") == 3
    single = CategoryForest()
    single.add_root("Only")
    assert single.max_depth() == 1


def test_validate_ok():
    small_forest().validate()


def test_serialization_roundtrip():
    forest = small_forest()
    payload = forest.to_dict()
    clone = CategoryForest.from_dict(payload)
    assert clone.names() == forest.names()
    assert clone.roots == forest.roots
    for cat in forest:
        other = clone.category(cat.cid)
        assert (other.name, other.parent, other.depth, other.tree_id) == (
            cat.name,
            cat.parent,
            cat.depth,
            cat.tree_id,
        )
    clone.validate()


def test_from_dict_rejects_sparse_ids():
    with pytest.raises(CategoryError):
        CategoryForest.from_dict(
            {"categories": [{"cid": 1, "name": "A", "parent": None}]}
        )
