"""Error hierarchy + public package surface."""

import pytest

import repro
from repro.errors import (
    AlgorithmError,
    CategoryError,
    DataError,
    GraphError,
    QueryError,
    ReproError,
)


def test_all_errors_derive_from_repro_error():
    for exc in (GraphError, CategoryError, QueryError, DataError, AlgorithmError):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_public_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_subpackage_all_resolves():
    import repro.baselines
    import repro.datasets
    import repro.extensions
    import repro.graph
    import repro.semantics
    import repro.service

    for module in (
        repro.graph,
        repro.semantics,
        repro.baselines,
        repro.datasets,
        repro.extensions,
        repro.service,
    ):
        for name in module.__all__:
            assert hasattr(module, name), (module.__name__, name)


def test_experiments_lazy_registry():
    import repro.experiments

    names = repro.experiments.experiment_names()
    assert "figure3" in names
    with pytest.raises(AttributeError):
        repro.experiments.not_a_thing  # noqa: B018


def test_one_error_catch_at_service_boundary():
    """A caller can guard the whole library with one except clause."""
    from repro import CategoryForest, RoadNetwork, SkySREngine

    forest = CategoryForest()
    forest.add_root("Only")
    net = RoadNetwork()
    net.add_vertex()
    engine = SkySREngine(net, forest)
    caught = 0
    for bad_call in (
        lambda: engine.query(0, []),
        lambda: engine.query(99, ["Only"]),
        lambda: engine.query(0, ["Nope"]),
        lambda: forest.add_root("Only"),
        lambda: net.add_edge(0, 0, 1.0),
    ):
        try:
            bad_call()
        except ReproError:
            caught += 1
    assert caught == 5
