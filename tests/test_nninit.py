"""NNinit (Algorithm 3): seeding behaviour and edge cases."""

import math

import pytest

from repro.core.dominance import SkylineSet
from repro.core.nninit import nninit
from repro.core.spec import compile_query
from repro.core.stats import SearchStats
from repro.graph.poi import PoIIndex
from repro.graph.road_network import RoadNetwork
from repro.semantics.scoring import ProductAggregator
from repro.semantics.similarity import HierarchyWuPalmer

from .conftest import small_forest


def _compile(net, forest, start, cats, destination=None):
    index = PoIIndex(net, forest)
    return compile_query(
        start, cats, index, HierarchyWuPalmer(), destination=destination
    )


def test_nninit_finds_perfect_chain_and_semantic_seeds():
    forest = small_forest()
    net = RoadNetwork()
    start = net.add_vertex()
    ramen = net.add_poi(forest.resolve("Ramen"))
    hobby = net.add_poi(forest.resolve("Hobby"))  # semantic for Gift
    gift = net.add_poi(forest.resolve("Gift"))
    net.add_edge(start, ramen, 2.0)
    net.add_edge(ramen, hobby, 1.0)
    net.add_edge(hobby, gift, 1.0)
    query = _compile(net, forest, start, ["Ramen", "Gift"])
    skyline = SkylineSet()
    stats = SearchStats()
    offered = nninit(net, query, ProductAggregator(), skyline, stats)
    # last leg passes hobby (sim 2/3) before gift (perfect)
    assert {r.pois for r in offered} == {(ramen, hobby), (ramen, gift)}
    perfect = [r for r in offered if r.semantic == 0.0][0]
    assert perfect.length == 4.0
    semantic = [r for r in offered if r.semantic > 0.0][0]
    assert semantic.length == 3.0
    assert semantic.semantic == pytest.approx(1 / 3)
    assert stats.init_routes == 2
    assert stats.init_length_ratio == pytest.approx(3.0 / 4.0)
    assert skyline.perfect_route_length() == 4.0


def test_nninit_greedy_is_not_necessarily_optimal():
    """NNinit is a heuristic: the greedy chain may be longer than the
    optimal perfect route; the skyline it seeds is still valid."""
    forest = small_forest()
    net = RoadNetwork()
    start = net.add_vertex()
    near_ramen = net.add_poi(forest.resolve("Ramen"))
    far_ramen = net.add_poi(forest.resolve("Ramen"))
    gift = net.add_poi(forest.resolve("Gift"))
    net.add_edge(start, near_ramen, 1.0)   # greedy grabs this one
    net.add_edge(start, far_ramen, 2.0)
    net.add_edge(far_ramen, gift, 1.0)
    net.add_edge(near_ramen, gift, 9.0)
    query = _compile(net, forest, start, ["Ramen", "Gift"])
    skyline = SkylineSet()
    nninit(net, query, ProductAggregator(), skyline, SearchStats())
    # greedy: near_ramen (1) then gift via start→far_ramen (4) = 5;
    # the optimal perfect route is far_ramen→gift = 3
    assert skyline.perfect_route_length() == 5.0


def test_nninit_skips_used_pois():
    """Same-tree consecutive positions must not reuse a PoI."""
    forest = small_forest()
    net = RoadNetwork()
    start = net.add_vertex()
    r1 = net.add_poi(forest.resolve("Ramen"))
    r2 = net.add_poi(forest.resolve("Ramen"))
    net.add_edge(start, r1, 1.0)
    net.add_edge(r1, r2, 1.0)
    query = _compile(net, forest, start, ["Ramen", "Ramen"])
    skyline = SkylineSet()
    offered = nninit(net, query, ProductAggregator(), skyline, SearchStats())
    assert any(r.pois == (r1, r2) for r in offered)
    for route in offered:
        assert len(set(route.pois)) == 2


def test_nninit_handles_missing_perfect_match():
    """No perfect match reachable → fewer (or no) seeds, no crash."""
    forest = small_forest()
    net = RoadNetwork()
    start = net.add_vertex()
    italian = net.add_poi(forest.resolve("Italian"))
    gift = net.add_poi(forest.resolve("Gift"))
    net.add_edge(start, italian, 1.0)
    net.add_edge(italian, gift, 1.0)
    # first position "Ramen" has no perfect PoI → chain stops, no routes
    query = _compile(net, forest, start, ["Ramen", "Gift"])
    skyline = SkylineSet()
    stats = SearchStats()
    offered = nninit(net, query, ProductAggregator(), skyline, stats)
    assert offered == []
    assert stats.init_length_ratio is None
    assert skyline.perfect_route_length() == math.inf


def test_nninit_last_leg_without_perfect_still_seeds_semantics():
    """Perfect match missing only at the LAST position: semantic routes
    are still seeded while the search drains."""
    forest = small_forest()
    net = RoadNetwork()
    start = net.add_vertex()
    ramen = net.add_poi(forest.resolve("Ramen"))
    hobby = net.add_poi(forest.resolve("Hobby"))
    net.add_edge(start, ramen, 1.0)
    net.add_edge(ramen, hobby, 1.0)
    query = _compile(net, forest, start, ["Ramen", "Gift"])
    skyline = SkylineSet()
    offered = nninit(net, query, ProductAggregator(), skyline, SearchStats())
    assert {r.pois for r in offered} == {(ramen, hobby)}
    assert skyline.perfect_route_length() == math.inf


def test_nninit_with_destination_adds_final_leg():
    forest = small_forest()
    net = RoadNetwork()
    start = net.add_vertex()
    dest = net.add_vertex()
    ramen = net.add_poi(forest.resolve("Ramen"))
    net.add_edge(start, ramen, 1.0)
    net.add_edge(ramen, dest, 3.0)
    query = _compile(net, forest, start, ["Ramen"], destination=dest)
    from repro.graph.dijkstra import dijkstra

    dest_dist = dijkstra(net, dest, reverse=True)
    skyline = SkylineSet()
    offered = nninit(
        net, query, ProductAggregator(), skyline, SearchStats(),
        dest_dist=dest_dist,
    )
    assert offered[0].length == 4.0  # 1 to the PoI + 3 to the hotel
