"""Unit + property tests for the similarity measures (Definition 3.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semantics.similarity import (
    ClassicWuPalmer,
    HierarchyWuPalmer,
    PathLengthSimilarity,
    similarity_by_name,
)

from .conftest import small_forest

MEASURES = [HierarchyWuPalmer(), ClassicWuPalmer(), PathLengthSimilarity()]


@pytest.fixture(scope="module")
def forest():
    return small_forest()


@pytest.mark.parametrize("measure", MEASURES, ids=lambda m: m.name)
def test_definition_3_3_axioms(measure, forest):
    """Perfect=1, same tree in (0,1], different trees = 0."""
    ramen = forest.resolve("Ramen")
    assert measure.similarity(forest, ramen, ramen) == 1.0
    for other in ("Sushi", "Italian", "Asian", "Food", "Bakery"):
        sim = measure.similarity(forest, ramen, forest.resolve(other))
        assert 0.0 < sim <= 1.0
    for unrelated in ("Gift", "Jazz", "Museum"):
        assert measure.similarity(forest, ramen, forest.resolve(unrelated)) == 0.0


def test_hierarchy_wu_palmer_closed_form(forest):
    """sim = 2·d(L)/(d(c)+d(L)) with perfect-on-subtree semantics."""
    measure = HierarchyWuPalmer()
    asian = forest.resolve("Asian")  # depth 2
    ramen = forest.resolve("Ramen")  # depth 3
    italian = forest.resolve("Italian")  # depth 2
    food = forest.resolve("Food")  # depth 1
    # descendant of the query: perfect (closure-set rule)
    assert measure.similarity(forest, asian, ramen) == 1.0
    # parent level: L = Food (depth 1), query depth 2 → 2/3
    assert measure.similarity(forest, asian, food) == pytest.approx(2.0 / 3.0)
    # sibling: same L → same value as matching the parent itself
    assert measure.similarity(forest, asian, italian) == pytest.approx(2.0 / 3.0)
    # deeper query: Ramen (d=3) vs Italian → L = Food → 2·1/(3+1)
    assert measure.similarity(forest, ramen, italian) == pytest.approx(0.5)
    # Ramen vs Sushi → L = Asian (d=2) → 2·2/(3+2)
    assert measure.similarity(
        forest, ramen, forest.resolve("Sushi")
    ) == pytest.approx(0.8)


def test_classic_wu_palmer_not_perfect_for_descendants(forest):
    measure = ClassicWuPalmer()
    asian = forest.resolve("Asian")
    ramen = forest.resolve("Ramen")
    sim = measure.similarity(forest, asian, ramen)
    assert 0.0 < sim < 1.0
    # symmetric
    assert sim == measure.similarity(forest, ramen, asian)


def test_path_length_values(forest):
    measure = PathLengthSimilarity()
    ramen = forest.resolve("Ramen")
    assert measure.similarity(forest, ramen, ramen) == 1.0
    assert measure.similarity(forest, ramen, forest.resolve("Asian")) == 0.5
    assert measure.similarity(forest, ramen, forest.resolve("Sushi")) == pytest.approx(1 / 3)
    assert measure.similarity(forest, ramen, forest.resolve("Bakery")) == 0.25


@pytest.mark.parametrize("measure", MEASURES, ids=lambda m: m.name)
def test_best_nonperfect_matches_bruteforce(measure, forest):
    """The closed-form best_nonperfect equals a scan over the tree."""
    for name in ("Ramen", "Asian", "Food", "Gift", "Jazz"):
        cid = forest.resolve(name)
        scan_best = None
        for other in forest.categories_in_tree(forest.tree_id(cid)):
            sim = measure.similarity(forest, cid, other)
            if sim < 1.0 and (scan_best is None or sim > scan_best):
                scan_best = sim
        assert measure.best_nonperfect(forest, cid) == pytest.approx(
            scan_best
        ) or (scan_best is None and measure.best_nonperfect(forest, cid) is None)


def test_hierarchy_best_nonperfect_root_is_none(forest):
    measure = HierarchyWuPalmer()
    assert measure.best_nonperfect(forest, forest.resolve("Food")) is None
    # non-root: parent-level closed form
    ramen = forest.resolve("Ramen")
    assert measure.best_nonperfect(forest, ramen) == pytest.approx(
        2.0 * 2 / (3 + 2)
    )


def test_similarity_by_name_registry():
    assert isinstance(similarity_by_name("hierarchy-wu-palmer"), HierarchyWuPalmer)
    assert isinstance(similarity_by_name("classic-wu-palmer"), ClassicWuPalmer)
    assert isinstance(similarity_by_name("path-length"), PathLengthSimilarity)
    with pytest.raises(ValueError):
        similarity_by_name("nope")


@settings(deadline=None, max_examples=60)
@given(
    a=st.sampled_from(
        ["Food", "Asian", "Ramen", "Sushi", "Italian", "Bakery", "Shop",
         "Gift", "Hobby", "Games", "Clothes", "Fun", "Museum", "Art Museum",
         "Music", "Jazz"]
    ),
    b=st.sampled_from(
        ["Food", "Asian", "Ramen", "Sushi", "Italian", "Bakery", "Shop",
         "Gift", "Hobby", "Games", "Clothes", "Fun", "Museum", "Art Museum",
         "Music", "Jazz"]
    ),
)
def test_property_range_and_tree_consistency(a, b):
    forest = small_forest()
    ca, cb = forest.resolve(a), forest.resolve(b)
    same_tree = forest.tree_id(ca) == forest.tree_id(cb)
    for measure in MEASURES:
        sim = measure.similarity(forest, ca, cb)
        assert 0.0 <= sim <= 1.0
        if same_tree:
            assert sim > 0.0
        else:
            assert sim == 0.0
        if a == b:
            assert sim == 1.0


@settings(deadline=None, max_examples=40)
@given(
    query=st.sampled_from(["Ramen", "Sushi", "Games", "Art Museum", "Jazz"]),
)
def test_property_hierarchy_monotone_up_ancestor_chain(query):
    """Walking the PoI category up toward the lca never increases
    similarity faster than the lca itself (max at the lca level)."""
    forest = small_forest()
    measure = HierarchyWuPalmer()
    cid = forest.resolve(query)
    chain = forest.ancestors(cid)
    sims = [measure.similarity(forest, cid, c) for c in chain]
    # self is perfect, ancestors strictly decreasing with shallower depth
    assert sims[0] == 1.0
    assert all(sims[i] >= sims[i + 1] for i in range(len(sims) - 1))
