"""CSR backend ≡ dict backend: the bit-identical property layer.

The CSR kernels (:mod:`repro.graph.csr`) promise more than "same
distances": they relax edges in the same order and break heap ties the
same way as the dict-based originals, so settle sequences, predecessor
trees, emitted candidate streams — and therefore engine-level routes,
scores *and search statistics* — are identical.  These tests pin that
contract at every layer, plus the early-termination and
predecessor-skip behaviours of the reworked :func:`dijkstra`.
"""

from __future__ import annotations

import math
import random
from contextlib import contextmanager

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import SkySREngine
from repro.graph.csr import (
    csr_enabled,
    csr_graph,
    flat_adjacency,
    set_csr_enabled,
)
from repro.graph.dijkstra import (
    ExpansionCounters,
    ResumableDijkstra,
    bounded_dijkstra,
    dijkstra,
    eccentricity,
    multi_source_min_distance,
    shortest_path,
)

from .conftest import integer_grid, pick_query, random_instance, score_set


@contextmanager
def backend(enabled: bool):
    prev = set_csr_enabled(enabled)
    try:
        yield
    finally:
        set_csr_enabled(prev)


def both_backends(fn, *args, **kwargs):
    """Run ``fn`` under the CSR and the dict backend; return both."""
    with backend(True):
        flat = fn(*args, **kwargs)
    with backend(False):
        plain = fn(*args, **kwargs)
    return flat, plain


# ----------------------------------------------------------------------
# function-level equality


@settings(deadline=None, max_examples=30)
@given(seed=st.integers(0, 10_000), directed=st.booleans())
def test_property_dijkstra_bit_identical(seed, directed):
    rng = random.Random(seed)
    net = integer_grid(4, 4, rng, directed=directed, extra_edges=4)
    source = rng.randrange(net.num_vertices)
    flat, plain = both_backends(
        dijkstra, net, source, with_predecessors=True
    )
    assert flat[0] == plain[0]  # distances
    assert flat[1] == plain[1]  # the exact same shortest-path tree
    if directed:
        flat_r, plain_r = both_backends(
            dijkstra, net, source, reverse=True
        )
        assert flat_r == plain_r


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(0, 10_000))
def test_property_bounded_and_multi_source_identical(seed):
    rng = random.Random(seed)
    net = integer_grid(4, 4, rng, extra_edges=3)
    source = rng.randrange(net.num_vertices)
    radius = float(rng.randint(1, 6))
    assert both_backends(bounded_dijkstra, net, source, radius)[0] == (
        both_backends(bounded_dijkstra, net, source, radius)[1]
    )
    sources = rng.sample(range(net.num_vertices), 3)
    targets = rng.sample(range(net.num_vertices), 3)
    flat, plain = both_backends(
        multi_source_min_distance, net, sources, targets, radius=radius
    )
    assert flat == plain
    assert both_backends(eccentricity, net, source) == (
        both_backends(eccentricity, net, source)
    )


def test_resumable_settle_sequence_identical():
    rng = random.Random(7)
    net = integer_grid(5, 5, rng, extra_edges=4)

    def settle_all():
        search = ResumableDijkstra(net, 0)
        out = []
        while not search.exhausted:
            out.append(search.settle_next())
        return out

    flat, plain = both_backends(settle_all)
    assert flat == plain  # same vertices, same order, same distances


def test_shortest_path_identical_including_work():
    rng = random.Random(8)
    net = integer_grid(5, 5, rng, extra_edges=2)

    def run():
        counters = ExpansionCounters()
        dist, path = shortest_path(net, 0, 24, counters=counters)
        return dist, path, counters.settled, counters.relaxed

    flat, plain = both_backends(run)
    assert flat == plain


# ----------------------------------------------------------------------
# early termination + predecessor skip (the reworked dijkstra options)


def test_target_early_termination_settles_strictly_less():
    rng = random.Random(9)
    net = integer_grid(6, 6, rng, extra_edges=0)
    source, target = 0, 1  # adjacent: settles long before exhaustion
    for enabled in (True, False):
        with backend(enabled):
            full = ExpansionCounters()
            dijkstra(net, source, counters=full)
            early = ExpansionCounters()
            dist = dijkstra(net, source, target=target, counters=early)
            assert early.settled < full.settled
            # the settled target's label is final
            exact = dijkstra(net, source)
            assert dist[target] == exact[target]


def test_predecessor_skip_equivalence():
    rng = random.Random(10)
    net = integer_grid(4, 5, rng, extra_edges=3)
    for enabled in (True, False):
        with backend(enabled):
            bare = dijkstra(net, 0)
            dist, pred = dijkstra(net, 0, with_predecessors=True)
            assert bare == dist
            # every non-source predecessor edge closes the distance
            for v, u in pred.items():
                assert v != 0
                assert u in dist


# ----------------------------------------------------------------------
# engine level: routes, scores and stats pop-for-pop


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(0, 10_000))
def test_property_engine_results_pop_for_pop(seed):
    network, forest, rng = random_instance(seed)
    picked = pick_query(network, forest, rng, 3)
    if picked is None:
        return
    start, cats = picked

    def run():
        engine = SkySREngine(network, forest)
        return engine.query(start, cats)

    flat, plain = both_backends(run)
    assert score_set(flat.routes) == score_set(plain.routes)
    assert [r.pois for r in flat.routes] == [r.pois for r in plain.routes]
    assert flat.stats.routes_expanded == plain.stats.routes_expanded
    assert flat.stats.settled == plain.stats.settled
    assert flat.stats.relaxed == plain.stats.relaxed


def test_session_checkpoint_round_trips_across_backends():
    network, forest, rng = random_instance(23)
    picked = pick_query(network, forest, rng, 3)
    assert picked is not None
    start, cats = picked
    with backend(True):
        engine = SkySREngine(network, forest)
        session = engine.session(start, cats, page_size=1)
        first = list(session.next_page())
        payload = session.dumps()
    with backend(False):
        plain_engine = SkySREngine(network, forest)
        reference = plain_engine.session(start, cats, page_size=1)
        assert score_set(reference.next_page()) == score_set(first)
        restored = type(session).loads(plain_engine, payload)
        assert score_set(restored.next_page()) == score_set(
            reference.next_page()
        )


# ----------------------------------------------------------------------
# the CSR view itself


def test_csr_view_memoized_and_invalidated():
    rng = random.Random(11)
    net = integer_grid(3, 3, rng, extra_edges=0)
    view = csr_graph(net)
    assert csr_graph(net) is view
    net.add_edge(0, 8, 2.0)
    rebuilt = csr_graph(net)
    assert rebuilt is not view
    assert rebuilt.num_edges == net.num_edges


def test_flat_adjacency_respects_toggle():
    rng = random.Random(12)
    net = integer_grid(2, 2, rng, extra_edges=0)
    with backend(False):
        assert not csr_enabled()
        assert flat_adjacency(net) is None
    with backend(True):
        assert csr_enabled()
        n, indptr, indices, weights = flat_adjacency(net)
        assert n == net.num_vertices
        assert len(indices) == len(weights) == indptr[-1]
        # edge order within a vertex is neighbors() order
        for u in range(n):
            mirror = list(
                zip(indices[indptr[u] : indptr[u + 1]],
                    weights[indptr[u] : indptr[u + 1]])
            )
            assert mirror == list(net.neighbors(u))
