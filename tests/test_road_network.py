"""Unit tests for the road-network substrate."""

import pytest

from repro.errors import GraphError
from repro.graph.road_network import RoadNetwork


def test_vertices_and_edges_undirected():
    net = RoadNetwork()
    a, b, c = net.add_vertex(0, 0), net.add_vertex(1, 0), net.add_vertex(2, 0)
    net.add_edge(a, b, 1.5)
    net.add_edge(b, c, 2.5)
    assert net.num_vertices == 3
    assert net.num_edges == 2
    assert net.degree(b) == 2
    assert net.has_edge(a, b) and net.has_edge(b, a)
    assert net.edge_weight(b, c) == 2.5
    assert sorted(net.edges()) == [(a, b, 1.5), (b, c, 2.5)]
    assert net.total_edge_weight() == 4.0
    assert net.neighbors(b) == [(a, 1.5), (c, 2.5)]
    assert net.in_neighbors(b) == net.neighbors(b)


def test_directed_edges_and_reverse_adjacency():
    net = RoadNetwork(directed=True)
    a, b = net.add_vertex(), net.add_vertex()
    net.add_edge(a, b, 3.0)
    assert net.has_edge(a, b)
    assert not net.has_edge(b, a)
    assert net.neighbors(b) == []
    assert net.in_neighbors(b) == [(a, 3.0)]
    assert list(net.edges()) == [(a, b, 3.0)]


def test_edge_validation():
    net = RoadNetwork()
    a, b = net.add_vertex(), net.add_vertex()
    with pytest.raises(GraphError):
        net.add_edge(a, a, 1.0)  # self loop
    with pytest.raises(GraphError):
        net.add_edge(a, b, -0.5)  # negative weight
    with pytest.raises(GraphError):
        net.add_edge(a, 99, 1.0)  # unknown vertex
    with pytest.raises(GraphError):
        net.edge_weight(a, b)  # no edge yet


def test_poi_management():
    net = RoadNetwork()
    a = net.add_vertex()
    p = net.add_poi(7, 1.0, 2.0)
    net.add_edge(a, p, 1.0)
    assert net.is_poi(p) and not net.is_poi(a)
    assert net.poi_categories(p) == (7,)
    assert net.poi_categories(a) == ()
    assert net.poi_vertices() == [p]
    assert net.num_pois == 1 and net.num_road_vertices == 1
    net.set_poi(p, (7, 9, 7))  # duplicates collapse, order kept
    assert net.poi_categories(p) == (7, 9)
    net.clear_poi(p)
    assert not net.is_poi(p)
    with pytest.raises(GraphError):
        net.set_poi(a, ())


def test_coords():
    net = RoadNetwork()
    a = net.add_vertex(1.0, 2.0)
    b = net.add_vertex()
    assert net.coords(a) == (1.0, 2.0)
    assert net.coords(b) is None
    assert not net.has_coords()
    net.set_coords(b, 3.0, 4.0)
    assert net.coords(b) == (3.0, 4.0)
    assert net.has_coords()


def test_connectivity_helpers():
    net = RoadNetwork()
    a, b, c = (net.add_vertex() for _ in range(3))
    net.add_edge(a, b, 1.0)
    assert net.connected_component(a) == {a, b}
    assert not net.is_connected()
    net.add_edge(b, c, 1.0)
    assert net.is_connected()


def test_connectivity_directed_is_weak():
    net = RoadNetwork(directed=True)
    a, b = net.add_vertex(), net.add_vertex()
    net.add_edge(a, b, 1.0)
    assert net.is_connected()  # weak connectivity


def test_summary():
    net = RoadNetwork()
    a = net.add_vertex()
    p = net.add_poi(3)
    net.add_edge(a, p, 2.0)
    card = net.summary()
    assert card == {"|V|": 1, "|P|": 1, "|E|": 1, "directed": False}
    assert "RoadNetwork" in repr(net)


def test_empty_network_is_connected():
    assert RoadNetwork().is_connected()
