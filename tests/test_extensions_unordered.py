"""Unordered skyline trip planning (Section 6) vs permutation oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spec import compile_query
from repro.extensions.unordered import (
    brute_force_unordered,
    run_unordered_skysr,
)
from repro.graph.poi import PoIIndex
from repro.semantics.similarity import HierarchyWuPalmer

from .conftest import pick_query, random_instance, score_set


@settings(deadline=None, max_examples=30)
@given(seed=st.integers(0, 50_000))
def test_property_unordered_matches_permutation_oracle(seed):
    network, forest, rng = random_instance(seed, num_pois=9)
    query = pick_query(network, forest, rng, 3)
    if query is None:
        return
    start, cats = query
    index = PoIIndex(network, forest)
    compiled = compile_query(start, cats, index, HierarchyWuPalmer())
    expected = brute_force_unordered(network, compiled)
    actual, stats = run_unordered_skysr(network, compiled)
    assert score_set(actual) == score_set(expected), f"seed={seed}"
    assert stats.algorithm == "unordered-bssr"


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(0, 50_000))
def test_property_unordered_never_longer_than_ordered(seed):
    """Relaxing the order can only improve the best achievable length."""
    from repro.baselines.brute_force import brute_force_skysr

    network, forest, rng = random_instance(seed, num_pois=9)
    query = pick_query(network, forest, rng, 3)
    if query is None:
        return
    start, cats = query
    index = PoIIndex(network, forest)
    compiled = compile_query(start, cats, index, HierarchyWuPalmer())
    ordered = brute_force_skysr(network, compiled)
    unordered, _ = run_unordered_skysr(network, compiled)
    if not ordered:
        return
    assert unordered
    assert min(r.length for r in unordered) <= min(r.length for r in ordered)


def test_unordered_empty_position():
    network, forest, rng = random_instance(2, num_pois=4)
    index = PoIIndex(network, forest)
    compiled = compile_query(0, ["Jazz", "Ramen"], index, HierarchyWuPalmer())
    if all(s.sim_map for s in compiled.specs):
        pytest.skip("instance unexpectedly has Jazz PoIs")
    routes, _ = run_unordered_skysr(network, compiled)
    assert routes == []


def test_unordered_without_greedy_seed_still_exact():
    for seed in (1, 4, 9):
        network, forest, rng = random_instance(seed, num_pois=8)
        query = pick_query(network, forest, rng, 2)
        if query is None:
            continue
        start, cats = query
        index = PoIIndex(network, forest)
        compiled = compile_query(start, cats, index, HierarchyWuPalmer())
        seeded, _ = run_unordered_skysr(network, compiled)
        unseeded, _ = run_unordered_skysr(
            network, compiled, seed_with_greedy=False
        )
        assert score_set(seeded) == score_set(unseeded)


def test_unordered_routes_use_distinct_pois():
    for seed in range(6):
        network, forest, rng = random_instance(seed, num_pois=10)
        query = pick_query(network, forest, rng, 3, distinct_trees=False)
        if query is None:
            continue
        start, cats = query
        index = PoIIndex(network, forest)
        compiled = compile_query(start, cats, index, HierarchyWuPalmer())
        routes, _ = run_unordered_skysr(network, compiled)
        for route in routes:
            assert len(set(route.pois)) == len(route.pois)
