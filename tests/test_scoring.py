"""Unit + property tests for semantic-score aggregation (Eq. 7)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semantics.scoring import (
    MeanAggregator,
    MinAggregator,
    ProductAggregator,
    aggregator_by_name,
)

AGGREGATORS = [ProductAggregator(), MinAggregator(), MeanAggregator()]


def test_eq7_product_values():
    agg = ProductAggregator()
    assert agg.score_of([1.0, 1.0, 1.0]) == 0.0  # all perfect ⇒ 0
    assert agg.score_of([0.5]) == 0.5
    assert agg.score_of([0.5, 0.5]) == 0.75
    assert agg.score_of([1.0, 2 / 3, 1.0]) == pytest.approx(1 / 3)


def test_min_and_mean_values():
    assert MinAggregator().score_of([1.0, 0.25, 0.5]) == 0.75
    assert MeanAggregator().score_of([1.0, 0.5]) == pytest.approx(0.25)
    assert MeanAggregator().score_of([1.0, 1.0]) == 0.0


def test_mean_requires_positive_length():
    with pytest.raises(ValueError):
        MeanAggregator().initial(0)


def test_registry():
    assert isinstance(aggregator_by_name("product"), ProductAggregator)
    assert isinstance(aggregator_by_name("min"), MinAggregator)
    assert isinstance(aggregator_by_name("mean"), MeanAggregator)
    with pytest.raises(ValueError):
        aggregator_by_name("median")


@pytest.mark.parametrize("agg", AGGREGATORS, ids=lambda a: a.name)
def test_empty_route_scores_zero(agg):
    assert agg.score(agg.initial(4)) == 0.0


@pytest.mark.parametrize("agg", AGGREGATORS, ids=lambda a: a.name)
@settings(deadline=None, max_examples=80)
@given(
    sims=st.lists(
        st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=5,
    )
)
def test_property_prefix_lower_bound(agg, sims):
    """Definition 3.5: a prefix score never exceeds any completion score
    (Lemma 5.2's semantic half)."""
    n = len(sims)
    state = agg.initial(n)
    scores = [agg.score(state)]
    for sim in sims:
        state = agg.extend(state, sim)
        scores.append(agg.score(state))
    assert all(
        scores[i] <= scores[i + 1] + 1e-12 for i in range(len(scores) - 1)
    )
    assert 0.0 <= scores[-1] <= 1.0 + 1e-12


@pytest.mark.parametrize("agg", AGGREGATORS, ids=lambda a: a.name)
@settings(deadline=None, max_examples=60)
@given(
    prefix=st.lists(
        st.floats(min_value=0.05, max_value=1.0), min_size=0, max_size=3
    ),
    sigma=st.floats(min_value=0.05, max_value=0.95),
)
def test_property_min_increment_is_a_lower_bound(agg, prefix, sigma):
    """Appending any non-perfect sim raises the score by >= δ when the
    deviation's similarity is at most the advertised best_nonperfect."""
    n = len(prefix) + 1
    state = agg.initial(n)
    for sim in prefix:
        state = agg.extend(state, sim)
    before = agg.score(state)
    delta = agg.min_increment(state, sigma)
    after = agg.score(agg.extend(state, sigma))
    assert after - before >= delta - 1e-12
    assert agg.min_increment(state, None) == math.inf


def test_min_aggregator_zero_increment_case():
    """A non-perfect sim above the current min costs nothing: δ = 0,
    which must disable Lemma 5.8 (BSSR checks δ > 0)."""
    agg = MinAggregator()
    state = agg.extend(agg.initial(3), 0.4)
    assert agg.min_increment(state, 0.9) == 0.0
    assert agg.min_increment(state, 0.1) == pytest.approx(0.3)
