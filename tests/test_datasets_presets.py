"""Presets (Table 5 stand-ins), taxonomy generator, paper example."""

import pytest

from repro.datasets.presets import by_name, cal_like, mini_city, nyc_like, tokyo_like
from repro.datasets.taxonomy import forest_statistics, synthetic_forest
from repro.errors import DataError


def test_tokyo_like_ratios():
    data = tokyo_like(0.2)
    card = data.summary()
    ratio = card["|P|"] / card["|V|"]
    assert 0.3 < ratio < 0.6  # paper: 174421/401893 ≈ 0.43
    assert card["trees"] == 10
    assert data.network.is_connected()
    assert data.meta["paper"]["|V|"] == 401_893


def test_nyc_like_clustered():
    data = nyc_like(0.2)
    assert data.meta["placement"] == "clustered"
    assert data.summary()["trees"] == 10
    assert data.network.is_connected()


def test_cal_like_poi_heavy():
    data = cal_like(0.2)
    card = data.summary()
    assert card["|P|"] > 2 * card["|V|"]  # paper: 87365/21048 ≈ 4.15
    stats = forest_statistics(data.forest)
    assert stats["max_depth"] == 3
    assert stats["trees"] == 49
    assert 600 <= stats["categories"] <= 700  # paper: 635 categories


def test_presets_deterministic():
    a = tokyo_like(0.1, seed=5)
    b = tokyo_like(0.1, seed=5)
    assert sorted(a.network.edges()) == sorted(b.network.edges())
    assert a.network.poi_vertices() == b.network.poi_vertices()


def test_scale_validation():
    for factory in (tokyo_like, nyc_like, cal_like):
        with pytest.raises(DataError):
            factory(0.0)


def test_by_name_registry():
    assert by_name("mini").name == "figure1"
    assert by_name("figure1").name == "figure1"
    assert by_name("tokyo", 0.1).name == "tokyo-like"
    assert by_name("cal", 0.1, seed=9).meta["seed"] == 9
    with pytest.raises(DataError):
        by_name("berlin")


def test_synthetic_forest_shape():
    forest = synthetic_forest(4, height=3, fanout=3)
    stats = forest_statistics(forest)
    assert stats["trees"] == 4
    assert stats["categories"] == 4 * 13  # 1 + 3 + 9 per tree
    assert stats["leaves"] == 4 * 9
    assert stats["max_depth"] == 3
    forest.validate()
    with pytest.raises(DataError):
        synthetic_forest(0)


def test_mini_city_landmarks(figure1):
    data = mini_city()
    assert "station" in data.landmarks
    assert data.landmarks["station"] == data.landmarks["vq"]
    assert set(figure1.landmarks) <= set(data.landmarks) | {"station"}
    assert data.network.num_pois == 13
    # all 13 PoIs carry Figure-1 categories
    names = {
        data.forest.name_of(data.network.poi_categories(v)[0])
        for v in data.network.poi_vertices()
    }
    assert names == {
        "Asian Restaurant",
        "Italian Restaurant",
        "Arts & Entertainment",
        "Museum",
        "Gift Shop",
        "Hobby Shop",
    }


def test_dataset_summary_and_index_cache(figure1):
    card = figure1.summary()
    assert card["name"] == "figure1"
    assert card["|P|"] == 13
    assert figure1.index is figure1.index  # cached snapshot
