"""Durable sessions: serialization round trips and store semantics.

Three pillars of evidence:

* **round-trip exactness** (the acceptance property) — a session
  serialized to JSON and restored yields pop-for-pop identical pages
  (same scores, same PoIs, same queue pops) as the in-process oracle
  session it was copied from, across every page, including sessions
  serialized *before* their first page, with destinations, and across
  an OS process boundary (the payload really is self-contained);
* **schema negotiation** — unknown payload versions, wrong formats,
  corrupted/truncated JSON, and missing or mistyped fields all raise
  the typed :class:`~repro.errors.SessionDecodeError` naming the
  offending field, never a bare ``KeyError``;
* **store semantics** — TTL expiry (typed, via an injected fake
  clock), LRU eviction order, :class:`~repro.errors.AdmissionError`
  backpressure on budget exhaustion, typed not-found after close, and
  disk-store adoption across instances.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.engine import SkySREngine
from repro.core.options import BSSROptions
from repro.core.serialize import SCHEMA_VERSION
from repro.core.session import PlanningSession
from repro.errors import (
    AdmissionError,
    QueryError,
    SessionDecodeError,
    SessionEncodeError,
    SessionExpiredError,
    SessionNotFoundError,
)
from repro.graph.io import save_dataset
from repro.store import DiskSessionStore, InMemorySessionStore

from .conftest import pick_query, random_instance

PAGES = 4


def page_fingerprint(page):
    """Everything a page must preserve across a round trip."""
    return {
        "scores": [(r.length, round(r.semantic, 12)) for r in page.routes],
        "pois": [r.pois for r in page.routes],
        "first_rank": page.first_rank,
        "pops": page.stats.routes_expanded,
        "exhausted": page.exhausted,
    }


def _engine_and_query(seed, size=3, **session_kwargs):
    network, forest, rng = random_instance(seed)
    picked = pick_query(network, forest, rng, size)
    if picked is None:
        pytest.skip("instance admits no query of this size")
    start, cats = picked
    return SkySREngine(network, forest), start, cats


# ---------------------------------------------------------------------------
# round-trip exactness (the acceptance property)


@pytest.mark.parametrize("seed", range(10))
def test_round_trip_pages_match_oracle_pop_for_pop(seed):
    """Serialize -> deserialize -> resume gives pages identical to the
    in-process oracle session: scores, PoIs, ranks, AND queue pops.

    The restored copy is re-serialized before *every* page, so the
    property covers payloads of started sessions at every depth, not
    just the newborn one.
    """
    engine, start, cats = _engine_and_query(seed)
    oracle = engine.session(start, cats, page_size=2)
    text = engine.session(start, cats, page_size=2).dumps()
    for _ in range(PAGES):
        restored = PlanningSession.loads(engine, text)
        expected = page_fingerprint(oracle.next_page())
        assert page_fingerprint(restored.next_page()) == expected
        text = restored.dumps()
        if expected["exhausted"]:
            break


@pytest.mark.parametrize("seed", [1, 4, 9])
def test_round_trip_survives_json_text_not_just_dicts(seed):
    """dumps/loads (the at-rest form) is lossless, not merely to_dict."""
    engine, start, cats = _engine_and_query(seed)
    session = engine.session(start, cats, page_size=3)
    session.next_page()
    clone = PlanningSession.loads(engine, session.dumps())
    # identical continuation from the JSON text
    assert page_fingerprint(clone.next_page()) == page_fingerprint(
        session.next_page()
    )
    # and the payload is pure JSON (round-trips through the codec)
    payload = json.loads(session.dumps())
    assert payload == json.loads(json.dumps(payload))


@pytest.mark.parametrize("seed", [2, 7])
def test_round_trip_with_destination(seed):
    network, forest, rng = random_instance(seed)
    picked = pick_query(network, forest, rng, 2)
    if picked is None:
        pytest.skip("instance admits no query of this size")
    start, cats = picked
    destination = rng.randrange(network.num_vertices)
    engine = SkySREngine(network, forest)
    oracle = engine.session(start, cats, destination=destination, page_size=2)
    copy = engine.session(start, cats, destination=destination, page_size=2)
    copy.next_page()
    restored = PlanningSession.loads(engine, copy.dumps())
    oracle.next_page()
    assert page_fingerprint(restored.next_page()) == page_fingerprint(
        oracle.next_page()
    )


@pytest.mark.parametrize("seed", [0, 5])
def test_round_trip_with_diversity(seed):
    engine, start, cats = _engine_and_query(seed)
    oracle = engine.session(start, cats, page_size=2, diversity_lambda=0.5)
    copy = engine.session(start, cats, page_size=2, diversity_lambda=0.5)
    for _ in range(3):
        copy = PlanningSession.loads(engine, copy.dumps())
        expected = page_fingerprint(oracle.next_page())
        assert page_fingerprint(copy.next_page()) == expected
        if expected["exhausted"]:
            break


@pytest.mark.parametrize("seed", range(6))
def test_restored_resume_beats_fresh_recompute(seed):
    """The acceptance inequality: restoring + resuming does strictly
    fewer queue pops than recomputing the widened query from scratch."""
    engine, start, cats = _engine_and_query(seed)
    session = engine.session(start, cats, page_size=2)
    session.next_page()
    restored = PlanningSession.loads(engine, session.dumps())
    page2 = restored.next_page()
    if page2.stats.extra.get("exhausted"):
        pytest.skip("instance exhausted on page 1 — no resume work to save")
    fresh = engine.query(start, cats, options=BSSROptions().but(k=4))
    assert page2.stats.routes_expanded < fresh.stats.routes_expanded


def test_unstarted_session_round_trip():
    """A session serialized before page 1 restores and starts cleanly."""
    engine, start, cats = _engine_and_query(0)
    oracle = engine.session(start, cats, page_size=2)
    restored = PlanningSession.loads(
        engine, engine.session(start, cats, page_size=2).dumps()
    )
    assert not restored.started
    assert page_fingerprint(restored.next_page()) == page_fingerprint(
        oracle.next_page()
    )


def test_non_checkpointable_search_refuses_to_serialize():
    engine, start, cats = _engine_and_query(3)
    session = engine.session(start, cats, page_size=2)
    session.next_page()
    session._search.checkpointable = False
    with pytest.raises(SessionEncodeError):
        session.to_dict()


# ---------------------------------------------------------------------------
# cross-process round trip (the payload is genuinely self-contained)


_CHILD = """
import json, sys
from repro.core.session import PlanningSession
from repro.core.engine import SkySREngine
from repro.graph.io import load_dataset

dataset_path, session_path = sys.argv[1], sys.argv[2]
network, forest = load_dataset(dataset_path)
engine = SkySREngine(network, forest)
with open(session_path, encoding="utf-8") as fh:
    session = PlanningSession.loads(engine, fh.read())
page = session.next_page()
print(json.dumps({
    "scores": [(r.length, round(r.semantic, 12)) for r in page.routes],
    "pois": [list(r.pois) for r in page.routes],
    "first_rank": page.first_rank,
    "pops": page.stats.routes_expanded,
}))
"""


def test_cross_process_round_trip(tmp_path: Path):
    """Page 1 here, page 2 in a fresh OS process restoring from a file:
    identical routes and identical (strictly-fewer-than-fresh) pops."""
    network, forest, rng = random_instance(1)
    picked = pick_query(network, forest, rng, 3)
    if picked is None:
        pytest.skip("instance admits no query of this size")
    start, cats = picked
    engine = SkySREngine(network, forest)

    dataset_path = tmp_path / "city.json"
    save_dataset(dataset_path, network, forest)
    session = engine.session(start, cats, page_size=2)
    session.next_page()
    session_path = tmp_path / "session.json"
    session_path.write_text(session.dumps(), encoding="utf-8")

    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(dataset_path), str(session_path)],
        capture_output=True,
        text=True,
        check=True,
    )
    child = json.loads(proc.stdout)

    oracle_page2 = session.next_page()  # the same session, in-process
    assert child["scores"] == [
        [r.length, round(r.semantic, 12)] for r in oracle_page2.routes
    ]
    assert child["pois"] == [list(r.pois) for r in oracle_page2.routes]
    assert child["first_rank"] == oracle_page2.first_rank
    assert child["pops"] == oracle_page2.stats.routes_expanded
    fresh = engine.query(start, cats, options=BSSROptions().but(k=4))
    assert child["pops"] < fresh.stats.routes_expanded


# ---------------------------------------------------------------------------
# schema-version negotiation and strict decoding


def _payload(seed=0, pages=1):
    engine, start, cats = _engine_and_query(seed)
    session = engine.session(start, cats, page_size=2)
    for _ in range(pages):
        session.next_page()
    return engine, session.to_dict()


def test_version_bump_is_rejected_with_field():
    engine, payload = _payload()
    payload["version"] = SCHEMA_VERSION + 1
    with pytest.raises(SessionDecodeError) as exc:
        PlanningSession.from_dict(engine, payload)
    assert exc.value.field == "version"
    assert str(SCHEMA_VERSION + 1) in str(exc.value)


def test_wrong_format_is_rejected_with_field():
    engine, payload = _payload()
    payload["format"] = "not-a-session"
    with pytest.raises(SessionDecodeError) as exc:
        PlanningSession.from_dict(engine, payload)
    assert exc.value.field == "format"


def test_aggregator_mismatch_is_rejected_with_field():
    engine, payload = _payload()
    payload["aggregator"] = "min"
    with pytest.raises(SessionDecodeError) as exc:
        PlanningSession.from_dict(engine, payload)
    assert exc.value.field == "aggregator"


def test_corrupted_json_text_raises_typed_error():
    engine, payload = _payload()
    text = json.dumps(payload)
    with pytest.raises(SessionDecodeError) as exc:
        PlanningSession.loads(engine, text[: len(text) // 2])  # truncated
    assert exc.value.field == "<json>"
    with pytest.raises(SessionDecodeError):
        PlanningSession.loads(engine, "{not json")


@pytest.mark.parametrize(
    "mutate, field",
    [
        (lambda p: p.pop("search"), "search"),
        (lambda p: p.pop("query"), "query"),
        (lambda p: p.__setitem__("page_size", "two"), "page_size"),
        (lambda p: p.__setitem__("page_size", True), "page_size"),
        (lambda p: p.__setitem__("served", 3), "served"),
        (lambda p: p["search"].pop("state"), "state"),
        (lambda p: p["search"]["state"].__setitem__("queue", 7), "queue"),
    ],
)
def test_missing_or_mistyped_fields_name_the_field(mutate, field):
    """Strict decoding: never a KeyError/TypeError, always the typed
    error naming the offending field."""
    engine, payload = _payload()
    mutate(payload)
    with pytest.raises(SessionDecodeError) as exc:
        PlanningSession.from_dict(engine, payload)
    assert exc.value.field == field


def test_corrupt_route_payload_is_wrapped_not_raw():
    engine, payload = _payload()
    payload["search"]["state"]["skyband"][0]["pois"] = "oops"
    with pytest.raises(SessionDecodeError):
        PlanningSession.from_dict(engine, payload)


# ---------------------------------------------------------------------------
# store semantics


def test_put_get_delete_and_typed_not_found():
    store = InMemorySessionStore()
    store.put("a", {"x": 1})
    assert store.get("a") == {"x": 1}
    assert "a" in store and len(store) == 1
    assert store.delete("a") is True
    assert store.delete("a") is False
    with pytest.raises(SessionNotFoundError) as exc:
        store.get("a")
    assert not isinstance(exc.value, SessionExpiredError)


def test_ttl_expiry_is_typed_and_counted():
    now = [0.0]
    store = InMemorySessionStore(ttl=10.0, clock=lambda: now[0])
    store.put("a", {"x": 1})
    now[0] = 5.0
    assert store.get("a") == {"x": 1}
    now[0] = 20.0
    with pytest.raises(SessionExpiredError):
        store.get("a")
    assert isinstance(SessionExpiredError("x"), SessionNotFoundError)
    assert store.stats.expirations == 1
    assert "a" not in store and len(store) == 0


def test_touch_refreshes_ttl():
    now = [0.0]
    store = InMemorySessionStore(ttl=10.0, clock=lambda: now[0])
    store.put("a", {"x": 1})
    now[0] = 8.0
    store.touch("a")
    now[0] = 15.0  # would have expired without the touch
    assert store.get("a") == {"x": 1}


def test_lru_eviction_order_refreshed_by_reads():
    store = InMemorySessionStore(max_entries=2)
    store.put("a", {"v": 1})
    store.put("b", {"v": 2})
    store.get("a")  # refresh a; b becomes LRU
    store.put("c", {"v": 3})
    assert "b" not in store and "a" in store and "c" in store
    assert store.stats.evictions == 1
    assert store.ids() == ["a", "c"]  # least recently used first


def test_byte_budget_evicts_lru():
    store = InMemorySessionStore(max_bytes=100)
    store.put("a", {"v": "x" * 30})
    store.put("b", {"v": "y" * 30})
    store.put("c", {"v": "z" * 30})
    assert "a" not in store and "b" in store and "c" in store


def test_admission_error_when_eviction_disabled():
    store = InMemorySessionStore(max_entries=1, evict=False)
    store.put("a", {"v": 1})
    with pytest.raises(AdmissionError):
        store.put("b", {"v": 2})
    store.put("a", {"v": 9})  # replacing the same id is always admitted
    assert store.get("a") == {"v": 9}


def test_admission_error_when_payload_can_never_fit():
    store = InMemorySessionStore(max_bytes=8)
    with pytest.raises(AdmissionError):
        store.put("a", {"big": "x" * 100})


@pytest.mark.parametrize("bad", ["", "a/b", ".hidden", "a b", "x\n"])
def test_unsafe_session_ids_are_rejected(bad):
    with pytest.raises(QueryError):
        InMemorySessionStore().put(bad, {})


def test_store_round_trips_real_session_payloads():
    engine, payload = _payload(pages=1)
    store = InMemorySessionStore()
    store.put("trip", payload)
    restored = PlanningSession.from_dict(engine, store.get("trip"))
    assert restored.started and len(restored.served) == 2


# ---------------------------------------------------------------------------
# disk store


def test_disk_store_adopts_existing_files(tmp_path: Path):
    first = DiskSessionStore(tmp_path)
    first.put("sess-1", {"hello": "world"})
    first.put("sess-2", {"n": 2})
    second = DiskSessionStore(tmp_path)  # fresh instance, same directory
    assert len(second) == 2
    assert second.get("sess-1") == {"hello": "world"}
    assert sorted(second.ids()) == ["sess-1", "sess-2"]


def test_disk_store_corruption_is_typed(tmp_path: Path):
    store = DiskSessionStore(tmp_path)
    store.put("s", {"ok": True})
    (tmp_path / "s.json").write_text("{truncated", encoding="utf-8")
    with pytest.raises(SessionDecodeError) as exc:
        store.get("s")
    assert exc.value.field == "<json>"


def test_disk_store_delete_removes_file(tmp_path: Path):
    store = DiskSessionStore(tmp_path)
    store.put("s", {"ok": True})
    assert (tmp_path / "s.json").exists()
    store.delete("s")
    assert not (tmp_path / "s.json").exists()
    assert list(tmp_path.glob("*.tmp")) == []  # atomic write left no junk
