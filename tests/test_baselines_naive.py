"""Naive SkySR (super-sequence enumeration) vs the brute-force oracle."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute_force import (
    brute_force_skysr,
    enumerate_sequenced_routes,
)
from repro.baselines.naive import naive_skysr
from repro.baselines.supercat import (
    ancestor_options,
    count_super_sequences,
    super_sequences,
)
from repro.core.spec import compile_query
from repro.graph.poi import PoIIndex
from repro.semantics.similarity import HierarchyWuPalmer

from .conftest import pick_query, random_instance, score_set, small_forest


def test_ancestor_options_and_enumeration():
    forest = small_forest()
    ramen = forest.resolve("Ramen")
    gift = forest.resolve("Gift")
    options = ancestor_options(forest, ramen)
    assert [forest.name_of(c) for c in options] == ["Ramen", "Asian", "Food"]
    sequences = list(super_sequences(forest, [ramen, gift]))
    assert len(sequences) == 6  # 3 ancestors × 2 ancestors
    assert sequences[0] == (ramen, gift)  # original first
    assert count_super_sequences(forest, [ramen, gift]) == 6
    assert count_super_sequences(forest, [ramen, ramen, gift]) == 18


@pytest.mark.parametrize("method", ["dijkstra", "pne"])
@settings(deadline=None, max_examples=25)
@given(seed=st.integers(0, 50_000))
def test_property_naive_matches_oracle(method, seed):
    network, forest, rng = random_instance(seed, num_pois=10)
    query = pick_query(network, forest, rng, 3)
    if query is None:
        return
    start, cats = query
    index = PoIIndex(network, forest)
    compiled = compile_query(start, cats, index, HierarchyWuPalmer())
    expected = brute_force_skysr(network, compiled)
    actual, stats = naive_skysr(
        network, index, start, cats, method=method
    )
    assert score_set(actual) == score_set(expected), f"seed={seed}"
    assert stats.super_sequences == count_super_sequences(forest, cats)
    assert stats.osr_calls == stats.super_sequences


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(0, 50_000))
def test_property_naive_with_destination(seed):
    network, forest, rng = random_instance(seed, num_pois=8)
    query = pick_query(network, forest, rng, 2)
    if query is None:
        return
    start, cats = query
    dest = rng.randrange(network.num_vertices)
    index = PoIIndex(network, forest)
    compiled = compile_query(
        start, cats, index, HierarchyWuPalmer(), destination=dest
    )
    expected = brute_force_skysr(network, compiled)
    actual, _ = naive_skysr(
        network, index, start, cats, method="dijkstra", destination=dest
    )
    assert score_set(actual) == score_set(expected), f"seed={seed}"


def test_naive_rejects_unknown_method():
    network, forest, rng = random_instance(0)
    index = PoIIndex(network, forest)
    with pytest.raises(ValueError):
        naive_skysr(network, index, 0, [forest.resolve("Ramen")], method="x")


def test_naive_deadline_sets_timeout_flag():
    network, forest, rng = random_instance(1, num_pois=12)
    query = pick_query(network, forest, rng, 3)
    if query is None:
        pytest.skip("no query")
    start, cats = query
    index = PoIIndex(network, forest)
    _, stats = naive_skysr(
        network, index, start, cats, deadline=0.0
    )
    assert stats.extra.get("timed_out")


def test_enumerate_sequenced_routes_superset_of_skyline():
    network, forest, rng = random_instance(4, num_pois=9)
    query = pick_query(network, forest, rng, 2)
    if query is None:
        pytest.skip("no query")
    start, cats = query
    index = PoIIndex(network, forest)
    compiled = compile_query(start, cats, index, HierarchyWuPalmer())
    every = enumerate_sequenced_routes(network, compiled)
    skyline = brute_force_skysr(network, compiled)
    assert score_set(skyline) <= score_set(every)
    assert len(every) >= len(skyline)
    for route in every:
        assert len(set(route.pois)) == len(route.pois)
