"""SearchStats bookkeeping: merge, mean, export."""

from repro.core.stats import SearchStats, mean_stats


def test_as_dict_flattens_extra():
    stats = SearchStats(algorithm="bssr", settled=5)
    stats.extra["custom"] = 42
    payload = stats.as_dict()
    assert payload["algorithm"] == "bssr"
    assert payload["settled"] == 5
    assert payload["custom"] == 42
    assert "extra" not in payload


def test_merge_sums_and_maxes():
    a = SearchStats(settled=5, elapsed=1.0, max_queue_size=3)
    b = SearchStats(settled=7, elapsed=0.5, max_queue_size=9)
    a.merge(b)
    assert a.settled == 12
    assert a.elapsed == 1.5
    assert a.max_queue_size == 9


def test_mean_stats():
    a = SearchStats(algorithm="x", settled=10, elapsed=2.0)
    b = SearchStats(algorithm="x", settled=20, elapsed=4.0)
    a.init_length_ratio = 0.5
    mean = mean_stats([a, b])
    assert mean.settled == 15
    assert mean.elapsed == 3.0
    assert mean.algorithm == "x"
    assert mean.init_length_ratio == 0.5  # only defined values averaged


def test_mean_stats_empty():
    assert mean_stats([]).settled == 0


def test_mean_stats_no_ratios():
    mean = mean_stats([SearchStats(), SearchStats()])
    assert mean.init_length_ratio is None
