"""The embedded Foursquare-style taxonomy."""

from repro.semantics.foursquare import (
    build_foursquare_forest,
    root_names,
    taxonomy_size,
)


def test_ten_trees():
    forest = build_foursquare_forest()
    assert len(forest.roots) == 10  # Foursquare's 10 top-level trees
    assert len(root_names()) == 10
    assert len(forest) == taxonomy_size()
    forest.validate()


def test_paper_categories_present():
    """Every category the paper names must exist with the right shape."""
    forest = build_foursquare_forest()
    # Figure 2
    for name in (
        "Asian Restaurant",
        "Italian Restaurant",
        "Bakery",
        "Gift Shop",
        "Hobby Shop",
        "Clothing Store",
        "Men's Store",
        "Sushi Restaurant",
    ):
        assert name in forest
    assert forest.parent_of("Men's Store") == forest.resolve("Clothing Store")
    assert forest.parent_of("Sushi Restaurant") == forest.resolve(
        "Japanese Restaurant"
    )
    # Table 1 (NYC example)
    assert forest.parent_of("Cupcake Shop") == forest.resolve("Dessert Shop")
    assert forest.parent_of("Art Museum") == forest.resolve("Museum")
    assert forest.parent_of("Jazz Club") == forest.resolve("Music Venue")
    # Table 9 (Tokyo use case): Bar subsumes Beer Garden and Sake Bar
    assert forest.parent_of("Beer Garden") == forest.resolve("Bar")
    assert forest.parent_of("Sake Bar") == forest.resolve("Bar")


def test_tree_structure_depth():
    forest = build_foursquare_forest()
    assert forest.max_depth() == 3
    food = forest.resolve("Food")
    assert forest.depth(food) == 1
    assert forest.depth("Asian Restaurant") == 2
    assert forest.depth("Chinese Restaurant") == 3
    assert forest.tree_id("Sushi Restaurant") == food


def test_trees_are_disjoint():
    forest = build_foursquare_forest()
    assert forest.lca("Sushi Restaurant", "Gift Shop") is None
    assert forest.lca("Bar", "Jazz Club") is None  # Nightlife vs A&E
