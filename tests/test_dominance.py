"""Skyline dominance + minimal-set invariants (Definitions 4.1/4.2/5.4)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dominance import (
    SkylineSet,
    dominates,
    equivalent,
    skyline_filter,
)
from repro.core.routes import SkylineRoute


def _route(length, semantic, pois=(1,)):
    return SkylineRoute(pois=tuple(pois), length=length, semantic=semantic)


def test_dominates_definition():
    assert dominates((1.0, 0.5), (2.0, 0.5))
    assert dominates((1.0, 0.4), (1.0, 0.5))
    assert dominates((1.0, 0.4), (2.0, 0.5))
    assert not dominates((1.0, 0.5), (1.0, 0.5))  # equivalence ≠ dominance
    assert not dominates((1.0, 0.6), (2.0, 0.5))  # incomparable
    assert not dominates((2.0, 0.5), (1.0, 0.6))


def test_equivalent():
    assert equivalent((1.0, 0.5), (1.0, 0.5))
    assert not equivalent((1.0, 0.5), (1.0, 0.4))


def test_skyline_set_update_and_eviction():
    sky = SkylineSet()
    assert sky.update(_route(10.0, 0.0, (1,)))
    assert sky.update(_route(5.0, 0.5, (2,)))
    assert len(sky) == 2
    # dominated by (5, 0.5) → rejected
    assert not sky.update(_route(6.0, 0.5, (3,)))
    assert not sky.update(_route(5.0, 0.6, (4,)))
    # equivalent → rejected, first stays
    assert not sky.update(_route(5.0, 0.5, (5,)))
    assert sky.routes()[0].pois == (2,)
    # dominates both → evicts both
    assert sky.update(_route(4.0, 0.0, (6,)))
    assert len(sky) == 1
    assert sky.updates == 3 and sky.rejects == 3


def test_threshold_definition_5_4():
    sky = SkylineSet()
    sky.update(_route(10.0, 0.0))
    sky.update(_route(7.0, 0.2))
    sky.update(_route(4.0, 0.6))
    assert sky.threshold(0.0) == 10.0
    assert sky.threshold(0.1) == 10.0
    assert sky.threshold(0.2) == 7.0
    assert sky.threshold(0.5) == 7.0
    assert sky.threshold(0.6) == 4.0
    assert sky.threshold(1.0) == 4.0
    assert sky.perfect_route_length() == 10.0
    assert SkylineSet().threshold(1.0) == math.inf


def test_dominated_or_equal():
    sky = SkylineSet()
    sky.update(_route(5.0, 0.3))
    assert sky.dominated_or_equal(5.0, 0.3)
    assert sky.dominated_or_equal(6.0, 0.3)
    assert sky.dominated_or_equal(5.0, 0.4)
    assert not sky.dominated_or_equal(4.9, 0.3)
    assert not sky.dominated_or_equal(5.0, 0.29)


def test_skyline_entries_sorted():
    sky = SkylineSet()
    for length, semantic in [(9, 0.1), (3, 0.9), (6, 0.4)]:
        sky.update(_route(float(length), semantic, (length,)))
    lengths = [r.length for r in sky.routes()]
    semantics = [r.semantic for r in sky.routes()]
    assert lengths == sorted(lengths)
    assert semantics == sorted(semantics, reverse=True)


score_pairs = st.tuples(
    st.integers(min_value=0, max_value=20).map(float),
    st.integers(min_value=0, max_value=10).map(lambda s: s / 10.0),
)


@settings(deadline=None, max_examples=100)
@given(scores=st.lists(score_pairs, min_size=0, max_size=30))
def test_property_skyline_filter_invariants(scores):
    routes = [
        _route(length, semantic, (i,))
        for i, (length, semantic) in enumerate(scores)
    ]
    skyline = skyline_filter(routes)
    pairs = [r.scores() for r in skyline]
    # 1. mutual non-domination, no equivalents
    for i, a in enumerate(pairs):
        for j, b in enumerate(pairs):
            if i != j:
                assert not dominates(a, b)
                assert not equivalent(a, b)
    # 2. completeness: every input dominated by or equivalent to a member
    for route in routes:
        assert any(
            dominates(p, route.scores()) or equivalent(p, route.scores())
            for p in pairs
        )
    # 3. idempotence
    assert {r.scores() for r in skyline_filter(skyline)} == set(pairs)
    # 4. order insensitivity (score-wise)
    reversed_result = skyline_filter(list(reversed(routes)))
    assert {r.scores() for r in reversed_result} == set(pairs)


@settings(deadline=None, max_examples=60)
@given(scores=st.lists(score_pairs, min_size=1, max_size=25))
def test_property_threshold_is_min_over_feasible(scores):
    sky = SkylineSet()
    for i, (length, semantic) in enumerate(scores):
        sky.update(_route(length, semantic, (i,)))
    for probe in [s / 10.0 for s in range(11)]:
        feasible = [r.length for r in sky if r.semantic <= probe]
        expected = min(feasible) if feasible else math.inf
        assert sky.threshold(probe) == expected


# ---------------------------------------------------------------------------
# deterministic tie-break (lexicographic PoI ids)


def test_equivalence_collapse_keeps_lexicographically_smallest_pois():
    """Regression: equal-score routes collapse to a *defined*
    representative — the lexicographically smallest PoI tuple — no
    matter the insertion order."""
    late_winner = SkylineSet()
    late_winner.update(_route(5.0, 0.5, (9, 2)))
    late_winner.update(_route(5.0, 0.5, (3, 7)))
    assert [r.pois for r in late_winner] == [(3, 7)]

    early_winner = SkylineSet()
    early_winner.update(_route(5.0, 0.5, (3, 7)))
    early_winner.update(_route(5.0, 0.5, (9, 2)))
    assert [r.pois for r in early_winner] == [(3, 7)]

    # membership counters are unaffected by the representative swap
    assert late_winner.updates == early_winner.updates == 1
    assert late_winner.rejects == early_winner.rejects == 1


def test_skyband_collapse_is_order_independent_on_representatives():
    import itertools
    import random

    from repro.core.dominance import skyband_filter

    rng = random.Random(5)
    routes = [
        _route(float(rng.randint(1, 4)), rng.randint(0, 2) / 2.0, (i, j))
        for i, j in itertools.product(range(4), range(4))
        if i != j
    ]
    reference = [r.pois for r in skyband_filter(routes, 2)]
    for _ in range(10):
        rng.shuffle(routes)
        assert [r.pois for r in skyband_filter(routes, 2)] == reference


def test_rank_routes_breaks_score_ties_by_pois():
    from repro.core.dominance import rank_routes

    a = _route(5.0, 0.5, (4, 1))
    b = _route(5.0, 0.5, (2, 9))
    c = _route(5.0, 0.5, (2, 3))
    ranked = rank_routes([a, b, c])
    assert [r.pois for r in ranked] == [(2, 3), (2, 9), (4, 1)]
    # deterministic under any input order
    assert rank_routes([c, a, b]) == ranked
