"""PoI placement: edge embedding, category skew, clustering."""

import math
import random
import statistics

import pytest

from repro.datasets.poi_placement import (
    assign_categories,
    place_pois_clustered,
    place_pois_uniform,
    zipf_weights,
)
from repro.datasets.synthetic import grid_city
from repro.errors import DataError
from repro.graph.dijkstra import dijkstra
from repro.graph.spatial import euclidean

from .conftest import small_forest


def test_zipf_weights_decreasing():
    weights = zipf_weights(5)
    assert weights == [1.0, 0.5, 1 / 3, 0.25, 0.2]
    assert all(a > b for a, b in zip(weights, weights[1:]))


def test_assign_categories_skew():
    rng = random.Random(0)
    cats = list(range(20))
    drawn = assign_categories(5000, cats, rng, skew=1.2)
    counts = sorted(
        (drawn.count(c) for c in cats), reverse=True
    )
    assert counts[0] > counts[-1] * 3  # visibly biased
    with pytest.raises(DataError):
        assign_categories(5, [], rng)


def test_place_pois_uniform_embeds_on_edges():
    forest = small_forest()
    net = grid_city(6, 6, seed=3)
    edges_before = net.num_edges
    before = dijkstra(net, 0)
    pois = place_pois_uniform(net, forest, 25, seed=4)
    assert len(pois) == 25
    assert net.num_pois == 25
    assert net.num_edges == edges_before + 50  # two half-edges per PoI
    # every PoI has exactly two road attachments summing to an edge weight
    for pid in pois:
        assert net.degree(pid) == 2
        assert net.is_poi(pid)
        assert net.coords(pid) is not None
    # shortest paths between original vertices are unchanged
    after = dijkstra(net, 0)
    for vid, dist in before.items():
        assert after[vid] == pytest.approx(dist)


def test_place_pois_uniform_category_restriction():
    forest = small_forest()
    net = grid_city(4, 4, seed=5)
    only = [forest.resolve("Gift")]
    pois = place_pois_uniform(net, forest, 8, categories=only, seed=6)
    for pid in pois:
        assert net.poi_categories(pid) == (forest.resolve("Gift"),)


def test_place_pois_clustered_is_spatially_concentrated():
    forest = small_forest()
    uniform_net = grid_city(14, 14, seed=7)
    clustered_net = grid_city(14, 14, seed=7)
    place_pois_uniform(uniform_net, forest, 60, seed=8)
    place_pois_clustered(
        clustered_net, forest, 60, num_clusters=2, walk_length=2, seed=8
    )

    def mean_pairwise(net):
        coords = [net.coords(p) for p in net.poi_vertices()]
        pairs = [
            euclidean(a, b)
            for i, a in enumerate(coords)
            for b in coords[i + 1:]
        ]
        return statistics.mean(pairs)

    assert mean_pairwise(clustered_net) < mean_pairwise(uniform_net)


def test_placement_requires_edges():
    forest = small_forest()
    from repro.graph.road_network import RoadNetwork

    empty = RoadNetwork()
    empty.add_vertex()
    with pytest.raises(DataError):
        place_pois_uniform(empty, forest, 3)
