"""Shared fixtures and instance builders for the test suite.

Randomized correctness tests use *integer* edge weights so length
scores are exact floats and algorithm outputs can be compared with
strict equality; semantic scores are products of identical per-position
similarity values computed in identical order, hence also bit-equal.
"""

from __future__ import annotations

import random

import pytest

from repro.datasets.paper_example import figure1_dataset
from repro.graph.road_network import RoadNetwork
from repro.semantics.category import CategoryForest
from repro.semantics.foursquare import build_foursquare_forest


def score_set(routes) -> set[tuple[float, float]]:
    """Comparable score-pair set of a route list."""
    return {(round(r.length, 9), round(r.semantic, 9)) for r in routes}


def small_forest() -> CategoryForest:
    """A compact 3-tree forest exercising depths 1-3."""
    forest = CategoryForest()
    forest.add_path("Food", "Asian", "Ramen")
    forest.add_path("Food", "Asian", "Sushi")
    forest.add_path("Food", "Italian")
    forest.add_path("Food", "Bakery")
    forest.add_path("Shop", "Gift")
    forest.add_path("Shop", "Hobby", "Games")
    forest.add_path("Shop", "Clothes")
    forest.add_path("Fun", "Museum", "Art Museum")
    forest.add_path("Fun", "Music", "Jazz")
    return forest


def attach_integer_pois(
    network: RoadNetwork,
    count: int,
    categories: list[int],
    rng: random.Random,
    *,
    max_spur: int = 2,
) -> list[int]:
    """Attach PoIs as spur vertices with small integer edge weights."""
    road = [v for v in network.vertices() if not network.is_poi(v)]
    pois = []
    for _ in range(count):
        anchor = road[rng.randrange(len(road))]
        category = categories[rng.randrange(len(categories))]
        pid = network.add_poi(category)
        network.add_edge(anchor, pid, float(rng.randint(1, max_spur)))
        if network.directed:
            network.add_edge(pid, anchor, float(rng.randint(1, max_spur)))
        pois.append(pid)
    return pois


def integer_grid(
    rows: int,
    cols: int,
    rng: random.Random,
    *,
    directed: bool = False,
    extra_edges: int = 3,
) -> RoadNetwork:
    """Grid with unit weights plus a few random integer chords."""
    network = RoadNetwork(directed=directed)
    ids = [
        [network.add_vertex(float(c), float(r)) for c in range(cols)]
        for r in range(rows)
    ]
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                network.add_edge(ids[r][c], ids[r][c + 1], 1.0)
                if directed:
                    network.add_edge(ids[r][c + 1], ids[r][c], 1.0)
            if r + 1 < rows:
                network.add_edge(ids[r][c], ids[r + 1][c], 1.0)
                if directed:
                    network.add_edge(ids[r + 1][c], ids[r][c], 1.0)
    n = rows * cols
    for _ in range(extra_edges):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            network.add_edge(u, v, float(rng.randint(1, 4)))
    return network


def random_instance(
    seed: int,
    *,
    rows: int = 4,
    cols: int = 4,
    num_pois: int = 10,
    directed: bool = False,
    forest: CategoryForest | None = None,
):
    """A reproducible small (network, forest, rng) test instance."""
    rng = random.Random(seed)
    forest = forest or small_forest()
    network = integer_grid(rows, cols, rng, directed=directed)
    leaf_ids = forest.leaves()
    attach_integer_pois(network, num_pois, leaf_ids, rng)
    return network, forest, rng


def pick_query(network, forest, rng, size, *, distinct_trees=True):
    """A query whose positions have at least one candidate each.

    Returns (start, category ids) or None when the instance cannot
    support a query of this size.
    """
    by_tree: dict[int, list[int]] = {}
    for _vid, cats in network.poi_items():
        for cid in cats:
            by_tree.setdefault(forest.tree_id(cid), []).append(cid)
    if distinct_trees:
        if len(by_tree) < size:
            return None
        trees = rng.sample(list(by_tree), size)
        cats = [by_tree[t][rng.randrange(len(by_tree[t]))] for t in trees]
    else:
        pool = [cid for cids in by_tree.values() for cid in cids]
        if not pool:
            return None
        cats = [pool[rng.randrange(len(pool))] for _ in range(size)]
    start = rng.randrange(network.num_vertices)
    return start, cats


@pytest.fixture(scope="session")
def figure1():
    return figure1_dataset()


@pytest.fixture(scope="session")
def foursquare():
    return build_foursquare_forest()


@pytest.fixture()
def rng():
    return random.Random(12345)
