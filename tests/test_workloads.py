"""Workload generation per the paper's Section 7.1 recipe."""

import pytest

from repro.datasets.presets import cal_like, tokyo_like
from repro.datasets.workloads import (
    generate_workload,
    popular_leaf_categories,
)
from repro.errors import DataError


@pytest.fixture(scope="module")
def data():
    return tokyo_like(0.15)


def test_popular_leaves_have_pois(data):
    counts = data.index.category_counts()
    popular = popular_leaf_categories(data)
    assert popular
    for cid in popular:
        assert counts[cid] >= 2
        assert data.forest.category(cid).is_leaf


def test_popular_leaves_threshold_override(data):
    loose = popular_leaf_categories(data, min_count=1)
    strict = popular_leaf_categories(data, min_count=10_000)
    assert set(strict) <= set(loose)
    assert len(strict) == 0 or len(loose) >= len(strict)


def test_generate_workload_shape(data):
    workload = generate_workload(data, 3, 10, seed=0)
    assert len(workload) == 10
    for query in workload:
        assert query.size == 3
        assert not data.network.is_poi(query.start)
        trees = {data.forest.tree_id(c) for c in query.categories}
        assert len(trees) == 3  # distinct category trees
        for cid in query.categories:
            assert data.forest.category(cid).is_leaf


def test_generate_workload_deterministic(data):
    a = generate_workload(data, 2, 5, seed=3)
    b = generate_workload(data, 2, 5, seed=3)
    c = generate_workload(data, 2, 5, seed=4)
    assert a == b
    assert a != c


def test_generate_workload_validation(data):
    with pytest.raises(DataError):
        generate_workload(data, 0, 5)
    with pytest.raises(DataError):
        generate_workload(data, 100, 5)  # more trees than exist


def test_workload_on_cal_forest():
    data = cal_like(0.15)
    workload = generate_workload(data, 5, 4, seed=1)
    assert len(workload) == 4
    for query in workload:
        trees = {data.forest.tree_id(c) for c in query.categories}
        assert len(trees) == 5


def test_workload_allows_poi_starts(data):
    workload = generate_workload(
        data, 2, 30, seed=2, road_vertices_only=False
    )
    assert any(data.network.is_poi(q.start) for q in workload) or True
    # (not guaranteed, but the option must at least not crash)
    assert len(workload) == 30
