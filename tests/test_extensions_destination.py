"""Destination queries (Section 6): totals, round trips, helpers."""

import math

import pytest

from repro.core.engine import SkySREngine
from repro.datasets.paper_example import figure1_query
from repro.extensions.destination import (
    destination_distances,
    final_leg,
    split_length,
)
from repro.graph.road_network import RoadNetwork

from .conftest import score_set, small_forest


def test_destination_distances_directed():
    net = RoadNetwork(directed=True)
    a, b, c = (net.add_vertex() for _ in range(3))
    net.add_edge(a, b, 1.0)
    net.add_edge(b, c, 2.0)
    dist = destination_distances(net, c)
    assert dist == {c: 0.0, b: 2.0, a: 3.0}


def test_round_trip_query(figure1):
    """Destination == start: total includes the way back."""
    engine = SkySREngine(figure1.network, figure1.forest)
    start = figure1.landmarks["vq"]
    cats = list(figure1_query())
    one_way = engine.query(start, cats)
    round_trip = engine.query(start, cats, destination=start)
    assert round_trip.destination == start
    for route in round_trip.routes:
        chain, leg = split_length(figure1.network, route, start)
        assert leg >= 0.0
        assert chain + leg == pytest.approx(route.length)
        assert leg == pytest.approx(
            final_leg(figure1.network, route, start)
        )
    # every round-trip total is at least the one-way optimum
    assert min(r.length for r in round_trip.routes) >= min(
        r.length for r in one_way.routes
    )


def test_destination_parity_all_algorithms(figure1):
    engine = SkySREngine(figure1.network, figure1.forest)
    start = figure1.landmarks["vq"]
    dest = figure1.landmarks["p4"]
    cats = list(figure1_query())
    reference = None
    for algo in ("brute-force", "bssr", "bssr-noopt", "dij", "pne"):
        result = engine.query(start, cats, destination=dest, algorithm=algo)
        scores = score_set(result.routes)
        if reference is None:
            reference = scores
        else:
            assert scores == reference, algo


def test_unreachable_destination_yields_empty():
    forest = small_forest()
    net = RoadNetwork(directed=True)
    start = net.add_vertex()
    poi = net.add_poi(forest.resolve("Ramen"))
    stranded = net.add_vertex()
    net.add_edge(start, poi, 1.0)
    net.add_edge(stranded, poi, 1.0)  # stranded unreachable FROM poi
    engine = SkySREngine(net, forest)
    result = engine.query(start, ["Ramen"], destination=stranded)
    assert result.routes == []


def test_final_leg_empty_route_is_inf(figure1):
    from repro.core.routes import SkylineRoute

    empty = SkylineRoute(pois=(), length=0.0, semantic=0.0)
    assert final_leg(figure1.network, empty, 0) == math.inf
