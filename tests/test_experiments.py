"""Experiment harness + every table/figure module (tiny configurations)."""

import math

import pytest

from repro.core.options import BSSROptions
from repro.experiments import registry
from repro.experiments.harness import (
    ExperimentConfig,
    Report,
    clear_dataset_cache,
    dataset_by_name,
    run_cell,
    workload_for,
)


@pytest.fixture(scope="module")
def config():
    # tiny: 8x8-ish grids, one query per cell, generous budget
    return ExperimentConfig(
        scale=0.02, queries_per_cell=1, time_budget=30.0, seed=5,
        max_sequence_size=3,
    )


def test_config_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    monkeypatch.setenv("REPRO_QUERIES", "7")
    monkeypatch.setenv("REPRO_BUDGET", "9")
    monkeypatch.setenv("REPRO_SEED", "3")
    monkeypatch.setenv("REPRO_MAX_SEQ", "4")
    config = ExperimentConfig.from_env()
    assert config.scale == 0.5
    assert config.queries_per_cell == 7
    assert config.time_budget == 9.0
    assert config.seed == 3
    assert config.sequence_sizes() == [2, 3, 4]


def test_dataset_cache(config):
    clear_dataset_cache()
    a = dataset_by_name("tokyo", config.scale)
    b = dataset_by_name("tokyo", config.scale)
    assert a is b


def test_run_cell_aggregates(config):
    dataset = dataset_by_name("tokyo", config.scale)
    workload = workload_for(dataset, 2, config)
    cell = run_cell(dataset, workload, "bssr", keep_scores=True)
    assert cell.queries_run == len(workload)
    assert cell.mean_time is not None and cell.mean_time >= 0
    assert not cell.timed_out
    assert len(cell.score_sets) == len(workload)
    assert cell.sequence_size == 2


def test_run_cell_time_budget(config):
    dataset = dataset_by_name("tokyo", config.scale)
    workload = workload_for(dataset, 2, config)
    cell = run_cell(dataset, workload, "dij", time_budget=0.0)
    assert cell.timed_out
    assert cell.mean_time is None


def test_run_cell_memory(config):
    dataset = dataset_by_name("tokyo", config.scale)
    workload = workload_for(dataset, 2, config)
    cell = run_cell(dataset, workload, "bssr", measure_memory=True)
    assert all(s.peak_memory_bytes > 0 for s in cell.per_query)


def test_run_cell_options(config):
    dataset = dataset_by_name("tokyo", config.scale)
    workload = workload_for(dataset, 2, config)
    plain = run_cell(dataset, workload, "bssr", keep_scores=True)
    ablated = run_cell(
        dataset,
        workload,
        "bssr",
        options=BSSROptions.without_optimizations(),
        keep_scores=True,
    )
    assert plain.score_sets == ablated.score_sets


def test_registry_lists_all_paper_artifacts():
    names = registry.experiment_names()
    assert names == [
        "figure3",
        "figure4",
        "figure5",
        "figure6",
        "pagination",
        "table1",
        "table4",
        "table5",
        "table6",
        "table7",
        "table8",
        "table9",
        "topk",
    ]
    with pytest.raises(KeyError):
        registry.run_experiment("figure42")


@pytest.mark.parametrize(
    "name",
    ["table5", "table7", "table8", "figure4", "figure5", "figure6"],
)
def test_each_experiment_produces_report(name, config):
    report = registry.run_experiment(name, config)
    assert isinstance(report, Report)
    assert report.experiment == name
    assert report.table
    assert str(report).count("\n") >= 3


def test_figure3_report_with_budget(config):
    from repro.experiments import figure3

    report = figure3.run(config, datasets=("tokyo",))
    assert "BSSR" in report.table
    rows = report.data["rows"]
    assert len(rows) == len(config.sequence_sizes())
    for row in rows:
        # BSSR column always finishes on tiny instances
        assert row[2] is None or row[2] < math.inf


def test_table6_report(config):
    from repro.experiments import table6

    report = table6.run(config, sequence_size=2, datasets=("tokyo",))
    row = report.data["rows"][0]
    assert row[0] == "tokyo-like"
    # four algorithms measured, all positive MiB
    assert all(v is None or v > 0 for v in row[1:])


def test_scenario_experiments(config):
    t1 = registry.run_experiment("table1", config)
    assert "Cupcake Shop" in t1.table or t1.data["rows"]
    t9 = registry.run_experiment("table9", config)
    assert t9.data["rows"], "Tokyo scenario must return routes"
    # destination query: lengths include the hotel leg and are sorted
    lengths = [row[0] for row in t9.data["rows"]]
    assert lengths == sorted(lengths)
