"""Prototype service, GeoJSON export, rendering, simulated user study."""

import json

import pytest

from repro.datasets.paper_example import figure1_query
from repro.datasets.presets import mini_city
from repro.errors import QueryError
from repro.service.geojson import (
    dumps,
    route_waypoints,
    routes_to_geojson,
)
from repro.service.prototype import SkySRService
from repro.service.rendering import render_network, render_route_summary
from repro.service.user_study import QUESTIONS, simulate_user_study


@pytest.fixture(scope="module")
def service():
    return SkySRService(mini_city())


def test_plan_returns_ranked_cards(service):
    data = service.dataset
    response = service.plan(
        list(figure1_query()), start=data.landmarks["vq"]
    )
    assert response.cards
    assert response.best() is response.cards[0]
    # rank 1 is the shortest; semantic fit in [0, 1]
    distances = [card.distance for card in response.cards]
    assert distances == sorted(distances)
    for card in response.cards:
        assert 0.0 <= card.semantic_fit <= 1.0
        assert len(card.stops) == 3
        assert "category" in card.stops[0]
    text = response.render_text()
    assert "Routes for" in text and "#1" in text
    assert "% match" in response.cards[0].headline()


def test_plan_snaps_map_click(service):
    data = service.dataset
    coords = data.network.coords(data.landmarks["vq"])
    response = service.plan(list(figure1_query()), near=coords)
    assert response.start == data.landmarks["vq"]
    with pytest.raises(QueryError):
        service.plan(list(figure1_query()))  # no start at all


def test_max_routes_cap():
    capped = SkySRService(mini_city(), max_routes=1)
    data = capped.dataset
    response = capped.plan(
        list(figure1_query()), start=data.landmarks["vq"]
    )
    assert len(response.cards) == 1


def test_no_feasible_route_renders_gracefully(service):
    # the Travel & Transport tree has no PoIs in the mini city
    response = service.plan(
        ["Hotel", "Gift Shop"], start=service.dataset.landmarks["vq"]
    )
    assert response.cards == []
    assert "(no feasible route)" in response.render_text()


def test_geojson_structure(service):
    data = service.dataset
    start = data.landmarks["vq"]
    response = service.plan(list(figure1_query()), start=start)
    routes = response.result.routes
    collection = routes_to_geojson(data.network, start, routes)
    assert collection["type"] == "FeatureCollection"
    assert len(collection["features"]) == len(routes)
    feature = collection["features"][0]
    assert feature["geometry"]["type"] == "LineString"
    assert len(feature["geometry"]["coordinates"]) == len(routes[0].pois) + 1
    assert feature["properties"]["rank"] == 1
    parsed = json.loads(dumps(collection))
    assert parsed == collection


def test_geojson_full_geometry(service):
    data = service.dataset
    start = data.landmarks["vq"]
    response = service.plan(list(figure1_query()), start=start)
    route = response.result.routes[0]
    waypoints = route_waypoints(data.network, start, route)
    assert waypoints[0] == start
    for poi in route.pois:
        assert poi in waypoints
    # consecutive waypoints are adjacent in the network
    for a, b in zip(waypoints, waypoints[1:]):
        assert data.network.has_edge(a, b)
    full = routes_to_geojson(data.network, start, [route], full_geometry=True)
    assert len(full["features"][0]["geometry"]["coordinates"]) == len(waypoints)


def test_render_network_ascii(service):
    data = service.dataset
    response = service.plan(
        list(figure1_query()), start=data.landmarks["vq"]
    )
    art = render_network(
        data.network,
        width=40,
        height=12,
        start=data.landmarks["vq"],
        route=response.result.routes[0],
    )
    lines = art.splitlines()
    assert len(lines) == 12
    assert any("S" in line for line in lines)
    assert any("1" in line for line in lines)
    summary = render_route_summary(
        data.network, response.result.routes[0], ["a", "b", "c"]
    )
    assert summary.startswith("S -> a -> b -> c")


def test_user_study_shape():
    outcome = simulate_user_study(mini_city(), respondents=10, seed=7)
    assert outcome.respondents == 10
    assert set(outcome.answers) == set(QUESTIONS)
    for question in QUESTIONS:
        ratios = outcome.ratios(question)
        assert len(ratios) == 3
        assert sum(ratios) == pytest.approx(1.0)
    assert 0.0 <= outcome.mean_satisfaction <= 1.0
    text = outcome.render_text()
    assert "Q1" in text and "%" in text


def test_user_study_deterministic():
    a = simulate_user_study(mini_city(), respondents=8, seed=3)
    b = simulate_user_study(mini_city(), respondents=8, seed=3)
    assert a.answers == b.answers


# ---------------------------------------------------------------------------
# resumable sessions + admission control (the production-facing facade)


def _topk_service(**kwargs):
    from repro.datasets import tokyo_like
    from repro.experiments.scenarios import ensure_category_pois

    data = tokyo_like(scale=0.2, seed=9)
    ensure_category_pois(data, ["Beer Garden", "Sake Bar"], per_category=3)
    return SkySRService(data, **kwargs), data


def _start(data):
    from repro.experiments.scenarios import scenario_start

    return scenario_start(data, seed=5)


def test_service_session_create_resume_round_trip():
    service, data = _topk_service()
    start = _start(data)
    sid = service.create_session(
        ["Beer Garden", "Sake Bar"], start=start, page_size=2
    )
    first = service.next_page(sid)
    assert first.session_id == sid and first.page == 1
    assert [card.rank for card in first.cards] == list(
        range(1, len(first.cards) + 1)
    )
    second = service.next_page(sid)
    assert second.page == 2
    if second.cards:
        # global ranks continue across pages
        assert second.cards[0].rank == len(first.cards) + 1
    # the two pages together equal the one-shot top-4
    oneshot = service.plan(
        ["Beer Garden", "Sake Bar"], start=start, k=4
    )
    served = [c.pois for c in first.cards + second.cards]
    assert served == [r.pois for r in oneshot.result.routes][: len(served)]
    service.close_session(sid)
    with pytest.raises(QueryError):
        service.next_page(sid)


def test_service_session_through_plan_batch_and_geojson():
    service, data = _topk_service()
    start = _start(data)
    # batch entry 1 creates a session; entry 2 is a plain plan
    payload = service.batch_geojson(
        [
            {
                "categories": ["Beer Garden", "Sake Bar"],
                "start": start,
                "page_size": 2,
            },
            {"categories": ["Sake Bar"], "start": start, "k": 2},
        ]
    )
    assert payload["type"] == "SkySRBatch"
    first, second = payload["responses"]
    sid = first["session"]
    assert first["page"] == 1 and sid.startswith("sess-")
    assert "session" not in second
    # round-trip: resume the same session through the batch endpoint
    followup = service.batch_geojson([{"session": sid}])
    entry = followup["responses"][0]
    assert entry["session"] == sid and entry["page"] == 2
    if entry["routes"]["features"]:
        assert entry["first_rank"] == len(first["routes"]["features"]) + 1
    # no feature served twice across the two pages
    def poiset(e):
        return {tuple(f["properties"]["pois"]) for f in e["routes"]["features"]}
    assert not (poiset(first) & poiset(entry))


def test_service_admission_rejects_oversized_k():
    from repro.errors import AdmissionError

    service, data = _topk_service(max_k=3)
    start = _start(data)
    with pytest.raises(AdmissionError):
        service.plan(["Beer Garden", "Sake Bar"], start=start, k=4)
    with pytest.raises(AdmissionError):
        service.create_session(
            ["Beer Garden", "Sake Bar"], start=start, page_size=5
        )
    with pytest.raises(AdmissionError):
        service.plan_batch(
            [{"categories": ["Sake Bar"], "start": start, "k": 10}]
        )
    # at the cap everything is admitted
    ok = service.plan(["Beer Garden", "Sake Bar"], start=start, k=3)
    assert ok.result.k == 3
    # AdmissionError is a QueryError: one service-boundary handler works
    with pytest.raises(QueryError):
        service.plan(["Beer Garden", "Sake Bar"], start=start, k=99)


def test_service_admission_caps_session_budget():
    from repro.errors import AdmissionError

    service, data = _topk_service(max_session_routes=3)
    start = _start(data)
    sid = service.create_session(
        ["Beer Garden", "Sake Bar"], start=start, page_size=2
    )
    service.next_page(sid)  # serves <= 2 routes
    with pytest.raises(AdmissionError):
        service.next_page(sid)  # would exceed the 3-route budget
    assert service.next_page(sid, n=1).page == 2  # within budget


def test_service_diversity_lambda_plumbs_through():
    service, data = _topk_service()
    start = _start(data)
    plain = service.plan(["Beer Garden", "Sake Bar"], start=start, k=3)
    diverse = service.plan(
        ["Beer Garden", "Sake Bar"],
        start=start,
        k=3,
        diversity_lambda=0.8,
    )
    assert {c.pois for c in diverse.cards} <= {
        r.pois for r in plain.result.skyband
    }
    if diverse.cards and plain.cards:
        assert diverse.cards[0].pois == plain.cards[0].pois
