"""Prototype service, GeoJSON export, rendering, simulated user study."""

import json

import pytest

from repro.datasets.paper_example import figure1_query
from repro.datasets.presets import mini_city
from repro.errors import QueryError
from repro.service.geojson import (
    dumps,
    route_waypoints,
    routes_to_geojson,
)
from repro.service.prototype import SkySRService
from repro.service.rendering import render_network, render_route_summary
from repro.service.user_study import QUESTIONS, simulate_user_study


@pytest.fixture(scope="module")
def service():
    return SkySRService(mini_city())


def test_plan_returns_ranked_cards(service):
    data = service.dataset
    response = service.plan(
        list(figure1_query()), start=data.landmarks["vq"]
    )
    assert response.cards
    assert response.best() is response.cards[0]
    # rank 1 is the shortest; semantic fit in [0, 1]
    distances = [card.distance for card in response.cards]
    assert distances == sorted(distances)
    for card in response.cards:
        assert 0.0 <= card.semantic_fit <= 1.0
        assert len(card.stops) == 3
        assert "category" in card.stops[0]
    text = response.render_text()
    assert "Routes for" in text and "#1" in text
    assert "% match" in response.cards[0].headline()


def test_plan_snaps_map_click(service):
    data = service.dataset
    coords = data.network.coords(data.landmarks["vq"])
    response = service.plan(list(figure1_query()), near=coords)
    assert response.start == data.landmarks["vq"]
    with pytest.raises(QueryError):
        service.plan(list(figure1_query()))  # no start at all


def test_max_routes_cap():
    capped = SkySRService(mini_city(), max_routes=1)
    data = capped.dataset
    response = capped.plan(
        list(figure1_query()), start=data.landmarks["vq"]
    )
    assert len(response.cards) == 1


def test_no_feasible_route_renders_gracefully(service):
    # the Travel & Transport tree has no PoIs in the mini city
    response = service.plan(
        ["Hotel", "Gift Shop"], start=service.dataset.landmarks["vq"]
    )
    assert response.cards == []
    assert "(no feasible route)" in response.render_text()


def test_geojson_structure(service):
    data = service.dataset
    start = data.landmarks["vq"]
    response = service.plan(list(figure1_query()), start=start)
    routes = response.result.routes
    collection = routes_to_geojson(data.network, start, routes)
    assert collection["type"] == "FeatureCollection"
    assert len(collection["features"]) == len(routes)
    feature = collection["features"][0]
    assert feature["geometry"]["type"] == "LineString"
    assert len(feature["geometry"]["coordinates"]) == len(routes[0].pois) + 1
    assert feature["properties"]["rank"] == 1
    parsed = json.loads(dumps(collection))
    assert parsed == collection


def test_geojson_full_geometry(service):
    data = service.dataset
    start = data.landmarks["vq"]
    response = service.plan(list(figure1_query()), start=start)
    route = response.result.routes[0]
    waypoints = route_waypoints(data.network, start, route)
    assert waypoints[0] == start
    for poi in route.pois:
        assert poi in waypoints
    # consecutive waypoints are adjacent in the network
    for a, b in zip(waypoints, waypoints[1:]):
        assert data.network.has_edge(a, b)
    full = routes_to_geojson(data.network, start, [route], full_geometry=True)
    assert len(full["features"][0]["geometry"]["coordinates"]) == len(waypoints)


def test_render_network_ascii(service):
    data = service.dataset
    response = service.plan(
        list(figure1_query()), start=data.landmarks["vq"]
    )
    art = render_network(
        data.network,
        width=40,
        height=12,
        start=data.landmarks["vq"],
        route=response.result.routes[0],
    )
    lines = art.splitlines()
    assert len(lines) == 12
    assert any("S" in line for line in lines)
    assert any("1" in line for line in lines)
    summary = render_route_summary(
        data.network, response.result.routes[0], ["a", "b", "c"]
    )
    assert summary.startswith("S -> a -> b -> c")


def test_user_study_shape():
    outcome = simulate_user_study(mini_city(), respondents=10, seed=7)
    assert outcome.respondents == 10
    assert set(outcome.answers) == set(QUESTIONS)
    for question in QUESTIONS:
        ratios = outcome.ratios(question)
        assert len(ratios) == 3
        assert sum(ratios) == pytest.approx(1.0)
    assert 0.0 <= outcome.mean_satisfaction <= 1.0
    text = outcome.render_text()
    assert "Q1" in text and "%" in text


def test_user_study_deterministic():
    a = simulate_user_study(mini_city(), respondents=8, seed=3)
    b = simulate_user_study(mini_city(), respondents=8, seed=3)
    assert a.answers == b.answers
