"""The modified Dijkstra (Algorithm 2): emission, Lemma 5.5, resume."""

import math

import pytest

from repro.core.search import PoICandidateSearch
from repro.core.spec import CategoryRequirement, compile_query
from repro.core.stats import SearchStats
from repro.graph.poi import PoIIndex
from repro.graph.road_network import RoadNetwork
from repro.semantics.similarity import HierarchyWuPalmer

from .conftest import small_forest


def _line_instance():
    """start -- p_weak -- p_perfect -- p_far  on one line.

    p_weak (Italian, sim 0.5 for query Ramen), p_perfect (Ramen, sim 1),
    p_far (Sushi, sim 0.8) strictly behind the perfect match.
    """
    forest = small_forest()
    net = RoadNetwork()
    start = net.add_vertex()
    weak = net.add_poi(forest.resolve("Italian"))
    perfect = net.add_poi(forest.resolve("Ramen"))
    far = net.add_poi(forest.resolve("Sushi"))
    net.add_edge(start, weak, 1.0)
    net.add_edge(weak, perfect, 1.0)
    net.add_edge(perfect, far, 1.0)
    index = PoIIndex(net, forest)
    spec = CategoryRequirement(forest.resolve("Ramen")).compile(
        index, HierarchyWuPalmer(), 0
    )
    return net, spec, dict(start=start, weak=weak, perfect=perfect, far=far)


def test_candidates_in_distance_order_with_perfect_stop():
    net, spec, ids = _line_instance()
    search = PoICandidateSearch(net, spec, ids["start"])
    found = list(search.candidates_until(math.inf))
    # weak emitted (sim 0.5), perfect emitted (sim 1.0); far is behind a
    # perfect match → traversal stopped (Lemma 5.5 ii)
    assert [(v, s) for _, v, s in found] == [
        (ids["weak"], 0.5),
        (ids["perfect"], 1.0),
    ]
    distances = [d for d, _, _ in found]
    assert distances == [1.0, 2.0]


def test_suppression_of_weaker_candidate_behind_stronger():
    """Lemma 5.5 (i): a PoI behind another with >= similarity is not
    emitted (its route would be dominated by the substitution)."""
    forest = small_forest()
    net = RoadNetwork()
    start = net.add_vertex()
    sushi = net.add_poi(forest.resolve("Sushi"))     # sim 0.8 for Ramen
    italian = net.add_poi(forest.resolve("Italian"))  # sim 0.5, behind sushi
    net.add_edge(start, sushi, 1.0)
    net.add_edge(sushi, italian, 1.0)
    index = PoIIndex(net, forest)
    spec = CategoryRequirement(forest.resolve("Ramen")).compile(
        index, HierarchyWuPalmer(), 0
    )
    search = PoICandidateSearch(net, spec, start)
    found = [(v, s) for _, v, s in search.candidates_until(math.inf)]
    assert found == [(sushi, 0.8)]


def test_stronger_candidate_behind_weaker_is_emitted():
    forest = small_forest()
    net = RoadNetwork()
    start = net.add_vertex()
    italian = net.add_poi(forest.resolve("Italian"))  # sim 0.5
    sushi = net.add_poi(forest.resolve("Sushi"))      # sim 0.8 behind it
    net.add_edge(start, italian, 1.0)
    net.add_edge(italian, sushi, 1.0)
    index = PoIIndex(net, forest)
    spec = CategoryRequirement(forest.resolve("Ramen")).compile(
        index, HierarchyWuPalmer(), 0
    )
    search = PoICandidateSearch(net, spec, start)
    found = [(v, s) for _, v, s in search.candidates_until(math.inf)]
    assert found == [(italian, 0.5), (sushi, 0.8)]


def test_excluded_pois_are_transparent():
    """An excluded PoI is neither emitted nor a stop/suppression point."""
    net, spec, ids = _line_instance()
    search = PoICandidateSearch(
        net, spec, ids["start"], exclude=frozenset({ids["perfect"]})
    )
    found = [(v, s) for _, v, s in search.candidates_until(math.inf)]
    # perfect excluded → traversal continues to far (sim 0.8 > 0.5 path max)
    assert found == [(ids["weak"], 0.5), (ids["far"], 0.8)]


def test_budget_pauses_and_resumes_search():
    net, spec, ids = _line_instance()
    search = PoICandidateSearch(net, spec, ids["start"])
    first = list(search.candidates_until(1.5))
    assert [v for _, v, _ in first] == [ids["weak"]]
    assert not search.exhausted
    # resume with a bigger budget: stored candidates replayed first
    second = list(search.candidates_until(10.0))
    assert [v for _, v, _ in second] == [ids["weak"], ids["perfect"]]
    assert search.radius <= 2.0


def test_dynamic_budget_callable():
    net, spec, ids = _line_instance()
    search = PoICandidateSearch(net, spec, ids["start"])
    budgets = iter([5.0, 5.0, 5.0, 0.0, 0.0, 0.0])
    found = list(search.candidates_until(lambda: next(budgets)))
    assert len(found) <= 2


def test_stats_counters():
    net, spec, ids = _line_instance()
    stats = SearchStats()
    search = PoICandidateSearch(net, spec, ids["start"], stats=stats)
    list(search.candidates_until(math.inf))
    assert stats.settled == 3  # start, weak, perfect (far never settled)
    assert stats.relaxed > 0
    assert stats.heap_pushes > 0


def test_source_can_be_candidate():
    """A query starting on a matching PoI yields a zero-length candidate."""
    forest = small_forest()
    net = RoadNetwork()
    poi = net.add_poi(forest.resolve("Ramen"))
    other = net.add_poi(forest.resolve("Sushi"))
    net.add_edge(poi, other, 2.0)
    index = PoIIndex(net, forest)
    spec = CategoryRequirement(forest.resolve("Ramen")).compile(
        index, HierarchyWuPalmer(), 0
    )
    search = PoICandidateSearch(net, spec, poi)
    found = list(search.candidates_until(math.inf))
    assert found[0] == (0.0, poi, 1.0)
    # perfect at the source stops traversal entirely (Lemma 5.5 ii)
    assert len(found) == 1


def test_compiled_query_end_to_end():
    forest = small_forest()
    net = RoadNetwork()
    start = net.add_vertex()
    ramen = net.add_poi(forest.resolve("Ramen"))
    gift = net.add_poi(forest.resolve("Gift"))
    net.add_edge(start, ramen, 1.0)
    net.add_edge(ramen, gift, 1.0)
    index = PoIIndex(net, forest)
    compiled = compile_query(start, ["Ramen", "Gift"], index, HierarchyWuPalmer())
    s0 = PoICandidateSearch(net, compiled.specs[0], start)
    assert [v for _, v, _ in s0.candidates_until(math.inf)] == [ramen]
    s1 = PoICandidateSearch(net, compiled.specs[1], ramen)
    assert [v for _, v, _ in s1.candidates_until(math.inf)] == [gift]
