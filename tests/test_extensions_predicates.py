"""Complex category requirements (Section 6): AnyOf / AllOf / Excluding."""

import pytest

from repro.baselines.brute_force import brute_force_skysr
from repro.core.bssr import run_bssr
from repro.core.spec import compile_query
from repro.errors import QueryError
from repro.extensions.predicates import AllOf, AnyOf, Excluding
from repro.graph.poi import PoIIndex
from repro.graph.road_network import RoadNetwork
from repro.semantics.similarity import HierarchyWuPalmer

from .conftest import pick_query, random_instance, score_set, small_forest


@pytest.fixture()
def instance():
    forest = small_forest()
    net = RoadNetwork()
    road = [net.add_vertex() for _ in range(4)]
    for a, b in zip(road, road[1:]):
        net.add_edge(a, b, 1.0)
    pois = {
        "ramen": net.add_poi(forest.resolve("Ramen")),
        "sushi": net.add_poi(forest.resolve("Sushi")),
        "italian": net.add_poi(forest.resolve("Italian")),
        "gift": net.add_poi(forest.resolve("Gift")),
        "games": net.add_poi(forest.resolve("Games")),
        "cafe_bakery": net.add_poi(
            (forest.resolve("Bakery"), forest.resolve("Italian"))
        ),
    }
    for i, vid in enumerate(pois.values()):
        net.add_edge(road[i % 4], vid, 1.0)
    index = PoIIndex(net, forest)
    return forest, net, index, pois


def test_anyof_merges_alternatives(instance):
    forest, net, index, pois = instance
    spec = AnyOf("Ramen", "Italian").compile(index, HierarchyWuPalmer(), 0)
    assert spec.similarity(pois["ramen"]) == 1.0
    assert spec.similarity(pois["italian"]) == 1.0
    # sushi: 0.8 under Ramen, 0.5 under Italian → max 0.8
    assert spec.similarity(pois["sushi"]) == pytest.approx(0.8)
    assert pois["gift"] not in spec.sim_map
    assert "OR" in spec.label
    assert spec.best_nonperfect == pytest.approx(0.8)


def test_anyof_across_trees(instance):
    forest, net, index, pois = instance
    spec = AnyOf("Ramen", "Gift").compile(index, HierarchyWuPalmer(), 0)
    assert spec.similarity(pois["gift"]) == 1.0
    assert spec.similarity(pois["ramen"]) == 1.0
    assert len(spec.tree_ids) == 2


def test_allof_requires_every_branch(instance):
    forest, net, index, pois = instance
    spec = AllOf("Bakery", "Italian").compile(index, HierarchyWuPalmer(), 0)
    # only the multi-category PoI satisfies both at similarity 1
    assert spec.similarity(pois["cafe_bakery"]) == 1.0
    # plain italian: sim(Bakery→Italian)=2/3 (siblings), sim(Italian)=1 → min 2/3
    assert spec.similarity(pois["italian"]) == pytest.approx(2 / 3)
    assert pois["gift"] not in spec.sim_map
    assert "AND" in spec.label


def test_excluding_removes_closure(instance):
    forest, net, index, pois = instance
    spec = Excluding("Shop", "Hobby").compile(index, HierarchyWuPalmer(), 0)
    assert pois["gift"] in spec.sim_map
    # Games is a child of Hobby → excluded via closure
    assert pois["games"] not in spec.sim_map
    assert "NOT" in spec.label


def test_excluding_recomputes_best_nonperfect(instance):
    forest, net, index, pois = instance
    spec = Excluding("Gift", "Hobby").compile(index, HierarchyWuPalmer(), 0)
    # remaining candidates: gift (perfect) only → no nonperfect left
    assert spec.best_nonperfect is None


def test_predicate_constructor_validation():
    with pytest.raises(QueryError):
        AnyOf()
    with pytest.raises(QueryError):
        AllOf()
    with pytest.raises(QueryError):
        Excluding("Shop")


def test_nested_predicates(instance):
    forest, net, index, pois = instance
    spec = AnyOf(Excluding("Shop", "Hobby"), "Ramen").compile(
        index, HierarchyWuPalmer(), 0
    )
    assert pois["gift"] in spec.sim_map
    assert pois["ramen"] in spec.sim_map
    assert pois["games"] not in spec.sim_map


def test_bssr_parity_with_predicates():
    """BSSR == oracle when positions are predicates."""
    for seed in range(10):
        network, forest, rng = random_instance(seed, num_pois=12)
        query = pick_query(network, forest, rng, 2)
        if query is None:
            continue
        start, cats = query
        requirements = [
            AnyOf(cats[0], "Italian"),
            Excluding(forest.name_of(forest.tree_id(cats[1])), cats[1])
            if forest.tree_id(cats[1]) != cats[1]
            else cats[1],
        ]
        index = PoIIndex(network, forest)
        compiled = compile_query(
            start, requirements, index, HierarchyWuPalmer()
        )
        if any(not s.sim_map for s in compiled.specs):
            continue
        expected = brute_force_skysr(network, compiled)
        actual, _ = run_bssr(network, compiled)
        assert score_set(actual) == score_set(expected), f"seed={seed}"
