"""CLI: argument parsing and command behaviour."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_info_command(capsys):
    assert main(["info", "--preset", "mini"]) == 0
    out = capsys.readouterr().out
    assert "repro" in out
    assert "|V|" in out


def test_query_command_on_mini(capsys):
    code = main(
        [
            "query",
            "--preset",
            "mini",
            "--start",
            "12",
            "--categories",
            "Asian Restaurant",
            "Arts & Entertainment",
            "Gift Shop",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "skyline route" in out
    assert "Asian Restaurant" in out


def test_query_command_random_start(capsys):
    assert (
        main(
            [
                "query",
                "--preset",
                "mini",
                "--categories",
                "Gift Shop",
            ]
        )
        == 0
    )
    assert "skyline route" in capsys.readouterr().out


def test_query_unordered(capsys):
    code = main(
        [
            "query",
            "--preset",
            "mini",
            "--start",
            "12",
            "--unordered",
            "--categories",
            "Gift Shop",
            "Asian Restaurant",
        ]
    )
    assert code == 0


def test_query_algorithm_choice_validated():
    with pytest.raises(SystemExit):
        main(
            [
                "query",
                "--preset",
                "mini",
                "--categories",
                "Gift Shop",
                "--algorithm",
                "nope",
            ]
        )


def test_generate_command(tmp_path, capsys):
    out_file = tmp_path / "mini.json"
    assert main(["generate", "--preset", "mini", str(out_file)]) == 0
    payload = json.loads(out_file.read_text())
    assert payload["format"] == "repro-skysr-dataset"
    assert "wrote" in capsys.readouterr().out


def test_study_command(capsys):
    assert (
        main(
            [
                "study",
                "--preset",
                "mini",
                "--respondents",
                "6",
                "--seed",
                "1",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Q1" in out and "Q3" in out


def test_experiment_command_table5(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.1")
    monkeypatch.setenv("REPRO_QUERIES", "1")
    assert main(["experiment", "table5"]) == 0
    out = capsys.readouterr().out
    assert "Table 5" in out
    assert "tokyo-like" in out


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
