"""Optimization toggles never change results — only work done.

Every combination of the four Section 5.3 techniques must return the
same skyline score set; the ablations only differ in counters (visited
vertices, Dijkstra executions, queue sizes).
"""

import itertools

import pytest

from repro.core.bssr import run_bssr
from repro.core.options import BSSROptions
from repro.core.priority import distance_priority, policy_for, proposed_priority
from repro.core.routes import PartialRoute
from repro.core.spec import compile_query
from repro.graph.poi import PoIIndex
from repro.semantics.similarity import HierarchyWuPalmer

from .conftest import pick_query, random_instance, score_set

ALL_TOGGLES = list(itertools.product([False, True], repeat=4))


def _compiled(seed, size=3, distinct_trees=True):
    network, forest, rng = random_instance(seed, num_pois=12)
    query = pick_query(network, forest, rng, size, distinct_trees=distinct_trees)
    if query is None:
        return None
    start, cats = query
    index = PoIIndex(network, forest)
    return network, compile_query(start, cats, index, HierarchyWuPalmer())


@pytest.mark.parametrize("seed", [0, 1, 2, 7, 21])
def test_all_sixteen_toggle_combinations_agree(seed):
    built = _compiled(seed)
    if built is None:
        pytest.skip("instance cannot host the query")
    network, compiled = built
    reference = None
    for init, queue, bounds, caching in ALL_TOGGLES:
        options = BSSROptions(
            initial_search=init,
            priority_queue=queue,
            lower_bounds=bounds,
            perfect_match_bound=bounds,
            caching=caching,
        )
        routes, _ = run_bssr(network, compiled, options=options)
        scores = score_set(routes)
        if reference is None:
            reference = scores
        else:
            assert scores == reference, (
                f"toggles init={init} queue={queue} bounds={bounds} "
                f"caching={caching}"
            )


def test_without_optimizations_factory():
    options = BSSROptions.without_optimizations()
    assert not options.initial_search
    assert not options.priority_queue
    assert not options.lower_bounds
    assert not options.caching
    assert not options.effective_perfect_bound()
    assert BSSROptions.all_enabled().effective_perfect_bound()


def test_but_returns_modified_copy():
    base = BSSROptions()
    variant = base.but(caching=False)
    assert base.caching and not variant.caching
    assert variant.initial_search == base.initial_search


def test_perfect_bound_requires_lower_bounds():
    options = BSSROptions(lower_bounds=False, perfect_match_bound=True)
    assert not options.effective_perfect_bound()


def test_priority_policies():
    small = PartialRoute(
        pois=(1,), length=5.0, semantic=0.2, sem_state=None
    )
    big = PartialRoute(
        pois=(1, 2), length=9.0, semantic=0.5, sem_state=None
    )
    assert proposed_priority(big) < proposed_priority(small)  # size first
    assert distance_priority(small) < distance_priority(big)  # length only
    tie_a = PartialRoute(pois=(3, 4), length=2.0, semantic=0.5, sem_state=None)
    assert proposed_priority(tie_a) < proposed_priority(big)  # length breaks
    better_sem = PartialRoute(
        pois=(5, 6), length=99.0, semantic=0.1, sem_state=None
    )
    assert proposed_priority(better_sem) < proposed_priority(big)
    assert policy_for(True) is proposed_priority
    assert policy_for(False) is distance_priority


def test_cache_disabled_runs_more_dijkstras():
    built = _compiled(11)
    if built is None:
        pytest.skip("instance cannot host the query")
    network, compiled = built
    _, with_cache = run_bssr(network, compiled)
    _, without_cache = run_bssr(
        network, compiled, options=BSSROptions(caching=False)
    )
    assert without_cache.cache_hits == 0
    assert with_cache.mdijkstra_runs <= without_cache.mdijkstra_runs


def test_cache_bypassed_on_repeated_trees():
    built = _compiled(13, distinct_trees=False)
    if built is None:
        pytest.skip("instance cannot host the query")
    network, compiled = built
    if compiled.disjoint_trees:
        pytest.skip("draw happened to be disjoint")
    _, stats = run_bssr(network, compiled)
    assert stats.cache_hits == 0  # route-aware mode never reuses


def test_initial_search_shrinks_first_radius():
    """On instances where NNinit finds a short perfect chain, the first
    search explores no farther than the unseeded variant."""
    for seed in range(8):
        built = _compiled(seed)
        if built is None:
            continue
        network, compiled = built
        _, seeded = run_bssr(network, compiled)
        _, unseeded = run_bssr(
            network, compiled, options=BSSROptions(initial_search=False)
        )
        assert seeded.first_search_radius <= unseeded.first_search_radius + 1e-9
